#!/usr/bin/env python
"""Benchmark harness: record the sweep-throughput trajectory.

Runs a fixed *reference grid* of profiled training scenarios in one or both
execution modes and writes a ``BENCH_sweep.json`` report with, per mode:

* ``wall_s`` — wall-clock time for the whole grid (caching disabled),
* ``scenarios_per_s`` — sweep throughput, the headline number,
* ``events_per_s`` — recorded memory behaviors per second,
* ``peak_rss_bytes`` — the mode's process peak resident set size,
* per-scenario wall times.

When both modes run, the report also contains the symbolic-over-eager
``speedup`` block — the number the acceptance bar of the symbolic-execution
work tracks (``>= 5x`` scenarios/sec on the reference grid).  The grids
price every workload structure at many timing points (device specs x
dispatch overheads x dtypes), so two replay modes measure the
trace-template engine against symbolic:

* ``replay`` — scenario-at-a-time scalar replay (the pre-batching path,
  kept as the regression baseline),
* ``replay-batch`` — grid-batched replay: scenarios grouped by structure
  and priced in one ``(S x atoms)`` broadcast per dtype variant, the
  production path behind ``--execution replay``.

The ``replay_speedup`` block is computed from ``replay-batch`` when that
mode ran (falling back to ``replay``); ``--assert-replay-speedup X`` turns
the block into a CI gate (exit 1 below ``X`` scenarios/s over symbolic).

Each mode executes in its own child process so that peak-RSS measurements do
not bleed across modes (``ru_maxrss`` is a process-lifetime high-water mark)
and so that every mode pays the same interpreter/import cost.

A mode may carry the ``+swap`` suffix (e.g. ``symbolic+swap``): the same
grid then runs under the closed-loop swap-execution engine
(``--swap zero_offload`` — the always-active policy, so every scenario
exercises the eviction/demand-fetch/trace paths), which is how
``BENCH_sweep.json`` tracks swap-execution throughput next to the plain
sweep throughput.

Usage::

    python tools/bench.py                       # both modes, quick grid
    python tools/bench.py --grid full           # the 96-scenario pricing grid
    python tools/bench.py --modes symbolic      # symbolic only
    python tools/bench.py --modes symbolic,replay-batch  # batched-replay speedup
    python tools/bench.py --modes symbolic,replay,replay-batch  # + scalar baseline
    python tools/bench.py --modes symbolic+swap # swap-execution throughput
    python tools/bench.py --budget-s 300        # fail if the run exceeds it
    python tools/bench.py --assert-replay-speedup 6  # gate on the speedup

``make bench`` runs the default configuration and leaves ``BENCH_sweep.json``
at the repository root; see ``docs/performance.md`` for how to read it.
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

#: Bump when the report layout changes.
BENCH_SCHEMA_VERSION = 1

#: Pricing + dtype axes: each workload *structure* is priced at
#: |device_specs| x |host_dispatch_overheads_ns| x |dtypes| points.  This is
#: the regime the trace-template replay engine targets — compile one
#: structure per dtype (one template *family* per structure), re-price it
#: across the timing axes — and what its acceptance bar (replay-batch
#: scenarios/s >= 20x symbolic on the full grid, with <= 4 template
#: families) is measured on.  ``dtype`` sits with the pricing axes because
#: replay generalizes over it within one family, even though each dtype
#: costs one extra capture (AMP master weights change the event stream).
DEVICE_AXIS = ("titan_x_pascal", "v100_sxm2_16gb", "gtx_1080_8gb",
               "ampere_a100_40gb")
DTYPE_AXIS = ("float32", "float16")
PRICING_AXES = dict(
    device_specs=DEVICE_AXIS,
    host_dispatch_overheads_ns=(None, 1_000, 2_000, 4_000, 6_000, 9_000),
    dtypes=DTYPE_AXIS,
)
#: The full grid traces the host-dispatch sensitivity curve at twice the
#: resolution: 4 specs x 12 overheads x 2 dtypes = 96 pricing points, all
#: served by a single compiled family.
FULL_PRICING_AXES = dict(
    device_specs=DEVICE_AXIS,
    host_dispatch_overheads_ns=(None, 500, 1_000, 1_500, 2_000, 3_000,
                                4_000, 5_000, 6_000, 7_000, 8_000, 9_000),
    dtypes=DTYPE_AXIS,
)

#: The reference grids.  Each entry is a list of SweepGrid keyword sets; the
#: union of their expansions is the grid.  Both grids deliberately price
#: few *structures* at many timing points — the sweep-as-a-service regime —
#: so the replay modes measure repricing throughput, not compile throughput.
REFERENCE_GRIDS = {
    "quick": [
        dict(models=("mlp",), batch_sizes=(512,), iterations=(2,),
             model_kwargs={"hidden_dim": 1024, "num_hidden_layers": 4},
             dataset="two_cluster", **PRICING_AXES),
    ],
    "full": [
        dict(models=("resnet18",), batch_sizes=(8,), iterations=(2,),
             dataset="cifar10", model_kwargs={"input_size": 32, "num_classes": 10},
             **FULL_PRICING_AXES),
    ],
}


#: Executable swap policy used by ``+swap`` bench modes (zero_offload always
#: has optimizer state to move, so every scenario exercises the engine).
SWAP_BENCH_POLICY = "zero_offload"


def parse_mode(mode: str):
    """Split a bench mode token into (execution_mode, swap_mode, batching).

    ``replay`` measures the scenario-at-a-time scalar path; ``replay-batch``
    measures the grid-batched path (both expand to ``--execution replay``
    scenarios — only the runner's dispatch strategy differs).
    """
    base, _, suffix = mode.partition("+")
    if suffix not in ("", "swap"):
        raise ValueError(f"unknown bench mode suffix '+{suffix}'")
    batching = base == "replay-batch"
    if batching:
        base = "replay"
    return base, (SWAP_BENCH_POLICY if suffix == "swap" else "off"), batching


def reference_scenarios(grid_name: str, mode: str):
    """Expand the named reference grid for one bench mode."""
    from repro.experiments.sweep import SweepGrid

    execution_mode, swap, _ = parse_mode(mode)
    scenarios = []
    for kwargs in REFERENCE_GRIDS[grid_name]:
        scenarios.extend(
            SweepGrid(execution_mode=execution_mode, swaps=(swap,),
                      **kwargs).expand())
    return scenarios


def _warm_up() -> None:
    """Pay one-time import/initialization costs outside the timed region.

    Every mode's child process runs this before its timer starts, so the
    measured walls compare simulation work, not interpreter warm-up (lazy
    module imports, numpy's deferred submodule loads).  The warm-up scenario
    is tiny and shares no structure with the reference grids, so it warms no
    template.
    """
    from repro.experiments.sweep import Scenario, run_scenario
    from repro.train.session import TrainingRunConfig
    import repro.experiments.replay  # noqa: F401  (replay-mode lazy import)

    run_scenario(Scenario(config=TrainingRunConfig(
        model="mlp", dataset="two_cluster", batch_size=4, iterations=1,
        execution_mode="symbolic", seed=0)))


def run_mode(grid_name: str, mode: str, workers: int) -> dict:
    """Run the reference grid in one mode (no caching) and measure it."""
    from repro.experiments.sweep import SweepRunner

    _, _, batching = parse_mode(mode)
    scenarios = reference_scenarios(grid_name, mode)
    _warm_up()
    with SweepRunner(cache_dir=None, workers=workers, use_cache=False,
                     replay_batching=batching) as runner:
        started = time.perf_counter()
        sweep = runner.run(scenarios)
        wall_s = time.perf_counter() - started
    total_events = sum(result.num_events for result in sweep.results)
    replay_stats = ({"replayed": sweep.replayed,
                     "templates_compiled": sweep.templates_compiled,
                     "template_variants": sweep.template_variants,
                     "replay_fallbacks": sweep.replay_fallbacks}
                    if sweep.replayed else {})
    # ru_maxrss is KiB on Linux but bytes on macOS.  With --workers > 1 the
    # scenarios execute in pool children, so take the max over self/children.
    rss_unit = 1 if sys.platform == "darwin" else 1024
    peak_rss_bytes = rss_unit * max(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
        resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss)
    return {
        "execution_mode": mode,
        "scenarios": len(sweep.results),
        "wall_s": round(wall_s, 4),
        "scenarios_per_s": round(len(sweep.results) / wall_s, 3),
        "events_total": total_events,
        "events_per_s": round(total_events / wall_s, 1),
        "peak_rss_bytes": peak_rss_bytes,
        "retries": sweep.retries,
        "failures": len(sweep.failures),
        **replay_stats,
        "per_scenario": [
            {"model": result.scenario["model"],
             "batch_size": result.scenario["batch_size"],
             "wall_s": round(result.wall_time_s, 4),
             "num_events": result.num_events}
            for result in sweep.results
        ],
    }


def _child(args: argparse.Namespace) -> int:
    """Child entry point: run one mode, print its JSON block on stdout."""
    report = run_mode(args.grid, args.run_one, args.workers)
    json.dump(report, sys.stdout)
    return 0


def _spawn_mode(grid_name: str, execution_mode: str, workers: int) -> dict:
    """Run one mode in a fresh child process and parse its JSON report."""
    command = [sys.executable, str(Path(__file__).resolve()),
               "--grid", grid_name, "--workers", str(workers),
               "--run-one", execution_mode]
    completed = subprocess.run(command, capture_output=True, text=True)
    if completed.returncode != 0:
        raise RuntimeError(
            f"bench child for mode '{execution_mode}' failed:\n{completed.stderr}")
    return json.loads(completed.stdout)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--grid", default="quick", choices=sorted(REFERENCE_GRIDS),
                        help="reference grid to run (default: quick)")
    parser.add_argument("--modes", default="eager,symbolic",
                        help="comma-separated execution modes to measure")
    parser.add_argument("--workers", type=int, default=1,
                        help="sweep worker processes per mode (default: 1)")
    parser.add_argument("--out", default=str(REPO_ROOT / "BENCH_sweep.json"),
                        help="output JSON path (default: BENCH_sweep.json)")
    parser.add_argument("--budget-s", type=float, default=None,
                        help="fail (exit 1) if the whole run exceeds this many "
                             "wall-clock seconds")
    parser.add_argument("--assert-replay-speedup", type=float, default=None,
                        metavar="X",
                        help="fail (exit 1) if replay_speedup.scenarios_per_s "
                             "is below X (requires symbolic and a replay mode)")
    parser.add_argument("--run-one", default=None, metavar="MODE",
                        help=argparse.SUPPRESS)  # internal: child process mode
    args = parser.parse_args(argv)

    if args.run_one:
        return _child(args)

    modes = [mode.strip() for mode in args.modes.split(",") if mode.strip()]
    for mode in modes:
        try:
            base, _, _ = parse_mode(mode)
        except ValueError as error:
            parser.error(str(error))
        if base not in ("eager", "symbolic", "virtual", "replay"):
            parser.error(f"unknown execution mode '{mode}'")

    started = time.perf_counter()
    mode_reports = {}
    for mode in modes:
        print(f"benchmarking {args.grid} grid in {mode} mode ...", flush=True)
        mode_reports[mode] = _spawn_mode(args.grid, mode, args.workers)
        print(f"  {mode}: {mode_reports[mode]['scenarios_per_s']} scenarios/s, "
              f"{mode_reports[mode]['events_per_s']} events/s, "
              f"peak RSS {mode_reports[mode]['peak_rss_bytes'] / 2**20:.1f} MiB")
    total_wall_s = time.perf_counter() - started

    report = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "created_unix": int(time.time()),
        "grid": args.grid,
        "workers": args.workers,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
            "cpu_count": __import__("os").cpu_count(),
        },
        "modes": mode_reports,
        "total_wall_s": round(total_wall_s, 2),
    }
    if "eager" in mode_reports and "symbolic" in mode_reports:
        eager = mode_reports["eager"]
        symbolic = mode_reports["symbolic"]
        report["speedup"] = {
            "scenarios_per_s": round(
                symbolic["scenarios_per_s"] / eager["scenarios_per_s"], 2),
            "events_per_s": round(
                symbolic["events_per_s"] / eager["events_per_s"], 2),
            "peak_rss_ratio": round(
                symbolic["peak_rss_bytes"] / eager["peak_rss_bytes"], 3),
        }
        print(f"symbolic/eager speedup: "
              f"{report['speedup']['scenarios_per_s']}x scenarios/s")
    replay_mode = next((m for m in ("replay-batch", "replay")
                        if m in mode_reports), None)
    if "symbolic" in mode_reports and replay_mode is not None:
        symbolic = mode_reports["symbolic"]
        replayed = mode_reports[replay_mode]
        report["replay_speedup"] = {
            "mode": replay_mode,
            "scenarios_per_s": round(
                replayed["scenarios_per_s"] / symbolic["scenarios_per_s"], 2),
            "events_per_s": round(
                replayed["events_per_s"] / symbolic["events_per_s"], 2),
            "templates_compiled": replayed.get("templates_compiled", 0),
            "template_variants": replayed.get("template_variants", 0),
            "replayed": replayed.get("replayed", 0),
        }
        print(f"{replay_mode}/symbolic speedup: "
              f"{report['replay_speedup']['scenarios_per_s']}x scenarios/s "
              f"({report['replay_speedup']['templates_compiled']} template "
              f"family(ies), {report['replay_speedup']['template_variants']} "
              f"variant capture(s) for {report['replay_speedup']['replayed']} "
              f"scenarios)")
    if "replay" in mode_reports and "replay-batch" in mode_reports:
        report["batch_speedup"] = {
            "scenarios_per_s": round(
                mode_reports["replay-batch"]["scenarios_per_s"]
                / mode_reports["replay"]["scenarios_per_s"], 2),
        }
        print(f"replay-batch/replay speedup: "
              f"{report['batch_speedup']['scenarios_per_s']}x scenarios/s")
    if "symbolic" in mode_reports and "symbolic+swap" in mode_reports:
        plain = mode_reports["symbolic"]
        swapped = mode_reports["symbolic+swap"]
        report["swap_overhead"] = {
            "swap_policy": SWAP_BENCH_POLICY,
            "scenarios_per_s_ratio": round(
                swapped["scenarios_per_s"] / plain["scenarios_per_s"], 3),
            "events_ratio": round(
                swapped["events_total"] / plain["events_total"], 3),
        }
        print(f"swap-execution throughput: "
              f"{report['swap_overhead']['scenarios_per_s_ratio']}x of plain "
              f"symbolic scenarios/s")

    out = Path(args.out)
    out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {out}")

    if args.budget_s is not None and total_wall_s > args.budget_s:
        print(f"error: bench took {total_wall_s:.1f}s, over the "
              f"{args.budget_s:.0f}s budget", file=sys.stderr)
        return 1
    if args.assert_replay_speedup is not None:
        achieved = report.get("replay_speedup", {}).get("scenarios_per_s")
        if achieved is None:
            print("error: --assert-replay-speedup needs both symbolic and a "
                  "replay mode in --modes", file=sys.stderr)
            return 1
        if achieved < args.assert_replay_speedup:
            print(f"error: replay speedup {achieved}x below the "
                  f"{args.assert_replay_speedup}x bar", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
