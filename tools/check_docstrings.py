#!/usr/bin/env python
"""Docstring-coverage gate for ``src/repro`` (used by the docs-sync CI job).

Walks every module under the given package root and fails (exit 1) if a
module, public class or public function/method is missing a docstring.
"Public" means the name has no leading underscore.  Two exemptions keep the
gate practical: purely mechanical dunder methods, and *interface overrides* —
a method whose name is documented on some other class in the package (e.g.
``Module.forward``, ``BaseAllocator.allocate``, the listener ``on_*`` hooks)
does not need to repeat the contract at every implementation site.

Usage::

    python tools/check_docstrings.py [src/repro]
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterator, List, Tuple

#: Dunder methods whose behavior is fully conventional; no docstring required.
EXEMPT_DUNDERS = {
    "__init__", "__repr__", "__str__", "__len__", "__iter__", "__next__",
    "__eq__", "__ne__", "__hash__", "__enter__", "__exit__", "__contains__",
    "__getitem__", "__setitem__", "__call__", "__post_init__", "__setattr__",
}


def _is_public(name: str) -> bool:
    return not name.startswith("_") or (name.startswith("__") and name.endswith("__"))


def _walk_definitions(tree: ast.Module) -> Iterator[Tuple[str, ast.AST]]:
    """Yield ``(dotted name, node)`` for every public class/function."""

    def visit(node: ast.AST, prefix: str) -> Iterator[Tuple[str, ast.AST]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                name = child.name
                if name in EXEMPT_DUNDERS:
                    continue
                if not _is_public(name):
                    continue
                dotted = f"{prefix}{name}"
                yield dotted, child
                if isinstance(child, ast.ClassDef):
                    yield from visit(child, f"{dotted}.")

    yield from visit(tree, "")


def missing_docstrings(root: Path) -> List[str]:
    """Every public definition under ``root`` lacking a docstring."""
    trees = {path: ast.parse(path.read_text(encoding="utf-8"))
             for path in sorted(root.rglob("*.py"))}

    # Pass 1: method names documented on at least one class anywhere in the
    # package — overrides of these are interface implementations and exempt.
    documented_methods = set()
    for tree in trees.values():
        for dotted, node in _walk_definitions(tree):
            if ("." in dotted
                    and isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and ast.get_docstring(node) is not None):
                documented_methods.add(node.name)

    problems: List[str] = []
    for path, tree in trees.items():
        relative = path.relative_to(root.parent)
        if ast.get_docstring(tree) is None:
            problems.append(f"{relative}: missing module docstring")
        for dotted, node in _walk_definitions(tree):
            if ast.get_docstring(node) is not None:
                continue
            is_method = "." in dotted and isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef))
            if is_method and node.name in documented_methods:
                continue
            problems.append(f"{relative}:{node.lineno}: {dotted} missing docstring")
    return problems


def main(argv: List[str]) -> int:
    """CLI entry point; returns the process exit code."""
    root = Path(argv[1]) if len(argv) > 1 else Path("src/repro")
    if not root.is_dir():
        print(f"error: package root {root} not found", file=sys.stderr)
        return 2
    problems = missing_docstrings(root)
    if problems:
        print(f"{len(problems)} public definition(s) missing docstrings:")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"docstring coverage OK under {root}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
