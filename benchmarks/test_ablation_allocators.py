"""Ablation A1 — allocator policy.

Traces the same MLP workload under the caching allocator (the policy the
paper instruments), a best-fit arena allocator and a bump allocator, and
quantifies how much the allocator policy shapes the memory-behavior stream:
block reuse (cache hit rate), number of distinct block identities, reserved
footprint and segment traffic.
"""

import pytest

from repro.experiments import run_allocator_ablation
from repro.viz import render_table

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="ablation-allocator")
def test_allocator_policy_ablation(benchmark):
    rows = run_once(benchmark, run_allocator_ablation)

    table = [row.to_dict() for row in rows]
    print_figure("Ablation A1 — allocator policy on the shared MLP workload",
                 render_table(table))
    attach(benchmark, **{row.allocator: {"cache_hit_rate": round(row.cache_hit_rate, 3),
                                         "num_blocks": row.num_blocks,
                                         "segment_allocs": row.segment_allocs}
                         for row in rows})

    by_name = {row.allocator: row for row in rows}
    # The caching allocator reuses blocks heavily...
    assert by_name["caching"].cache_hit_rate > 0.5
    # ...which keeps both the distinct-block count and the cudaMalloc traffic low
    # relative to the bump allocator that never reuses anything.
    assert by_name["caching"].num_blocks < by_name["bump"].num_blocks
    assert by_name["caching"].segment_allocs < by_name["bump"].segment_allocs
    # All policies serve the same workload, so the peak allocated bytes agree.
    peaks = {row.peak_allocated_bytes for row in rows}
    assert max(peaks) - min(peaks) < 0.05 * max(peaks)
