"""Benchmark E1/E9 — Figure 2: Gantt chart of the first five MLP training iterations.

Regenerates the Gantt chart of block lifetimes over five iterations of the
paper's MLP and verifies the paper's observations: the memory behaviors are
iterative (per-iteration signatures repeat) and fragmentation is low.
"""

import pytest

from repro.experiments import paper_mlp_config, run_fig2
from repro.viz import render_gantt

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig2")
def test_fig2_gantt_chart_first_five_iterations(benchmark):
    result = run_once(benchmark, run_fig2, paper_mlp_config(), 5)

    print_figure("Figure 2 — Gantt chart of the first five MLP training iterations",
                 render_gantt(result.gantt, width=100, max_rows=30))
    summary = result.summary()
    attach(benchmark,
           num_rectangles=summary["num_rectangles"],
           mean_sequence_similarity=summary["mean_sequence_similarity"],
           mean_jaccard_similarity=summary["mean_jaccard_similarity"],
           peak_live_bytes=summary["peak_live_bytes"],
           iteration_durations_s=summary["iteration_durations_s"])

    # Paper claims: obvious iterative patterns over the first five iterations,
    # and few memory fragments.
    assert summary["num_iterations"] == 5
    assert result.patterns.is_iterative
    assert result.patterns.mean_sequence_similarity > 0.95
    assert result.fragmentation.peak_reserved_bytes >= result.fragmentation.peak_allocated_bytes
    # Iteration durations are stable (the Gantt chart repeats).
    durations = summary["iteration_durations_s"]
    assert max(durations) - min(durations) < 0.05 * max(durations)


@pytest.mark.benchmark(group="fig2")
def test_fig2_iterative_pattern_holds_for_lenet(benchmark):
    """The paper notes the observation also applies to other DNNs."""
    from repro.experiments.configs import breakdown_config
    from repro.experiments.fig2_gantt import run_fig2 as run

    config = breakdown_config(model="lenet5", dataset="mnist", batch_size=32, iterations=5)
    result = run_once(benchmark, run, config, 5)
    attach(benchmark, mean_sequence_similarity=result.patterns.mean_sequence_similarity)
    assert result.patterns.is_iterative
