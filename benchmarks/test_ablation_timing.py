"""Ablation A2 — timing-model sensitivity.

The ATI distribution's small-interval band is produced by kernel launch and
host dispatch overheads; this ablation sweeps the host dispatch overhead and
shows the median ATI tracking it, while the large outlier intervals (driven by
the host-side iteration gap) barely move.
"""

import pytest

from repro.experiments import run_timing_ablation
from repro.viz import render_table

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="ablation-timing")
def test_timing_model_sensitivity(benchmark):
    rows = run_once(benchmark, run_timing_ablation)

    print_figure("Ablation A2 — ATI percentiles vs host dispatch overhead",
                 render_table([row.to_dict() for row in rows]))
    attach(benchmark, rows=[row.to_dict() for row in rows])

    medians = [row.p50_us for row in rows]
    overheads = [row.host_dispatch_overhead_us for row in rows]
    # The median ATI grows monotonically with the dispatch overhead...
    assert all(b > a for a, b in zip(medians, medians[1:]))
    # ...and roughly linearly: doubling the overhead never more than triples it.
    for (o1, m1), (o2, m2) in zip(zip(overheads, medians), zip(overheads[1:], medians[1:])):
        assert m2 - m1 < 3 * (o2 - o1) + 50
