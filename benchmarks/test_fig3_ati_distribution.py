"""Benchmark E2/E3 — Figure 3: CDF and violin plot of MLP access-time intervals.

Regenerates the ATI distribution of the MLP trace.  The paper reports a
concentrated distribution with 90% of behaviors under 25 us; our simulated
kernels are modelled with a roofline (no sub-kernel overlap, fewer per-op
temporaries than real PyTorch), so the absolute percentiles are larger, but
the distribution remains strongly bimodal/concentrated: the bulk of behaviors
sit orders of magnitude below the iteration-scale outliers.
"""

import pytest

from repro.experiments import run_fig3
from repro.viz import render_cdf, render_violin

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig3")
def test_fig3_ati_cdf_and_violin(benchmark):
    result = run_once(benchmark, run_fig3)

    print_figure("Figure 3a — CDF of MLP access-time intervals (us)",
                 render_cdf(result.cdf, width=70, height=14))
    print_figure("Figure 3b — violin statistics per behavior kind (us)",
                 render_violin(result.violins))

    stats = result.summary_stats
    attach(benchmark, num_intervals=stats.count, p50_us=stats.p50_us, p90_us=stats.p90_us,
           mean_us=stats.mean_us, max_us=stats.max_us,
           fraction_below_25us=result.fraction_below_25us)

    # Shape checks: the distribution is concentrated well below the iteration
    # scale, with a long tail of iteration-scale intervals.
    assert stats.count > 200
    assert stats.p50_us < 10_000                  # bulk of behaviors are << 10 ms
    assert stats.max_us > 100_000                 # tail reaches the iteration scale
    assert result.cdf.fraction_below(stats.p50_us) >= 0.5
    # Most behaviors are far smaller than what swapping needs (paper Sec. III).
    assert result.fraction_below_25us > 0.2
    # Violin medians per behavior kind stay in the sub-millisecond regime.
    for kind, violin in result.violins.items():
        assert violin.median < 50_000, kind
