"""Benchmark E4 — Equation 1 and the bandwidthTest measurement.

Regenerates the paper's swap-bound arithmetic: the simulated bandwidth test
measures ~6.3 / 6.4 GB/s pinned transfer bandwidth, and Eq. 1 then bounds the
no-overhead swap size at ~79.37 KB for a 25 us ATI and ~2.54 GB for a 0.8 s
ATI — the numbers the paper reports verbatim.
"""

import pytest

from repro.experiments import run_eq1
from repro.units import GB, KB
from repro.viz import render_table

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="eq1")
def test_eq1_bandwidth_and_swap_bounds(benchmark):
    result = run_once(benchmark, run_eq1)

    rows = [{"ATI (us)": ati_us, "max swap size (KB)": round(bound / KB, 2)}
            for ati_us, bound in result.sweep]
    print_figure("Equation 1 — maximum no-overhead swap size vs access-time interval",
                 result.bandwidth_report.summary() + "\n\n" + render_table(rows))

    summary = result.summary()
    attach(benchmark, **summary)

    # The paper's two operating points, reproduced to two decimal places.
    assert summary["swap_bound_at_25us_kb"] == pytest.approx(79.37, abs=0.01)
    assert summary["swap_bound_at_0.8s_gb"] == pytest.approx(2.54, abs=0.01)
    # The simulated bandwidthTest lands on the paper's measured numbers.
    assert summary["measured_h2d_gbps"] == pytest.approx(6.3, rel=0.05)
    assert summary["measured_d2h_gbps"] == pytest.approx(6.4, rel=0.05)


@pytest.mark.benchmark(group="eq1")
def test_eq1_small_atis_make_swapping_useless(benchmark):
    """The 25 us bound (≈79 KB) is 'a drop in the bucket' for the MLP footprint."""
    result = run_once(benchmark, run_eq1)
    bound_at_25us = result.paper_points[25.0]
    # The MLP's large saved activation is hundreds of MB; 79 KB is < 0.1 % of it.
    from repro.units import MIB
    assert bound_at_25us < 0.001 * 600 * MIB
    attach(benchmark, bound_at_25us_bytes=bound_at_25us)
