"""Microbenchmarks of the substrate itself.

These measure the reproduction's own machinery (not a paper figure): the
caching allocator's allocate/free throughput, the overhead the trace recorder
adds to a training iteration, and the speed of the ATI analysis on a large
trace.  They guard against performance regressions that would make the
figure-level experiments impractically slow.
"""

import numpy as np
import pytest

from repro.core.ati import compute_access_intervals
from repro.core.profiler import MemoryProfiler
from repro.device import Device, small_test_device, titan_x_pascal
from repro.experiments.configs import small_mlp_config
from repro.train.session import run_training_session
from repro.units import KIB, MIB


@pytest.mark.benchmark(group="micro-allocator")
def test_caching_allocator_alloc_free_throughput(benchmark):
    device = Device(titan_x_pascal(), execution_mode="virtual")

    def alloc_free_cycle():
        blocks = [device.allocate((i % 64 + 1) * 4 * KIB) for i in range(256)]
        for block in blocks:
            device.free(block)

    benchmark(alloc_free_cycle)
    assert device.allocated_bytes == 0


@pytest.mark.benchmark(group="micro-recorder")
def test_profiling_overhead_per_training_iteration(benchmark):
    """One profiled virtual training iteration of the small MLP."""
    config = small_mlp_config(batch_size=64, iterations=1, hidden_dim=256)
    config.execution_mode = "virtual"

    result = benchmark.pedantic(run_training_session, args=(config,), rounds=3, iterations=1)
    assert len(result.trace) > 0
    benchmark.extra_info["events_per_iteration"] = len(result.trace)


@pytest.mark.benchmark(group="micro-analysis")
def test_ati_analysis_speed_on_large_trace(benchmark):
    """ATI extraction over a multi-thousand-event trace."""
    config = small_mlp_config(batch_size=64, iterations=20, hidden_dim=256)
    config.execution_mode = "virtual"
    trace = run_training_session(config).trace

    intervals = benchmark(compute_access_intervals, trace)
    assert len(intervals) > 500
    benchmark.extra_info["num_events"] = len(trace)
    benchmark.extra_info["num_intervals"] = len(intervals)
