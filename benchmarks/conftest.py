"""Shared helpers for the benchmark harness.

Each benchmark regenerates one of the paper's tables/figures: it runs the
experiment exactly once under ``pytest-benchmark`` (``rounds=1`` — the
figure experiments are seconds-scale simulations, not microbenchmarks),
prints the reproduced rows/series, stores the headline numbers in
``benchmark.extra_info`` and asserts the paper's qualitative claims.
"""

from __future__ import annotations

import json


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under the benchmark fixture and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach(benchmark, **info):
    """Attach JSON-serializable numbers to the benchmark report."""
    for key, value in info.items():
        try:
            json.dumps(value)
            benchmark.extra_info[key] = value
        except (TypeError, ValueError):
            benchmark.extra_info[key] = str(value)


def print_figure(title, body):
    """Print a reproduced figure/table under a clear banner."""
    banner = "=" * 78
    print(f"\n{banner}\n{title}\n{banner}\n{body}\n")
