"""Benchmark E6 — Figure 5: memory occupation breakdown of typical DNNs.

Regenerates the three-way (input data / parameters / intermediate results)
breakdown at peak occupancy for a family of typical DNNs and checks the
paper's claims: parameters are a small fraction of the training footprint for
every model, and intermediate results are the dominant bucket.
"""

import pytest

from repro.core.events import PAPER_BUCKETS
from repro.experiments import run_fig5
from repro.viz import render_stacked_bars

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig5")
def test_fig5_breakdown_of_typical_dnns(benchmark):
    result = run_once(benchmark, run_fig5)

    rows = result.rows()
    print_figure("Figure 5 — memory occupation breakdown of typical DNN training",
                 render_stacked_bars(rows, PAPER_BUCKETS, label_key="label"))

    attach(benchmark,
           num_models=len(rows),
           parameter_fractions={row["label"]: round(row["parameters"], 3) for row in rows},
           intermediate_fractions={row["label"]: round(row["intermediate results"], 3)
                                   for row in rows})

    # Paper claims.
    assert len(rows) >= 6
    assert result.parameters_always_minor(threshold=0.5)
    assert result.intermediates_dominant_count() == len(rows)
    for row in rows:
        assert row["intermediate results"] > row["input data"]
        assert abs(sum(row[bucket] for bucket in PAPER_BUCKETS) - 1.0) < 1e-6
