"""Benchmark E5 — Figure 4: per-behavior ATI and block size, outlier behaviors.

Regenerates the pair-wise (ATI, block size) series of every MLP memory
behavior and verifies the paper's headline observation: a few behaviors have
ATIs above 0.8 s on blocks larger than 600 MB (the paper's red-marked example
is 840 211 us / 1200 MB), and by Eq. 1 those — and only those — can hide a
useful amount of swapping.
"""

import pytest

from repro.core.swap import max_swap_bytes
from repro.experiments import run_fig4
from repro.units import GB, MIB, s_to_ns
from repro.viz import render_scatter, render_table

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig4")
def test_fig4_pairwise_ati_and_outliers(benchmark):
    result = run_once(benchmark, run_fig4)

    points = [(row["behavior_index"], row["ati_us"]) for row in result.pairwise]
    outlier_points = [(result.pairwise.index(row), row["ati_us"])
                      for row in result.pairwise
                      if row["ati_us"] * 1_000 >= s_to_ns(0.8)
                      and row["size_bytes"] >= 600 * MIB]
    print_figure("Figure 4 — per-behavior ATI (us) vs behavior index",
                 render_scatter(points, highlight=outlier_points,
                                x_label="behavior index", y_label="ATI (us)"))
    print_figure("Figure 4 — outlier behaviors (ATI > 0.8 s and size > 600 MB)",
                 render_table([{"description": line} for line in result.outliers.describe()])
                 if result.outliers.count else "(none)")

    summary = result.summary()
    attach(benchmark, **{k: v for k, v in summary.items() if k != "workload"})

    # Paper-shape assertions.
    assert result.outliers.count > 0
    assert result.outliers.fraction < 0.2                     # outliers are rare
    largest = result.outliers.largest
    assert largest.size >= 600 * MIB                          # same size regime as the paper
    assert largest.interval_ns >= s_to_ns(0.8)                # same ATI regime as the paper
    # Eq. 1 on the largest outlier allows far more than the block itself
    # (the paper computes 2.54 GB >> 1200 MB for its red-marked outlier).
    bound = max_swap_bytes(largest.interval_ns, result.bandwidths)
    assert bound > largest.size
    assert summary["largest_outlier_swap_bound_gb"] > 2.0
