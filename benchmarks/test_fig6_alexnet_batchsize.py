"""Benchmark E7 — Figure 6: AlexNet breakdown versus batch size (CIFAR-100).

Regenerates the batch-size sweep of the linear DNN (AlexNet on CIFAR-100
shaped data) and checks the paper's claims: as batch size grows, intermediate
results gradually dominate, the parameter share weakens, and the input-data
share increases slightly.
"""

import pytest

from repro.core.events import PAPER_BUCKETS
from repro.experiments import DEFAULT_FIG6_BATCH_SIZES, run_fig6
from repro.viz import render_stacked_bars

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig6")
def test_fig6_alexnet_breakdown_vs_batch_size(benchmark):
    result = run_once(benchmark, run_fig6)

    rows = result.rows()
    print_figure("Figure 6 — AlexNet (CIFAR-100) breakdown vs batch size",
                 render_stacked_bars(rows, PAPER_BUCKETS, label_key="batch_size"))

    attach(benchmark,
           batch_sizes=list(DEFAULT_FIG6_BATCH_SIZES),
           intermediate_trend=[round(value, 3)
                               for value in result.series.trend("intermediate results")],
           parameter_trend=[round(value, 3) for value in result.series.trend("parameters")],
           input_trend=[round(value, 3) for value in result.series.trend("input data")])

    # Paper claims.
    assert result.intermediates_grow_with_batch()
    assert result.parameters_shrink_with_batch()
    input_trend = result.series.trend("input data")
    assert input_trend[-1] >= input_trend[0]            # input share increases slightly
    totals = [row["total_bytes"] for row in rows]
    assert all(b > a for a, b in zip(totals, totals[1:]))
    # At the largest batch, intermediates dominate outright.
    assert result.series.trend("intermediate results")[-1] > 0.5
