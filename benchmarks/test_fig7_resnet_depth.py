"""Benchmark E8 — Figure 7: ResNet breakdown versus depth (ImageNet).

Regenerates the non-linear DNN sweep (ResNet-18/34/50/101/152 on
ImageNet-sized inputs, fixed batch) and checks the paper's claims:
intermediate results dominate the footprint at every depth, the parameter
share stays minor, and the absolute footprint grows with the number of
residual layer blocks.
"""

import pytest

from repro.core.events import PAPER_BUCKETS
from repro.experiments import DEFAULT_FIG7_DEPTHS, run_fig7
from repro.viz import render_stacked_bars

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="fig7")
def test_fig7_resnet_breakdown_vs_depth(benchmark):
    result = run_once(benchmark, run_fig7)

    rows = result.rows()
    print_figure("Figure 7 — ResNet (ImageNet, batch 16) breakdown vs depth",
                 render_stacked_bars(rows, PAPER_BUCKETS, label_key="depth"))

    attach(benchmark,
           depths=list(DEFAULT_FIG7_DEPTHS),
           total_bytes=[row["total_bytes"] for row in rows],
           intermediate_trend=[round(value, 3)
                               for value in result.series.trend("intermediate results")],
           parameter_trend=[round(value, 3) for value in result.series.trend("parameters")])

    # Paper claims.
    assert len(rows) == len(DEFAULT_FIG7_DEPTHS)
    assert result.intermediates_dominant_everywhere(threshold=0.5)
    assert result.parameters_always_minor(threshold=0.5)
    assert result.total_footprint_grows_with_depth()
    # The deepest network's intermediates dwarf its parameters by a wide margin.
    deepest = rows[-1]
    assert deepest["intermediate results"] > 4 * deepest["parameters"]
