"""Benchmark E10 — the paper's future work: an automatic swap cost model.

Runs the trace-driven SwapPlanner on the MLP workload and compares it with the
SwapAdvisor-style (largest tensors, timing-oblivious) and ZeRO-Offload-style
(optimizer state + gradients) reference policies: the planner should recover
most of the peak footprint at zero modelled runtime overhead, which is exactly
the opportunity the paper's outlier analysis points at.
"""

import pytest

from repro.experiments import run_swap_planner
from repro.viz import render_table

from conftest import attach, print_figure, run_once


@pytest.mark.benchmark(group="swap-planner")
def test_swap_planner_against_reference_policies(benchmark):
    result = run_once(benchmark, run_swap_planner)

    summary = result.summary()
    rows = [
        {"policy": "ATI-aware planner (this work)",
         "savings_fraction": summary["planner"]["savings_fraction"],
         "overhead_ns": summary["planner"]["total_overhead_ns"]},
        {"policy": "SwapAdvisor-style (largest tensors)",
         "savings_fraction": summary["swap_advisor_style"]["savings_fraction"],
         "overhead_ns": summary["swap_advisor_style"]["overhead_ns"]},
        {"policy": "ZeRO-Offload-style (optimizer state)",
         "savings_fraction": summary["zero_offload_style"]["savings_fraction"],
         "overhead_ns": summary["zero_offload_style"]["overhead_ns"]},
    ]
    print_figure("Swap-planning cost model (paper Sec. IV future work)",
                 render_table(rows))
    print_figure("Selected swaps", result.plan.describe())

    attach(benchmark,
           planner_savings_fraction=summary["planner"]["savings_fraction"],
           planner_overhead_ns=summary["planner"]["total_overhead_ns"],
           swap_advisor_savings_fraction=summary["swap_advisor_style"]["savings_fraction"],
           zero_offload_savings_fraction=summary["zero_offload_style"]["savings_fraction"])

    planner = summary["planner"]
    # The planner only takes Eq.-1-feasible swaps, so it models zero overhead...
    assert planner["total_overhead_ns"] == 0.0
    # ...while still recovering the majority of the peak footprint (the big
    # idle activations are exactly the outliers of Figure 4).
    assert planner["savings_fraction"] > 0.5
    # It saves at least as much as the optimizer-state-only baseline.
    assert planner["savings_bytes"] >= summary["zero_offload_style"]["savings_bytes"]
