"""Synthetic datasets and the batch loader with its host-latency model."""

from .datasets import (
    DATASET_PRESETS,
    DatasetSpec,
    SyntheticCIFAR10,
    SyntheticCIFAR100,
    SyntheticDataset,
    SyntheticImageNet,
    SyntheticMNIST,
    TwoClusterDataset,
    build_dataset,
)
from .loader import DataLoader, HostLatencyModel

__all__ = [
    "DATASET_PRESETS",
    "DataLoader",
    "DatasetSpec",
    "HostLatencyModel",
    "SyntheticCIFAR10",
    "SyntheticCIFAR100",
    "SyntheticDataset",
    "SyntheticImageNet",
    "SyntheticMNIST",
    "TwoClusterDataset",
    "build_dataset",
]
