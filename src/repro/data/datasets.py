"""Synthetic datasets with the shapes of the paper's workloads.

Memory behavior depends only on tensor shapes and batch size, never on pixel
values, so the paper's CIFAR-100 and ImageNet workloads are replaced by
synthetic datasets that produce batches of identical shape.  A small
separable two-cluster dataset is provided for the MLP so that eager training
measurably reduces the loss (used by integration tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from ..errors import ConfigurationError


@dataclass(frozen=True)
class DatasetSpec:
    """Static description of a dataset: sample shape and label space."""

    name: str
    sample_shape: Tuple[int, ...]
    num_classes: int
    num_samples: int

    @property
    def sample_bytes(self) -> int:
        """Bytes of one float32 sample."""
        return int(np.prod(self.sample_shape)) * 4


class SyntheticDataset:
    """Base class: draws random batches with a fixed shape and label count."""

    def __init__(self, spec: DatasetSpec, seed: int = 0):
        if spec.num_classes <= 1:
            raise ConfigurationError("datasets need at least two classes")
        self.spec = spec
        self._rng = np.random.default_rng(seed)

    def __len__(self) -> int:
        return self.spec.num_samples

    @property
    def name(self) -> str:
        """Dataset name."""
        return self.spec.name

    @property
    def sample_shape(self) -> Tuple[int, ...]:
        """Shape of a single sample (without the batch dimension)."""
        return self.spec.sample_shape

    @property
    def num_classes(self) -> int:
        """Number of target classes."""
        return self.spec.num_classes

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        """Draw a batch: float32 inputs of shape ``(batch, *sample_shape)`` and int64 labels."""
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        inputs = self._rng.standard_normal(
            (batch_size,) + self.spec.sample_shape
        ).astype(np.float32)
        labels = self._rng.integers(0, self.spec.num_classes, size=batch_size).astype(np.int64)
        return inputs, labels

    def batch_bytes(self, batch_size: int) -> int:
        """Device bytes needed to stage one input batch (float32)."""
        return batch_size * self.spec.sample_bytes

    def label_bytes(self, batch_size: int) -> int:
        """Device bytes needed to stage one label batch (int64)."""
        return batch_size * 8


class SyntheticCIFAR100(SyntheticDataset):
    """CIFAR-100-shaped synthetic data: 3x32x32 float32 images, 100 classes."""

    def __init__(self, num_samples: int = 50_000, seed: int = 0):
        super().__init__(DatasetSpec("cifar100", (3, 32, 32), 100, num_samples), seed=seed)


class SyntheticCIFAR10(SyntheticDataset):
    """CIFAR-10-shaped synthetic data: 3x32x32 float32 images, 10 classes."""

    def __init__(self, num_samples: int = 50_000, seed: int = 0):
        super().__init__(DatasetSpec("cifar10", (3, 32, 32), 10, num_samples), seed=seed)


class SyntheticImageNet(SyntheticDataset):
    """ImageNet-shaped synthetic data: 3x224x224 float32 images, 1000 classes."""

    def __init__(self, num_samples: int = 1_281_167, seed: int = 0):
        super().__init__(DatasetSpec("imagenet", (3, 224, 224), 1000, num_samples), seed=seed)


class SyntheticMNIST(SyntheticDataset):
    """MNIST-shaped synthetic data: 1x28x28 float32 images, 10 classes."""

    def __init__(self, num_samples: int = 60_000, seed: int = 0):
        super().__init__(DatasetSpec("mnist", (1, 28, 28), 10, num_samples), seed=seed)


class TwoClusterDataset(SyntheticDataset):
    """A linearly separable two-class dataset for the paper's MLP case study.

    Samples are drawn from two Gaussian clusters in ``input_dim`` dimensions,
    so a small MLP trained on it measurably reduces its loss within a few
    iterations — used by integration tests to verify end-to-end training.
    """

    def __init__(self, input_dim: int = 2, num_samples: int = 100_000, seed: int = 0,
                 separation: float = 3.0):
        spec = DatasetSpec("two_cluster", (input_dim,), 2, num_samples)
        super().__init__(spec, seed=seed)
        self.separation = float(separation)
        self._centers = np.stack([
            np.full(input_dim, -self.separation / 2.0, dtype=np.float32),
            np.full(input_dim, self.separation / 2.0, dtype=np.float32),
        ])

    def sample_batch(self, batch_size: int) -> Tuple[np.ndarray, np.ndarray]:
        labels = self._rng.integers(0, 2, size=batch_size).astype(np.int64)
        noise = self._rng.standard_normal(
            (batch_size,) + self.spec.sample_shape
        ).astype(np.float32)
        inputs = self._centers[labels] + noise
        return inputs.astype(np.float32), labels


#: Registry of dataset presets keyed by the names used in experiment configs.
DATASET_PRESETS = {
    "cifar100": SyntheticCIFAR100,
    "cifar10": SyntheticCIFAR10,
    "imagenet": SyntheticImageNet,
    "mnist": SyntheticMNIST,
    "two_cluster": TwoClusterDataset,
}


def build_dataset(name: str, **kwargs) -> SyntheticDataset:
    """Instantiate a dataset preset by name."""
    try:
        cls = DATASET_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DATASET_PRESETS))
        raise ConfigurationError(f"unknown dataset '{name}'; known datasets: {known}") from None
    return cls(**kwargs)
