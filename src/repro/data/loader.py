"""Batch loader with a host-side latency model.

Real training iterations are separated by host work: fetching and decoding
the next batch, Python/dataloader overhead and optimizer bookkeeping.  Those
gaps are precisely where the paper's *outlier* access-time intervals come
from — blocks that are re-used across iterations see an interval that covers
the whole host-side pause.  :class:`HostLatencyModel` makes that pause an
explicit, configurable part of the simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from ..errors import ConfigurationError
from .datasets import SyntheticDataset


@dataclass(frozen=True)
class HostLatencyModel:
    """Host-side time consumed per batch before the device can start.

    ``per_batch_ns`` models fixed Python/dataloader overhead;
    ``per_sample_ns`` models per-image decode/augmentation cost;
    ``per_byte_ns`` models memcpy/collation cost proportional to batch bytes.
    """

    per_batch_ns: int = 2_000_000          # 2 ms fixed overhead
    per_sample_ns: int = 45_000            # 45 us per sample (decode + augment)
    per_byte_ns: float = 0.05              # ~20 GB/s host-side collation

    def batch_time_ns(self, batch_size: int, batch_bytes: int) -> int:
        """Host latency for one batch of ``batch_size`` samples / ``batch_bytes`` bytes."""
        total = (self.per_batch_ns
                 + self.per_sample_ns * batch_size
                 + self.per_byte_ns * batch_bytes)
        return int(round(total))


class DataLoader:
    """Yields host batches and reports the host latency the batch cost."""

    def __init__(self, dataset: SyntheticDataset, batch_size: int,
                 host_latency: Optional[HostLatencyModel] = None):
        if batch_size <= 0:
            raise ConfigurationError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.host_latency = host_latency if host_latency is not None else HostLatencyModel()

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """Draw the next host-side batch (inputs, labels)."""
        return self.dataset.sample_batch(self.batch_size)

    def host_time_ns(self) -> int:
        """Host latency charged for producing one batch."""
        return self.host_latency.batch_time_ns(
            self.batch_size, self.dataset.batch_bytes(self.batch_size)
        )

    def batches(self, count: int) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        """Yield ``count`` batches."""
        for _ in range(count):
            yield self.next_batch()

    @property
    def batch_bytes(self) -> int:
        """Device bytes of one staged input batch."""
        return self.dataset.batch_bytes(self.batch_size)

    @property
    def label_bytes(self) -> int:
        """Device bytes of one staged label batch."""
        return self.dataset.label_bytes(self.batch_size)
