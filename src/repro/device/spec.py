"""Hardware specifications of the simulated accelerator.

The paper's experiments run on an Nvidia Titan X (Pascal) GPU and measure the
pinned host↔device memcpy bandwidth with CUDA's ``bandwidthTest`` sample
(6.3 GB/s host→device, 6.4 GB/s device→host).  :class:`DeviceSpec` captures
everything the simulator needs to model that machine: memory capacity, compute
throughput, device memory bandwidth, interconnect bandwidths and the fixed
overheads of launching kernels and memcpys.

Several presets are provided so that experiments can also be run on
hypothetical smaller/larger devices (useful for the swap-planning extension
and for fast unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict

from ..units import GIB, MIB


@dataclass(frozen=True)
class DeviceSpec:
    """Static description of a simulated DNN accelerator.

    Attributes
    ----------
    name:
        Human-readable device name.
    memory_capacity:
        Device DRAM capacity in bytes.
    peak_flops:
        Peak single-precision throughput in FLOP/s.
    memory_bandwidth:
        Device DRAM bandwidth in bytes/s.
    h2d_bandwidth:
        Pinned host→device copy bandwidth in bytes/s.
    d2h_bandwidth:
        Pinned device→host copy bandwidth in bytes/s.
    kernel_launch_overhead_ns:
        Fixed host+driver overhead added to every kernel launch.
    memcpy_launch_overhead_ns:
        Fixed overhead added to every DMA transfer.
    allocator_overhead_ns:
        Host-side time consumed by a cache-hit allocation in the caching
        allocator (a cache miss additionally pays ``cuda_malloc_overhead_ns``).
    cuda_malloc_overhead_ns:
        Cost of a real ``cudaMalloc``/``cudaFree`` call (segment creation).
    """

    name: str
    memory_capacity: int
    peak_flops: float
    memory_bandwidth: float
    h2d_bandwidth: float
    d2h_bandwidth: float
    kernel_launch_overhead_ns: int = 5_000
    memcpy_launch_overhead_ns: int = 10_000
    allocator_overhead_ns: int = 700
    cuda_malloc_overhead_ns: int = 200_000

    def __post_init__(self) -> None:
        if self.memory_capacity <= 0:
            raise ValueError("memory_capacity must be positive")
        if self.peak_flops <= 0:
            raise ValueError("peak_flops must be positive")
        if self.memory_bandwidth <= 0:
            raise ValueError("memory_bandwidth must be positive")
        if self.h2d_bandwidth <= 0 or self.d2h_bandwidth <= 0:
            raise ValueError("interconnect bandwidths must be positive")

    def with_memory_capacity(self, capacity: int) -> "DeviceSpec":
        """Return a copy of this spec with a different memory capacity."""
        return replace(self, memory_capacity=int(capacity))

    def to_dict(self) -> Dict[str, float]:
        """Serialize the spec for trace metadata."""
        return {
            "name": self.name,
            "memory_capacity": self.memory_capacity,
            "peak_flops": self.peak_flops,
            "memory_bandwidth": self.memory_bandwidth,
            "h2d_bandwidth": self.h2d_bandwidth,
            "d2h_bandwidth": self.d2h_bandwidth,
            "kernel_launch_overhead_ns": self.kernel_launch_overhead_ns,
            "memcpy_launch_overhead_ns": self.memcpy_launch_overhead_ns,
            "allocator_overhead_ns": self.allocator_overhead_ns,
            "cuda_malloc_overhead_ns": self.cuda_malloc_overhead_ns,
        }


def titan_x_pascal() -> DeviceSpec:
    """The paper's testbed: Nvidia Titan X (Pascal), 12 GB GDDR5X.

    The interconnect bandwidths are the pinned-memory numbers the paper
    measured with CUDA's ``bandwidthTest``: 6.3 GB/s host→device and
    6.4 GB/s device→host (decimal GB).
    """
    return DeviceSpec(
        name="NVIDIA Titan X (Pascal)",
        memory_capacity=12 * GIB,
        peak_flops=10.97e12,
        memory_bandwidth=480e9,
        h2d_bandwidth=6.3e9,
        d2h_bandwidth=6.4e9,
    )


def ampere_a100_40gb() -> DeviceSpec:
    """An A100-40GB-like device, referenced in the paper's introduction."""
    return DeviceSpec(
        name="NVIDIA A100 (Ampere) 40GB",
        memory_capacity=40 * GIB,
        peak_flops=19.5e12,
        memory_bandwidth=1555e9,
        h2d_bandwidth=24e9,
        d2h_bandwidth=24e9,
        kernel_launch_overhead_ns=4_000,
    )


def gtx_1080_8gb() -> DeviceSpec:
    """A GTX 1080-like 8 GB device: the capacity-constrained consumer regime.

    Same Pascal generation as the paper's Titan X but with a third less
    memory, so workloads that barely fit the Titan X become swap candidates.
    """
    return DeviceSpec(
        name="NVIDIA GTX 1080 8GB",
        memory_capacity=8 * GIB,
        peak_flops=8.87e12,
        memory_bandwidth=320e9,
        h2d_bandwidth=6.1e9,
        d2h_bandwidth=6.2e9,
    )


def v100_sxm2_16gb() -> DeviceSpec:
    """A V100-SXM2-16GB-like device: NVLink-class interconnect bandwidth.

    The ~3x faster host link widens Eq. 1's swappable window, which is why
    the swap-feasibility results shift so strongly across the device axis.
    """
    return DeviceSpec(
        name="NVIDIA V100 (Volta) SXM2 16GB",
        memory_capacity=16 * GIB,
        peak_flops=15.7e12,
        memory_bandwidth=900e9,
        h2d_bandwidth=20e9,
        d2h_bandwidth=20e9,
        kernel_launch_overhead_ns=4_500,
    )


def rtx_3090_24gb() -> DeviceSpec:
    """An RTX 3090-like 24 GB device: large-memory consumer Ampere."""
    return DeviceSpec(
        name="NVIDIA RTX 3090 24GB",
        memory_capacity=24 * GIB,
        peak_flops=35.6e12,
        memory_bandwidth=936e9,
        h2d_bandwidth=12e9,
        d2h_bandwidth=12e9,
        kernel_launch_overhead_ns=4_000,
    )


def small_test_device(memory_capacity: int = 256 * MIB) -> DeviceSpec:
    """A tiny device used by unit tests to exercise out-of-memory paths."""
    return DeviceSpec(
        name="test-device",
        memory_capacity=memory_capacity,
        peak_flops=1e12,
        memory_bandwidth=100e9,
        h2d_bandwidth=5e9,
        d2h_bandwidth=5e9,
        kernel_launch_overhead_ns=1_000,
        memcpy_launch_overhead_ns=2_000,
        allocator_overhead_ns=100,
        cuda_malloc_overhead_ns=10_000,
    )


#: Registry of named presets, usable from experiment configuration files.
DEVICE_PRESETS = {
    "titan_x_pascal": titan_x_pascal,
    "gtx_1080_8gb": gtx_1080_8gb,
    "v100_sxm2_16gb": v100_sxm2_16gb,
    "rtx_3090_24gb": rtx_3090_24gb,
    "ampere_a100_40gb": ampere_a100_40gb,
    "small_test_device": small_test_device,
}


def get_device_spec(name: str) -> DeviceSpec:
    """Look up a device preset by name.

    Raises ``KeyError`` with the list of known presets if the name is unknown.
    """
    try:
        factory = DEVICE_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(DEVICE_PRESETS))
        raise KeyError(f"unknown device preset '{name}'; known presets: {known}") from None
    return factory()
