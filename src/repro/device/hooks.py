"""Listener interfaces through which the device reports memory behaviors.

The paper's methodology is to *instrument the memory allocators of the
runtime system*.  In this reproduction the instrumentation points are
explicit: every allocator and every tensor storage accepts a
:class:`MemoryEventListener` and notifies it on each ``malloc``, ``free``,
``read`` and ``write``.  The trace recorder in :mod:`repro.core.recorder`
implements this interface; a :class:`CompositeListener` allows several
consumers (e.g. a recorder plus a live fragmentation monitor) to observe the
same device.
"""

from __future__ import annotations

from typing import Iterable, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers only
    from .memory import Block, Segment


class MemoryEventListener:
    """Base listener; every hook is a no-op.

    Subclasses override the hooks they care about.  All hooks receive the
    *live* block/segment object, so listeners can read its address, size,
    category and tag; they must not mutate it.
    """

    def on_malloc(self, block: "Block", requested_size: int) -> None:
        """A block was handed out by the allocator."""

    def on_free(self, block: "Block") -> None:
        """A block was returned to the allocator."""

    def on_read(self, block: "Block", nbytes: int, op: str) -> None:
        """``nbytes`` of the block were read by operator ``op``."""

    def on_write(self, block: "Block", nbytes: int, op: str) -> None:
        """``nbytes`` of the block were written by operator ``op``."""

    def on_segment_alloc(self, segment: "Segment") -> None:
        """The allocator reserved a new segment (simulated ``cudaMalloc``)."""

    def on_segment_free(self, segment: "Segment") -> None:
        """The allocator released a segment (simulated ``cudaFree``)."""

    def on_swap_out(self, block: "Block", nbytes: int, op: str) -> None:
        """The swap engine evicted ``block`` to the host (``nbytes`` moved)."""

    def on_swap_in(self, block: "Block", nbytes: int, op: str) -> None:
        """The swap engine restored ``block`` to the device (``nbytes`` moved).

        ``op`` names how the restoration happened: a ``"prefetch"`` that made
        its deadline, a ``"demand"`` fetch that stalled the device, or a
        ``"discard"`` (the block was freed while swapped out, so nothing is
        copied and ``nbytes`` is 0).
        """

    def on_recompute_drop(self, block: "Block", nbytes: int, op: str) -> None:
        """The engine discarded ``block`` for later rematerialization.

        No transfer happens — the bytes are simply released from the device
        footprint; ``op`` names the policy that decided the drop.
        """

    def on_recompute(self, block: "Block", nbytes: int, op: str) -> None:
        """The engine rematerialized ``block`` by replaying its producer.

        ``op`` is ``"demand"`` when the replay stalled the device before an
        access, ``"discard"`` when the block was freed while dropped (nothing
        is recomputed and ``nbytes`` is 0), or ``"shutdown"`` for end-of-run
        bookkeeping restores.
        """


class NullListener(MemoryEventListener):
    """A listener that ignores everything (the default when not profiling)."""


class CompositeListener(MemoryEventListener):
    """Fan-out listener that forwards every hook to a list of children."""

    def __init__(self, listeners: Iterable[MemoryEventListener] = ()):
        self._listeners: List[MemoryEventListener] = list(listeners)

    def add(self, listener: MemoryEventListener) -> None:
        """Attach another child listener."""
        self._listeners.append(listener)

    def remove(self, listener: MemoryEventListener) -> None:
        """Detach a child listener (no-op if absent)."""
        if listener in self._listeners:
            self._listeners.remove(listener)

    def __len__(self) -> int:
        return len(self._listeners)

    def on_malloc(self, block: "Block", requested_size: int) -> None:
        for listener in self._listeners:
            listener.on_malloc(block, requested_size)

    def on_free(self, block: "Block") -> None:
        for listener in self._listeners:
            listener.on_free(block)

    def on_read(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_read(block, nbytes, op)

    def on_write(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_write(block, nbytes, op)

    def on_segment_alloc(self, segment: "Segment") -> None:
        for listener in self._listeners:
            listener.on_segment_alloc(segment)

    def on_segment_free(self, segment: "Segment") -> None:
        for listener in self._listeners:
            listener.on_segment_free(segment)

    def on_swap_out(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_swap_out(block, nbytes, op)

    def on_swap_in(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_swap_in(block, nbytes, op)

    def on_recompute_drop(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_recompute_drop(block, nbytes, op)

    def on_recompute(self, block: "Block", nbytes: int, op: str) -> None:
        for listener in self._listeners:
            listener.on_recompute(block, nbytes, op)


class CountingListener(MemoryEventListener):
    """A tiny listener that counts behaviors; useful in tests and sanity checks."""

    def __init__(self) -> None:
        self.mallocs = 0
        self.frees = 0
        self.reads = 0
        self.writes = 0
        self.segment_allocs = 0
        self.segment_frees = 0
        self.swap_outs = 0
        self.swap_ins = 0
        self.recompute_drops = 0
        self.recomputes = 0

    def on_malloc(self, block: "Block", requested_size: int) -> None:
        self.mallocs += 1

    def on_free(self, block: "Block") -> None:
        self.frees += 1

    def on_read(self, block: "Block", nbytes: int, op: str) -> None:
        self.reads += 1

    def on_write(self, block: "Block", nbytes: int, op: str) -> None:
        self.writes += 1

    def on_segment_alloc(self, segment: "Segment") -> None:
        self.segment_allocs += 1

    def on_segment_free(self, segment: "Segment") -> None:
        self.segment_frees += 1

    def on_swap_out(self, block: "Block", nbytes: int, op: str) -> None:
        self.swap_outs += 1

    def on_swap_in(self, block: "Block", nbytes: int, op: str) -> None:
        self.swap_ins += 1

    def on_recompute_drop(self, block: "Block", nbytes: int, op: str) -> None:
        self.recompute_drops += 1

    def on_recompute(self, block: "Block", nbytes: int, op: str) -> None:
        self.recomputes += 1

    @property
    def total_behaviors(self) -> int:
        """Total number of block-level behaviors observed."""
        return self.mallocs + self.frees + self.reads + self.writes
