"""Multi-device clusters: replica groups and their interconnect.

The paper's experiments are single-accelerator, but the regimes its related
work targets — ZeRO-Offload's data-parallel optimizer partitioning, TBD's
multi-GPU training profiles — need a simulator that models *N replicas plus
an interconnect*.  This module introduces that layer:

* :class:`InterconnectSpec` describes the device↔device link (per-link
  bandwidth plus a fixed per-message latency), with presets spanning the
  PCIe and NVLink classes (:data:`INTERCONNECT_PRESETS`);
* :class:`ClusterSpec` combines a per-device :class:`~repro.device.spec.DeviceSpec`
  with a replica count, an interconnect and an allreduce algorithm, and
  exposes the collective cost model (:meth:`ClusterSpec.allreduce_time_ns`);
* :class:`DeviceGroup` instantiates the N replica
  :class:`~repro.device.device.Device`\\ s — each with its own clock,
  allocator and streams — and wires them to one shared
  :class:`~repro.device.collective.CollectiveEngine`.

``DeviceGroup`` with ``n_devices=1`` degenerates exactly to a single
:class:`~repro.device.device.Device`: the collective engine costs nothing and
records nothing, so single-device traces are byte-identical to the
pre-cluster code path.

Allreduce cost models
---------------------
Both models express one allreduce of ``S`` bytes over ``N`` devices with
per-link bandwidth ``B`` and per-message latency ``L``:

* ``ring`` (bandwidth-optimal): ``2·(N−1)`` pipeline steps each moving a
  ``S/N`` chunk → ``2·(N−1)·(L + S/(N·B))``;
* ``naive`` (gather-then-broadcast through one root, fully serialized):
  ``2·(N−1)`` transfers of the full buffer → ``2·(N−1)·(L + S/B)``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterator, List, Optional

from ..errors import ConfigurationError
from .device import Device
from .spec import DeviceSpec, titan_x_pascal


@dataclass(frozen=True)
class InterconnectSpec:
    """Static description of the device↔device link of a cluster.

    Attributes
    ----------
    name:
        Preset name (e.g. ``"pcie_gen3"``).
    bandwidth:
        Per-link, per-direction bandwidth in bytes/s.
    latency_ns:
        Fixed per-message latency (link traversal + collective launch).
    """

    name: str
    bandwidth: float
    latency_ns: int

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("interconnect bandwidth must be positive")
        if self.latency_ns < 0:
            raise ConfigurationError("interconnect latency must be non-negative")

    def to_dict(self) -> Dict[str, object]:
        """Serialize the interconnect for trace metadata."""
        return {"name": self.name, "bandwidth": self.bandwidth,
                "latency_ns": self.latency_ns}


def pcie_gen3() -> InterconnectSpec:
    """PCIe 3.0 x16 peer traffic: ~12 GB/s effective, ~10 us per message."""
    return InterconnectSpec(name="pcie_gen3", bandwidth=12e9, latency_ns=10_000)


def pcie_gen4() -> InterconnectSpec:
    """PCIe 4.0 x16 peer traffic: ~24 GB/s effective."""
    return InterconnectSpec(name="pcie_gen4", bandwidth=24e9, latency_ns=10_000)


def nvlink2() -> InterconnectSpec:
    """NVLink 2 (V100-class): ~120 GB/s per direction, low launch latency."""
    return InterconnectSpec(name="nvlink2", bandwidth=120e9, latency_ns=5_000)


def ethernet_25g() -> InterconnectSpec:
    """25 GbE between nodes: ~3 GB/s and tens of microseconds of latency."""
    return InterconnectSpec(name="ethernet_25g", bandwidth=3e9, latency_ns=50_000)


#: Registry of named interconnect presets, usable from sweep configurations.
INTERCONNECT_PRESETS: Dict[str, Callable[[], InterconnectSpec]] = {
    "pcie_gen3": pcie_gen3,
    "pcie_gen4": pcie_gen4,
    "nvlink2": nvlink2,
    "ethernet_25g": ethernet_25g,
}


def get_interconnect(name: str) -> InterconnectSpec:
    """Look up an interconnect preset by name (KeyError lists known presets)."""
    try:
        factory = INTERCONNECT_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(INTERCONNECT_PRESETS))
        raise KeyError(
            f"unknown interconnect preset '{name}'; known presets: {known}") from None
    return factory()


# -- allreduce cost models ------------------------------------------------------------


def ring_allreduce_time_ns(nbytes: int, n_devices: int, bandwidth: float,
                           latency_ns: int) -> int:
    """Ring allreduce: ``2·(N−1)`` steps, each moving an ``S/N`` chunk per link."""
    if n_devices <= 1 or nbytes <= 0:
        return 0
    steps = 2 * (n_devices - 1)
    chunk_ns = 1e9 * (nbytes / n_devices) / bandwidth
    return int(round(steps * (latency_ns + chunk_ns)))


def naive_allreduce_time_ns(nbytes: int, n_devices: int, bandwidth: float,
                            latency_ns: int) -> int:
    """Naive allreduce: serialized gather-to-root then broadcast of the full buffer."""
    if n_devices <= 1 or nbytes <= 0:
        return 0
    steps = 2 * (n_devices - 1)
    full_ns = 1e9 * nbytes / bandwidth
    return int(round(steps * (latency_ns + full_ns)))


#: Registered allreduce algorithms (sweepable by name).
ALLREDUCE_ALGORITHMS: Dict[str, Callable[[int, int, float, int], int]] = {
    "ring": ring_allreduce_time_ns,
    "naive": naive_allreduce_time_ns,
}


@dataclass(frozen=True)
class ClusterSpec:
    """N identical replica devices sharing one interconnect.

    Attributes
    ----------
    device:
        Hardware description shared by every replica.
    n_devices:
        Number of data-parallel replicas (1 degenerates to a single device).
    interconnect:
        The device↔device link used by collectives.
    allreduce_algorithm:
        Name of the collective cost model (``"ring"`` or ``"naive"``).
    """

    device: DeviceSpec
    n_devices: int = 1
    interconnect: InterconnectSpec = None  # type: ignore[assignment]
    allreduce_algorithm: str = "ring"

    def __post_init__(self) -> None:
        if self.n_devices < 1:
            raise ConfigurationError(
                f"n_devices must be at least 1, got {self.n_devices}")
        if self.interconnect is None:
            object.__setattr__(self, "interconnect", pcie_gen3())
        if self.allreduce_algorithm not in ALLREDUCE_ALGORITHMS:
            known = ", ".join(sorted(ALLREDUCE_ALGORITHMS))
            raise ConfigurationError(
                f"unknown allreduce algorithm '{self.allreduce_algorithm}'; "
                f"known algorithms: {known}")

    def with_n_devices(self, n_devices: int) -> "ClusterSpec":
        """Return a copy of this spec with a different replica count."""
        return replace(self, n_devices=int(n_devices))

    def allreduce_time_ns(self, nbytes: int) -> int:
        """Simulated duration of one allreduce of ``nbytes`` across the cluster."""
        model = ALLREDUCE_ALGORITHMS[self.allreduce_algorithm]
        return model(int(nbytes), self.n_devices, self.interconnect.bandwidth,
                     self.interconnect.latency_ns)

    def to_dict(self) -> Dict[str, object]:
        """Serialize the cluster for trace metadata."""
        return {
            "device": self.device.to_dict(),
            "n_devices": self.n_devices,
            "interconnect": self.interconnect.to_dict(),
            "allreduce_algorithm": self.allreduce_algorithm,
        }


class DeviceGroup:
    """N replica :class:`~repro.device.device.Device`\\ s plus their collective engine.

    Every replica gets its own clock, allocator, timing model and streams —
    ranks advance independently through their shards and synchronize only at
    collectives.  Device-construction keyword arguments (allocator, execution
    mode, default dtype, timing overrides) are forwarded to every replica so
    the group is homogeneous.
    """

    def __init__(self, cluster: ClusterSpec, **device_kwargs):
        from .collective import CollectiveEngine

        self.cluster = cluster
        self.devices: List[Device] = [
            Device(cluster.device, **device_kwargs)
            for _ in range(cluster.n_devices)
        ]
        self.collective = CollectiveEngine(
            cluster, [device.clock for device in self.devices])

    @classmethod
    def single(cls, spec: Optional[DeviceSpec] = None, **device_kwargs) -> "DeviceGroup":
        """A degenerate one-replica group (today's single-device behavior)."""
        device_spec = spec if spec is not None else titan_x_pascal()
        return cls(ClusterSpec(device=device_spec, n_devices=1), **device_kwargs)

    def __len__(self) -> int:
        return len(self.devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self.devices)

    def __getitem__(self, rank: int) -> Device:
        return self.devices[rank]

    @property
    def n_devices(self) -> int:
        """Number of replicas in the group."""
        return len(self.devices)

    @property
    def primary(self) -> Device:
        """Rank-0 replica (the degenerate single-device view of the group)."""
        return self.devices[0]

    def synchronize(self) -> int:
        """Drain every replica's streams and barrier all clocks; returns the time."""
        latest = max(device.synchronize() for device in self.devices)
        for device in self.devices:
            clock = device.clock
            if clock.tape is not None:
                from .tape import TAPE_BARRIER
                clock.tape.record_sync(TAPE_BARRIER, 0, latest - clock.now_ns)
            clock.advance_to(latest)
        return latest

    def peak_allocated_bytes(self) -> int:
        """Per-replica peak allocated bytes (max across ranks)."""
        return max(device.peak_allocated_bytes for device in self.devices)

    def total_allocated_bytes(self) -> int:
        """Bytes currently allocated summed over every replica."""
        return sum(device.allocated_bytes for device in self.devices)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"DeviceGroup(n={self.n_devices}, device={self.cluster.device.name!r}, "
                f"interconnect={self.cluster.interconnect.name!r}, "
                f"allreduce={self.cluster.allreduce_algorithm!r})")
