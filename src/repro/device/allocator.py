"""Device memory allocators.

The centerpiece is :class:`CachingAllocator`, a faithful reimplementation of
the policy used by PyTorch's CUDA caching allocator, which is the allocator
the paper instruments:

* requested sizes are rounded up to 512-byte multiples;
* allocations of at most 1 MiB are served from a *small pool* whose segments
  are 2 MiB; larger allocations come from a *large pool* whose segments are
  20 MiB (or the rounded request, if bigger);
* a free block is found with best-fit search inside the matching pool and is
  split when the remainder is large enough to be useful;
* freed blocks are kept (cached) and coalesced with free neighbours, so a
  subsequent allocation of a similar size reuses the same device block — this
  reuse is what makes per-block access streams span training iterations;
* when no cached block fits, a new segment is reserved with a simulated
  ``cudaMalloc``; when the device is out of memory the allocator first
  releases fully-free cached segments and retries before raising
  :class:`~repro.errors.OutOfMemoryError`.

Two simpler allocators (:class:`BestFitAllocator` and :class:`BumpAllocator`)
are provided as ablation baselines: they produce different fragmentation and
event streams for the same workload, which the ablation benchmark
(``benchmarks/test_ablation_allocators.py``) quantifies.
"""

from __future__ import annotations

import itertools
from bisect import bisect_left, insort
from typing import Dict, List, Optional, Tuple

from ..core.events import MemoryCategory
from ..errors import InvalidFreeError, OutOfMemoryError
from ..units import KIB, MIB
from .clock import DeviceClock
from .hooks import MemoryEventListener, NullListener
from .memory import AllocatorStats, Block, Segment
from .spec import DeviceSpec

#: Allocation granularity: all block sizes are multiples of this.
MIN_BLOCK_SIZE = 512
#: Requests up to this size are served from the small pool.
SMALL_ALLOCATION_LIMIT = 1 * MIB
#: Segment size used by the small pool.
SMALL_SEGMENT_SIZE = 2 * MIB
#: Minimum segment size used by the large pool.
LARGE_SEGMENT_SIZE = 20 * MIB
#: A free large-pool block is split only if the remainder exceeds this.
LARGE_SPLIT_REMAINDER = 1 * MIB
#: Device virtual addresses start here (arbitrary, but stable across runs).
BASE_ADDRESS = 0x7F00_0000_0000
#: Segments are aligned to this boundary in the simulated address space.
SEGMENT_ALIGNMENT = 2 * MIB


class IndexedFreeList:
    """Size-ordered index of free blocks with bisect-backed best-fit lookup.

    Replaces the historical unsorted ``List[Block]`` free lists, whose
    best-fit search and removal were linear scans — the dominant allocator
    cost once symbolic sweeps made everything else array-speed.  Entries are
    ``(size, tiebreak)`` keys kept sorted with ``bisect``; membership and the
    key of a given block are O(1) dict lookups, removal is an O(log n) search
    plus one C-level list deletion, and best-fit is a single ``bisect_left``.

    The tiebreak among equal-size blocks preserves the exact semantics of the
    linear scans (so event streams stay bit-identical):

    * ``"fifo"`` — a monotonically increasing insertion sequence.  Equal-size
      candidates are taken oldest-first, exactly like the old first-match
      scan over an append-ordered list (:class:`CachingAllocator`).
    * ``"address"`` — the block's device address.  Equal-size candidates are
      taken lowest-address-first, exactly like the old address-order scan
      over the arena's block list (:class:`BestFitAllocator`).
    """

    def __init__(self, tiebreak: str = "fifo"):
        if tiebreak not in ("fifo", "address"):
            raise ValueError(f"unknown tiebreak policy {tiebreak!r}")
        self._by_address = tiebreak == "address"
        self._seq = itertools.count()
        self._keys: List[Tuple[int, int]] = []                  # sorted (size, tiebreak)
        self._key_by_id: Dict[int, Tuple[int, int]] = {}        # block_id -> key
        self._block_by_key: Dict[Tuple[int, int], Block] = {}   # key -> block

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, block: "Block") -> bool:
        return block.block_id in self._key_by_id

    def blocks(self) -> List["Block"]:
        """The indexed blocks in (size, tiebreak) order."""
        return [self._block_by_key[key] for key in self._keys]

    def add(self, block: "Block") -> None:
        """Index a block that just became free."""
        key = (block.size, block.address if self._by_address else next(self._seq))
        self._key_by_id[block.block_id] = key
        self._block_by_key[key] = block
        insort(self._keys, key)

    def discard(self, block: "Block") -> bool:
        """Remove a block from the index if present; returns whether it was."""
        key = self._key_by_id.pop(block.block_id, None)
        if key is None:
            return False
        del self._block_by_key[key]
        del self._keys[bisect_left(self._keys, key)]
        return True

    def take_best_fit(self, min_size: int) -> Optional["Block"]:
        """Remove and return the best-fitting free block of at least ``min_size``.

        Among blocks of the smallest sufficient size, the tiebreak order
        decides (oldest insertion for ``"fifo"``, lowest address for
        ``"address"``) — matching the block the historical linear scans
        would have picked.
        """
        index = bisect_left(self._keys, (min_size, -1))
        if index == len(self._keys):
            return None
        key = self._keys.pop(index)
        block = self._block_by_key.pop(key)
        del self._key_by_id[block.block_id]
        return block


def round_block_size(size: int) -> int:
    """Round a requested size up to the allocator granularity (512 bytes)."""
    if size <= 0:
        return MIN_BLOCK_SIZE
    return ((size + MIN_BLOCK_SIZE - 1) // MIN_BLOCK_SIZE) * MIN_BLOCK_SIZE


def segment_size_for(rounded_size: int) -> int:
    """Segment size the caching allocator reserves for a given rounded request."""
    if rounded_size <= SMALL_ALLOCATION_LIMIT:
        return SMALL_SEGMENT_SIZE
    if rounded_size < LARGE_SEGMENT_SIZE:
        return LARGE_SEGMENT_SIZE
    # Huge allocations get a dedicated segment rounded to 2 MiB.
    return ((rounded_size + SEGMENT_ALIGNMENT - 1) // SEGMENT_ALIGNMENT) * SEGMENT_ALIGNMENT


class BaseAllocator:
    """Common state and interface shared by all allocator implementations."""

    name = "base"

    def __init__(
        self,
        spec: DeviceSpec,
        clock: DeviceClock,
        listener: Optional[MemoryEventListener] = None,
    ):
        self.spec = spec
        self.clock = clock
        self.listener = listener if listener is not None else NullListener()
        self.stats = AllocatorStats()
        self._segments: List[Segment] = []
        self._next_address = BASE_ADDRESS
        self._live_blocks: Dict[int, Block] = {}

    # -- interface -------------------------------------------------------------

    def allocate(
        self,
        size: int,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
    ) -> Block:
        """Allocate a device block of at least ``size`` bytes."""
        raise NotImplementedError

    def free(self, block: Block) -> None:
        """Return a previously allocated block to the allocator."""
        raise NotImplementedError

    def empty_cache(self) -> int:
        """Release cached (fully free) segments; returns bytes released."""
        return 0

    # -- shared helpers ---------------------------------------------------------

    def _advance_alloc_overhead(self) -> None:
        """Pay the per-malloc/free bookkeeping cost (tape-annotated)."""
        if self.clock.tape is not None:
            self.clock.tape.record_alloc_overhead(self.spec.allocator_overhead_ns)
        self.clock.advance(self.spec.allocator_overhead_ns)

    def _advance_segment_overhead(self) -> None:
        """Pay the simulated ``cudaMalloc``/``cudaFree`` cost (tape-annotated)."""
        if self.clock.tape is not None:
            self.clock.tape.record_segment_overhead(self.spec.cuda_malloc_overhead_ns)
        self.clock.advance(self.spec.cuda_malloc_overhead_ns)

    def set_listener(self, listener: MemoryEventListener) -> None:
        """Replace the event listener (used when attaching a profiler)."""
        self.listener = listener

    def segments(self) -> List[Segment]:
        """All currently reserved segments, in reservation order."""
        return list(self._segments)

    def live_blocks(self) -> List[Block]:
        """All currently allocated blocks."""
        return list(self._live_blocks.values())

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently handed out to tensors."""
        return self.stats.allocated_bytes

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently reserved from the device (segments)."""
        return self.stats.reserved_bytes

    @property
    def free_reserved_bytes(self) -> int:
        """Reserved-but-unallocated bytes (the allocator's cache)."""
        return self.stats.reserved_bytes - self.stats.allocated_bytes

    def device_free_bytes(self) -> int:
        """Device memory not yet reserved by any segment."""
        return self.spec.memory_capacity - self.stats.reserved_bytes

    def check_invariants(self) -> None:
        """Run the per-segment structural self-check on every segment."""
        for segment in self._segments:
            segment.check_invariants()

    def memory_snapshot(self) -> List[Dict[str, object]]:
        """A ``torch.cuda.memory_snapshot()``-style dump of segments and blocks."""
        snapshot: List[Dict[str, object]] = []
        for segment in self._segments:
            snapshot.append(
                {
                    "segment_id": segment.segment_id,
                    "address": segment.address,
                    "size": segment.size,
                    "pool": segment.pool,
                    "blocks": [
                        {
                            "block_id": b.block_id,
                            "address": b.address,
                            "size": b.size,
                            "allocated": b.allocated,
                            "category": b.category.value,
                            "tag": b.tag,
                        }
                        for b in segment.blocks()
                    ],
                }
            )
        return snapshot

    def _reserve_segment(self, size: int, pool: str) -> Segment:
        """Reserve a new segment of ``size`` bytes (simulated ``cudaMalloc``)."""
        if size > self.device_free_bytes():
            raise OutOfMemoryError(
                requested=size,
                free=self.device_free_bytes(),
                reserved=self.stats.reserved_bytes,
                capacity=self.spec.memory_capacity,
            )
        address = self._next_address
        self._next_address += ((size + SEGMENT_ALIGNMENT - 1) // SEGMENT_ALIGNMENT) * SEGMENT_ALIGNMENT
        segment = Segment(address=address, size=size, pool=pool)
        self._segments.append(segment)
        self.stats.on_reserve(size)
        self._advance_segment_overhead()
        self.listener.on_segment_alloc(segment)
        return segment

    def _release_segment(self, segment: Segment) -> None:
        """Release a fully free segment back to the device (simulated ``cudaFree``)."""
        self._segments.remove(segment)
        self.stats.on_release(segment.size)
        self._advance_segment_overhead()
        self.listener.on_segment_free(segment)

    def _publish_alloc(self, block: Block, requested_size: int,
                       category: MemoryCategory, tag: str) -> Block:
        """Mark a block allocated, update stats and notify the listener."""
        block.allocated = True
        block.requested_size = requested_size
        block.category = category
        block.tag = tag
        self._live_blocks[block.block_id] = block
        self.stats.on_alloc(block.size)
        self.listener.on_malloc(block, requested_size)
        return block

    def _publish_free(self, block: Block) -> None:
        """Mark a block free, update stats and notify the listener."""
        if block.block_id not in self._live_blocks:
            raise InvalidFreeError(
                f"block {block.block_id} (tag={block.tag!r}) is not currently allocated"
            )
        del self._live_blocks[block.block_id]
        self.stats.on_free(block.size)
        self.listener.on_free(block)
        block.allocated = False


class CachingAllocator(BaseAllocator):
    """PyTorch-style caching allocator (see module docstring for the policy)."""

    name = "caching"

    def __init__(
        self,
        spec: DeviceSpec,
        clock: DeviceClock,
        listener: Optional[MemoryEventListener] = None,
    ):
        super().__init__(spec, clock, listener)
        # Free blocks per pool, indexed by (size, insertion order): best-fit
        # is one bisect, removal is O(log n) — same blocks the historical
        # linear scans would have picked, just found without the scan.
        self._free_blocks: Dict[str, IndexedFreeList] = {
            "small": IndexedFreeList("fifo"), "large": IndexedFreeList("fifo")}

    # -- allocation -------------------------------------------------------------

    def allocate(
        self,
        size: int,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
    ) -> Block:
        rounded = round_block_size(size)
        pool = "small" if rounded <= SMALL_ALLOCATION_LIMIT else "large"
        self._advance_alloc_overhead()

        block = self._find_free_block(pool, rounded)
        if block is not None:
            self.stats.cache_hits += 1
        else:
            self.stats.cache_misses += 1
            block = self._allocate_from_new_segment(pool, rounded)

        block = self._maybe_split(block, rounded, pool)
        return self._publish_alloc(block, requested_size=size, category=category, tag=tag)

    def _find_free_block(self, pool: str, rounded: int) -> Optional[Block]:
        """Best-fit lookup in the pool's free index; removes and returns the block."""
        return self._free_blocks[pool].take_best_fit(rounded)

    def _allocate_from_new_segment(self, pool: str, rounded: int) -> Block:
        """Reserve a fresh segment and return its (single, free) covering block."""
        segment_size = segment_size_for(rounded)
        try:
            segment = self._reserve_segment(segment_size, pool)
        except OutOfMemoryError:
            # Mimic PyTorch: release cached segments and retry once before
            # surfacing the OOM to the caller.
            released = self.empty_cache()
            if released <= 0:
                raise
            segment = self._reserve_segment(segment_size, pool)
        block = segment.first_block
        assert block is not None  # a fresh segment always has one covering block
        return block

    def _maybe_split(self, block: Block, rounded: int, pool: str) -> Block:
        """Split ``block`` if the remainder is worth keeping, per pool policy."""
        remainder = block.size - rounded
        should_split = (
            remainder >= MIN_BLOCK_SIZE
            if pool == "small"
            else remainder > LARGE_SPLIT_REMAINDER
        )
        if not should_split:
            return block
        tail = Block(
            segment=block.segment,
            address=block.address + rounded,
            size=remainder,
            allocated=False,
        )
        tail.prev = block
        tail.next = block.next
        if block.next is not None:
            block.next.prev = tail
        block.next = tail
        block.size = rounded
        self._free_blocks[pool].add(tail)
        self.stats.split_count += 1
        return block

    # -- free -------------------------------------------------------------------

    def free(self, block: Block) -> None:
        self._advance_alloc_overhead()
        self._publish_free(block)
        pool = block.segment.pool
        block = self._coalesce(block, pool)
        self._free_blocks[pool].add(block)

    def _coalesce(self, block: Block, pool: str) -> Block:
        """Merge ``block`` with free neighbours; returns the surviving block.

        The surviving block keeps the identity (``block_id``) of the left-most
        participant, matching how a real allocator's block descriptor absorbs
        its right neighbour.
        """
        # Merge with the right neighbour first so addresses stay contiguous.
        nxt = block.next
        if nxt is not None and not nxt.allocated:
            self._remove_from_free_list(pool, nxt)
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            self.stats.coalesce_count += 1
        prev = block.prev
        if prev is not None and not prev.allocated:
            self._remove_from_free_list(pool, prev)
            prev.size += block.size
            prev.next = block.next
            if block.next is not None:
                block.next.prev = prev
            self.stats.coalesce_count += 1
            block = prev
        return block

    def _remove_from_free_list(self, pool: str, block: Block) -> None:
        self._free_blocks[pool].discard(block)

    # -- cache management --------------------------------------------------------

    def empty_cache(self) -> int:
        """Release every fully free segment; returns the number of bytes released."""
        released = 0
        for segment in list(self._segments):
            if not segment.is_fully_free():
                continue
            for block in list(segment.blocks()):
                self._remove_from_free_list(segment.pool, block)
            released += segment.size
            self._release_segment(segment)
        return released


class BestFitAllocator(BaseAllocator):
    """Non-caching best-fit allocator over one big arena (ablation baseline).

    The whole device memory is reserved as a single segment up front; every
    allocation does a best-fit search over the arena's free blocks and every
    free coalesces immediately.  There is no pooling and no size rounding
    beyond the 512-byte granularity, so the event stream and fragmentation
    profile differ from the caching allocator's.
    """

    name = "best_fit"

    def __init__(
        self,
        spec: DeviceSpec,
        clock: DeviceClock,
        listener: Optional[MemoryEventListener] = None,
        arena_fraction: float = 0.95,
    ):
        super().__init__(spec, clock, listener)
        arena_size = int(spec.memory_capacity * arena_fraction)
        arena_size = (arena_size // SEGMENT_ALIGNMENT) * SEGMENT_ALIGNMENT
        self._arena = self._reserve_segment(arena_size, pool="arena")
        # Free blocks indexed by (size, address): best-fit is one bisect and
        # equal sizes resolve lowest-address-first, exactly the block the old
        # address-order scan over the arena would have returned.
        self._free_index = IndexedFreeList("address")
        self._free_index.add(self._arena.first_block)

    def allocate(
        self,
        size: int,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
    ) -> Block:
        rounded = round_block_size(size)
        self._advance_alloc_overhead()
        best = self._free_index.take_best_fit(rounded)
        if best is None:
            raise OutOfMemoryError(
                requested=rounded,
                free=self._arena.largest_free_block(),
                reserved=self.stats.reserved_bytes,
                capacity=self.spec.memory_capacity,
            )
        if best.size - rounded >= MIN_BLOCK_SIZE:
            tail = Block(
                segment=self._arena,
                address=best.address + rounded,
                size=best.size - rounded,
                allocated=False,
            )
            tail.prev = best
            tail.next = best.next
            if best.next is not None:
                best.next.prev = tail
            best.next = tail
            best.size = rounded
            self._free_index.add(tail)
            self.stats.split_count += 1
        return self._publish_alloc(best, requested_size=size, category=category, tag=tag)

    def free(self, block: Block) -> None:
        self._advance_alloc_overhead()
        self._publish_free(block)
        nxt = block.next
        if nxt is not None and not nxt.allocated:
            self._free_index.discard(nxt)
            block.size += nxt.size
            block.next = nxt.next
            if nxt.next is not None:
                nxt.next.prev = block
            self.stats.coalesce_count += 1
        prev = block.prev
        if prev is not None and not prev.allocated:
            self._free_index.discard(prev)
            prev.size += block.size
            prev.next = block.next
            if block.next is not None:
                block.next.prev = prev
            self.stats.coalesce_count += 1
            block = prev
        self._free_index.add(block)


class BumpAllocator(BaseAllocator):
    """Linear (bump-pointer) allocator that never reuses memory until reset.

    This models the most naive runtime possible: every allocation consumes
    fresh address space and frees only bookkeep.  It is used as an ablation
    baseline to show how much the caching allocator's block reuse shapes the
    per-block behavior streams, and it also provides an upper bound on the
    footprint a workload would need without any reuse.
    """

    name = "bump"

    def __init__(
        self,
        spec: DeviceSpec,
        clock: DeviceClock,
        listener: Optional[MemoryEventListener] = None,
    ):
        super().__init__(spec, clock, listener)
        self._cursor = 0

    def allocate(
        self,
        size: int,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
    ) -> Block:
        rounded = round_block_size(size)
        self._advance_alloc_overhead()
        if self._cursor + rounded > self.spec.memory_capacity:
            raise OutOfMemoryError(
                requested=rounded,
                free=self.spec.memory_capacity - self._cursor,
                reserved=self.stats.reserved_bytes,
                capacity=self.spec.memory_capacity,
            )
        segment = self._reserve_segment(rounded, pool="bump")
        block = segment.first_block
        assert block is not None
        self._cursor += rounded
        return self._publish_alloc(block, requested_size=size, category=category, tag=tag)

    def free(self, block: Block) -> None:
        self._advance_alloc_overhead()
        self._publish_free(block)

    def reset(self) -> None:
        """Release everything and rewind the bump pointer (end of a phase)."""
        for segment in list(self._segments):
            self._release_segment(segment)
        self._live_blocks.clear()
        self._cursor = 0


#: Registry of allocator implementations, used by experiment configuration.
ALLOCATOR_CLASSES = {
    CachingAllocator.name: CachingAllocator,
    BestFitAllocator.name: BestFitAllocator,
    BumpAllocator.name: BumpAllocator,
}


def make_allocator(
    name: str,
    spec: DeviceSpec,
    clock: DeviceClock,
    listener: Optional[MemoryEventListener] = None,
) -> BaseAllocator:
    """Instantiate an allocator by registry name (``caching``, ``best_fit``, ``bump``)."""
    try:
        cls = ALLOCATOR_CLASSES[name]
    except KeyError:
        known = ", ".join(sorted(ALLOCATOR_CLASSES))
        raise KeyError(f"unknown allocator '{name}'; known allocators: {known}") from None
    return cls(spec, clock, listener)
