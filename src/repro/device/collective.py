"""Cross-device collective engine (the multi-device sibling of the DMA engine).

Data-parallel training inserts one gradient allreduce per iteration between
the backward pass and the optimizer step.  :class:`CollectiveEngine` models
that operation's *timing*: a collective is a barrier (it starts when the
slowest participating replica arrives) followed by an algorithm-dependent
transfer cost from the cluster's cost model
(:meth:`~repro.device.cluster.ClusterSpec.allreduce_time_ns`), after which
every replica clock has advanced to the same completion time.

The engine deliberately knows nothing about tensors: the training loop
(:class:`~repro.train.trainer.DataParallelTrainer`) owns the gradient
buffers, emits their read/write memory behaviors and performs the numeric
averaging in eager mode, exactly as the :class:`~repro.device.dma.DmaEngine`
split keeps copies separate from the storage they move.  A one-replica
cluster costs nothing and moves no clock, so single-device runs are
unaffected by the engine's existence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from .clock import DeviceClock
from .cluster import ClusterSpec
from .tape import TAPE_ALLREDUCE


@dataclass(frozen=True)
class CollectiveRecord:
    """One collective operation performed by the engine."""

    kind: str          # e.g. "allreduce"
    nbytes: int
    start_ns: int
    end_ns: int
    algorithm: str
    world_size: int
    tag: str = ""

    @property
    def duration_ns(self) -> int:
        """Duration of the collective in nanoseconds."""
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, object]:
        """Serialize the record for result summaries."""
        return {
            "kind": self.kind,
            "nbytes": self.nbytes,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "algorithm": self.algorithm,
            "world_size": self.world_size,
            "tag": self.tag,
        }


class CollectiveEngine:
    """Models collectives across the replica clocks of one cluster.

    Parameters
    ----------
    cluster:
        The cluster specification supplying the allreduce cost model.
    clocks:
        One :class:`~repro.device.clock.DeviceClock` per replica, in rank
        order; collectives barrier and then advance all of them together.
    """

    def __init__(self, cluster: ClusterSpec, clocks: Sequence[DeviceClock]):
        self.cluster = cluster
        self.clocks = list(clocks)
        self.records: List[CollectiveRecord] = []

    @property
    def world_size(self) -> int:
        """Number of replicas participating in collectives."""
        return len(self.clocks)

    def allreduce(self, nbytes: int, tag: str = "") -> CollectiveRecord:
        """Model one allreduce of ``nbytes``: barrier, then the transfer cost.

        The operation starts when the last replica arrives (``max`` over the
        clocks) and every clock is advanced to the shared completion time.
        With one replica the cost is zero and no clock moves.
        """
        start = max(clock.now_ns for clock in self.clocks)
        duration = self.cluster.allreduce_time_ns(nbytes)
        end = start + duration
        for clock in self.clocks:
            if clock.tape is not None:
                clock.tape.record_sync(TAPE_ALLREDUCE, int(nbytes),
                                       end - clock.now_ns)
            clock.advance_to(end)
        record = CollectiveRecord(
            kind="allreduce", nbytes=int(nbytes), start_ns=start, end_ns=end,
            algorithm=self.cluster.allreduce_algorithm, world_size=self.world_size,
            tag=tag,
        )
        self.records.append(record)
        return record

    # -- aggregation ------------------------------------------------------------------

    def total_bytes(self) -> int:
        """Total bytes reduced across all recorded collectives."""
        return sum(record.nbytes for record in self.records)

    def total_time_ns(self) -> int:
        """Total simulated time spent inside collectives."""
        return sum(record.duration_ns for record in self.records)

    def summary(self) -> Dict[str, object]:
        """Compact aggregate used by session results and the scaling report."""
        count = len(self.records)
        total_ns = self.total_time_ns()
        return {
            "count": count,
            "world_size": self.world_size,
            "algorithm": self.cluster.allreduce_algorithm,
            "interconnect": self.cluster.interconnect.name,
            "total_bytes": self.total_bytes(),
            "total_time_ns": total_ns,
            "mean_time_ns": (total_ns / count) if count else 0.0,
        }
