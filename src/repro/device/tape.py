"""Timing tape: the *reason* behind every clock advance, one atom at a time.

Symbolic execution makes a run's event structure a pure function of the
workload (model, batch size, replica count, ...) while simulated *time* is a
pure function of that structure plus the pricing axes (device spec, host
dispatch overhead, interconnect).  The tape is what separates the two: each
component that advances a :class:`~repro.device.clock.DeviceClock` first
records a typed atom saying *why* — a kernel with its roofline parameters, a
memcpy with its byte count, an allocator bookkeeping overhead, a collective
barrier — so the trace-template replay engine
(:mod:`repro.experiments.replay`) can later re-derive every timestamp for a
different device specification with a handful of vectorized array
transforms, without re-running the simulation.

The tape doubles as its own correctness monitor.  Annotated atoms set a
*pending* duration that the clock observer must claim on the very next
advance; any advance that arrives unannotated is recorded verbatim as a
:data:`TAPE_CONST` atom (constant nanoseconds under re-pricing, which is
exactly right for host-side pauses), and any mismatch between an annotation
and the advance it claimed bumps :attr:`TimingTape.unexpected` — a non-zero
count marks the captured template as unusable rather than silently wrong.
"""

from __future__ import annotations

from array import array
from typing import Dict

import numpy as np

from .clock import DeviceClock
from .timing import KernelCost

#: Atom kinds.  ``CONST`` re-prices to its recorded nanoseconds; the others
#: re-price from the target device specification (and, for the sync kinds,
#: from the target cluster's collective cost model).
TAPE_CONST = 0
TAPE_KERNEL = 1
TAPE_MEMCPY_H2D = 2
TAPE_MEMCPY_D2H = 3
TAPE_ALLOC_OVERHEAD = 4
TAPE_SEGMENT_OVERHEAD = 5
TAPE_ALLREDUCE = 6
TAPE_BARRIER = 7

#: Kinds resolved with cross-rank barrier semantics at replay time.
SYNC_KINDS = (TAPE_ALLREDUCE, TAPE_BARRIER)


def atom_index_table(kinds: np.ndarray) -> Dict[int, np.ndarray]:
    """Positions of every atom kind present in a tape's kind column.

    Returns ``{kind_code: int64 positions}``, ascending within each kind.
    The batched repricing path (:meth:`TraceTemplate.replay_batch`) gathers
    through these index arrays once per template instead of re-masking the
    kind column for every scenario it prices.
    """
    kinds = np.asarray(kinds, dtype=np.int64)
    return {int(kind): np.flatnonzero(kinds == kind)
            for kind in np.unique(kinds)}


class TimingTape:
    """Per-clock columnar log of timing atoms (one per clock advance).

    Attaching a tape registers it as ``clock.tape`` and as a clock observer;
    the instrumented choke points (kernel launch, DMA, allocator, collective
    engine, host pauses) check ``clock.tape`` and record their atom right
    before advancing the clock.
    """

    def __init__(self, clock: DeviceClock):
        self.clock = clock
        #: Simulated time already on the clock when the tape attached.  For
        #: allocators that reserve memory at construction (best-fit's arena)
        #: this is a whole number of segment overheads — the replay engine
        #: re-prices it via :meth:`preamble_segments`.
        self.attach_ns = clock.now_ns
        self.kind = array("q")
        self.duration_ns = array("q")
        self.nbytes = array("q")
        self.flops = array("d")
        self.bytes_moved = array("d")
        #: Number of annotation/advance mismatches observed; any non-zero
        #: value invalidates the capture for replay.
        self.unexpected = 0
        self._pending = None
        clock.tape = self
        clock.add_observer(self._observe)

    def __len__(self) -> int:
        return len(self.kind)

    def detach(self) -> None:
        """Stop observing the clock and unpublish ``clock.tape``."""
        self.clock.remove_observer(self._observe)
        if getattr(self.clock, "tape", None) is self:
            self.clock.tape = None

    # -- atom recording (called by the instrumented choke points) ----------------

    def _append(self, kind: int, duration_ns: int, nbytes: int = 0,
                flops: float = 0.0, bytes_moved: float = 0.0) -> None:
        self.kind.append(kind)
        self.duration_ns.append(int(duration_ns))
        self.nbytes.append(int(nbytes))
        self.flops.append(float(flops))
        self.bytes_moved.append(float(bytes_moved))
        if duration_ns > 0:
            if self._pending is not None:
                # Two annotations with no advance in between: the first one
                # was never claimed.
                self.unexpected += 1
            self._pending = int(duration_ns)

    def record_kernel(self, cost: KernelCost, duration_ns: int) -> None:
        """One kernel launch with its roofline inputs (flops, DRAM bytes)."""
        self._append(TAPE_KERNEL, duration_ns,
                     flops=cost.flops, bytes_moved=cost.bytes_moved)

    def record_memcpy(self, direction: str, nbytes: int, duration_ns: int) -> None:
        """One synchronous host↔device copy (direction is ``h2d``/``d2h``)."""
        kind = TAPE_MEMCPY_H2D if direction == "h2d" else TAPE_MEMCPY_D2H
        self._append(kind, duration_ns, nbytes=nbytes)

    def record_alloc_overhead(self, duration_ns: int) -> None:
        """One allocator bookkeeping advance (``allocator_overhead_ns``)."""
        self._append(TAPE_ALLOC_OVERHEAD, duration_ns)

    def record_segment_overhead(self, duration_ns: int) -> None:
        """One segment reserve/release advance (``cuda_malloc_overhead_ns``)."""
        self._append(TAPE_SEGMENT_OVERHEAD, duration_ns)

    def record_const(self, duration_ns: int) -> None:
        """One host-side pause: a constant under device re-pricing."""
        self._append(TAPE_CONST, int(round(duration_ns)))

    def record_sync(self, kind: int, nbytes: int, duration_ns: int) -> None:
        """One cross-rank synchronization point (allreduce or barrier).

        ``duration_ns`` is this rank's catch-up delta during capture; replay
        ignores it and re-resolves the sync with barrier semantics across all
        participating ranks.
        """
        self._append(kind, duration_ns, nbytes=nbytes)

    # -- clock observer ----------------------------------------------------------

    def _observe(self, old_ns: int, new_ns: int) -> None:
        delta = new_ns - old_ns
        pending = self._pending
        if pending is not None:
            self._pending = None
            if pending == delta:
                return
            self.unexpected += 1
        # Unannotated advance: keep the tape exact by logging it verbatim.
        self.kind.append(TAPE_CONST)
        self.duration_ns.append(int(delta))
        self.nbytes.append(0)
        self.flops.append(0.0)
        self.bytes_moved.append(0.0)

    # -- capture health ----------------------------------------------------------

    @property
    def consistent(self) -> bool:
        """Whether every advance matched its annotation (replay-safe)."""
        return self.unexpected == 0 and self._pending is None

    def preamble_segments(self, segment_overhead_ns: int) -> int:
        """Pre-attach time expressed as a count of segment reservations.

        Time on the clock before the tape attached comes from allocator
        construction (best-fit reserves its arena up front); it must be a
        whole number of ``cuda_malloc_overhead_ns`` advances to be
        re-priceable.  Returns -1 when it is not (template invalid).
        """
        if self.attach_ns == 0:
            return 0
        if segment_overhead_ns <= 0 or self.attach_ns % segment_overhead_ns:
            return -1
        return self.attach_ns // segment_overhead_ns
