"""Device memory primitives: segments and blocks.

The caching allocator (like PyTorch's CUDA caching allocator) reserves large
*segments* from the device with ``cudaMalloc`` and carves them into *blocks*
that are handed out to tensors.  Freed blocks return to a per-segment free
list and may be split or coalesced.

Block objects carry a stable ``block_id``: if the caching allocator reuses a
cached block for a new allocation the id is preserved, which is what allows
access-time intervals (ATIs) to span allocator round trips — exactly the
block-level view the paper instruments.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from ..core.events import MemoryCategory
from ..errors import AllocatorStateError


_block_id_counter = itertools.count(1)
_segment_id_counter = itertools.count(1)


def _next_block_id() -> int:
    return next(_block_id_counter)


def _next_segment_id() -> int:
    return next(_segment_id_counter)


@dataclass
class Block:
    """A contiguous range of device memory inside a segment.

    A block is either *allocated* (owned by a tensor) or *free* (sitting in
    the allocator's cache).  Splitting a free block produces a new block for
    the remainder; coalescing merges adjacent free blocks back together.
    """

    segment: "Segment"
    address: int
    size: int
    allocated: bool = False
    requested_size: int = 0
    category: MemoryCategory = MemoryCategory.UNKNOWN
    tag: str = ""
    block_id: int = field(default_factory=_next_block_id)
    prev: Optional["Block"] = field(default=None, repr=False)
    next: Optional["Block"] = field(default=None, repr=False)

    @property
    def end_address(self) -> int:
        """One-past-the-end device address of this block."""
        return self.address + self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "alloc" if self.allocated else "free"
        return (
            f"Block(id={self.block_id}, addr=0x{self.address:x}, "
            f"size={self.size}, {state}, tag={self.tag!r})"
        )


@dataclass
class Segment:
    """A device memory reservation obtained with a (simulated) ``cudaMalloc``.

    Segments own a doubly linked list of blocks covering their address range.
    """

    address: int
    size: int
    pool: str
    segment_id: int = field(default_factory=_next_segment_id)
    first_block: Optional[Block] = None

    def __post_init__(self) -> None:
        if self.first_block is None:
            self.first_block = Block(segment=self, address=self.address, size=self.size)

    def blocks(self) -> Iterator[Block]:
        """Iterate over all blocks of this segment in address order."""
        block = self.first_block
        while block is not None:
            yield block
            block = block.next

    def allocated_bytes(self) -> int:
        """Total bytes of allocated blocks inside this segment."""
        return sum(b.size for b in self.blocks() if b.allocated)

    def free_bytes(self) -> int:
        """Total bytes of free blocks inside this segment."""
        return sum(b.size for b in self.blocks() if not b.allocated)

    def largest_free_block(self) -> int:
        """Size of the largest free block inside this segment (0 if none)."""
        sizes = [b.size for b in self.blocks() if not b.allocated]
        return max(sizes) if sizes else 0

    def is_fully_free(self) -> bool:
        """Whether no block of this segment is currently allocated."""
        return all(not b.allocated for b in self.blocks())

    def check_invariants(self) -> None:
        """Verify the block list covers the segment exactly once, in order.

        Raises :class:`~repro.errors.AllocatorStateError` on violation.  Used
        by tests and by the allocator's optional self-check mode.
        """
        cursor = self.address
        previous: Optional[Block] = None
        for block in self.blocks():
            if block.address != cursor:
                raise AllocatorStateError(
                    f"segment {self.segment_id}: block {block.block_id} starts at "
                    f"0x{block.address:x}, expected 0x{cursor:x}"
                )
            if block.size <= 0:
                raise AllocatorStateError(
                    f"segment {self.segment_id}: block {block.block_id} has "
                    f"non-positive size {block.size}"
                )
            if block.prev is not previous:
                raise AllocatorStateError(
                    f"segment {self.segment_id}: broken prev link at block "
                    f"{block.block_id}"
                )
            previous = block
            cursor += block.size
        if cursor != self.address + self.size:
            raise AllocatorStateError(
                f"segment {self.segment_id}: blocks cover {cursor - self.address} "
                f"bytes, expected {self.size}"
            )


@dataclass
class AllocatorStats:
    """Running counters maintained by every allocator implementation.

    Mirrors the statistics exposed by ``torch.cuda.memory_stats``: current and
    peak values for allocated bytes, reserved bytes and live block counts,
    plus cumulative counters for allocation traffic and cache behavior.
    """

    allocated_bytes: int = 0
    reserved_bytes: int = 0
    active_blocks: int = 0
    peak_allocated_bytes: int = 0
    peak_reserved_bytes: int = 0
    peak_active_blocks: int = 0
    total_alloc_count: int = 0
    total_free_count: int = 0
    total_alloc_bytes: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    segment_allocs: int = 0
    segment_frees: int = 0
    split_count: int = 0
    coalesce_count: int = 0

    def on_alloc(self, size: int) -> None:
        """Record a successful block allocation of ``size`` bytes."""
        self.allocated_bytes += size
        self.active_blocks += 1
        self.total_alloc_count += 1
        self.total_alloc_bytes += size
        self.peak_allocated_bytes = max(self.peak_allocated_bytes, self.allocated_bytes)
        self.peak_active_blocks = max(self.peak_active_blocks, self.active_blocks)

    def on_free(self, size: int) -> None:
        """Record a block free of ``size`` bytes."""
        self.allocated_bytes -= size
        self.active_blocks -= 1
        self.total_free_count += 1

    def on_reserve(self, size: int) -> None:
        """Record a segment reservation of ``size`` bytes."""
        self.reserved_bytes += size
        self.segment_allocs += 1
        self.peak_reserved_bytes = max(self.peak_reserved_bytes, self.reserved_bytes)

    def on_release(self, size: int) -> None:
        """Record a segment release of ``size`` bytes."""
        self.reserved_bytes -= size
        self.segment_frees += 1

    def to_dict(self) -> Dict[str, int]:
        """Serialize all counters as a plain dictionary."""
        return {
            "allocated_bytes": self.allocated_bytes,
            "reserved_bytes": self.reserved_bytes,
            "active_blocks": self.active_blocks,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "peak_active_blocks": self.peak_active_blocks,
            "total_alloc_count": self.total_alloc_count,
            "total_free_count": self.total_free_count,
            "total_alloc_bytes": self.total_alloc_bytes,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "segment_allocs": self.segment_allocs,
            "segment_frees": self.segment_frees,
            "split_count": self.split_count,
            "coalesce_count": self.coalesce_count,
        }
