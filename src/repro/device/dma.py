"""Host↔device copy engine (DMA) with the paper's measured bandwidths.

Equation 1 of the paper bounds the profitable swap size by the round-trip
bandwidth between host and device::

    S / B_d2h + S / B_h2d <= ATI   =>   S <= ATI / (1/B_d2h + 1/B_h2d)

The :class:`DmaEngine` models those transfers: each copy takes the fixed
memcpy launch overhead plus ``bytes / bandwidth`` and can either advance the
device clock (synchronous copy on the compute stream) or be scheduled on a
dedicated copy stream for overlap analysis (used by the swap planner).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from .clock import DeviceClock
from .spec import DeviceSpec
from .stream import Stream
from .timing import KernelTimingModel


@dataclass(frozen=True)
class CopyRecord:
    """One host↔device transfer performed by the DMA engine."""

    direction: str  # "h2d" or "d2h"
    nbytes: int
    start_ns: int
    end_ns: int
    tag: str = ""

    @property
    def duration_ns(self) -> int:
        """Duration of the transfer in nanoseconds."""
        return self.end_ns - self.start_ns


class DmaEngine:
    """Models pinned-memory host↔device copies.

    Parameters
    ----------
    spec:
        Device specification holding the h2d/d2h bandwidths.
    clock:
        The device clock advanced by synchronous copies.
    timing:
        Timing model supplying the memcpy launch overhead.
    copy_stream:
        Optional dedicated stream used by asynchronous copies; if omitted a
        fresh stream named ``"copy"`` is created.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        clock: DeviceClock,
        timing: KernelTimingModel,
        copy_stream: Optional[Stream] = None,
    ):
        self.spec = spec
        self.clock = clock
        self.timing = timing
        self.copy_stream = copy_stream if copy_stream is not None else Stream("copy", clock)
        self.records: List[CopyRecord] = []

    # -- synchronous copies ------------------------------------------------------

    def host_to_device(self, nbytes: int, tag: str = "") -> CopyRecord:
        """Blocking host→device copy; advances the device clock."""
        return self._synchronous_copy("h2d", nbytes, self.spec.h2d_bandwidth, tag)

    def device_to_host(self, nbytes: int, tag: str = "") -> CopyRecord:
        """Blocking device→host copy; advances the device clock."""
        return self._synchronous_copy("d2h", nbytes, self.spec.d2h_bandwidth, tag)

    def _synchronous_copy(self, direction: str, nbytes: int, bandwidth: float,
                          tag: str) -> CopyRecord:
        duration = self.timing.memcpy_duration_ns(nbytes, bandwidth)
        start = self.clock.now_ns
        if self.clock.tape is not None:
            self.clock.tape.record_memcpy(direction, nbytes, duration)
        self.clock.advance(duration)
        record = CopyRecord(direction=direction, nbytes=nbytes, start_ns=start,
                            end_ns=self.clock.now_ns, tag=tag)
        self.records.append(record)
        return record

    # -- asynchronous copies (overlap modelling) -----------------------------------

    def async_host_to_device(self, nbytes: int, tag: str = "") -> CopyRecord:
        """Non-blocking host→device copy scheduled on the copy stream."""
        return self._async_copy("h2d", nbytes, self.spec.h2d_bandwidth, tag)

    def async_device_to_host(self, nbytes: int, tag: str = "") -> CopyRecord:
        """Non-blocking device→host copy scheduled on the copy stream."""
        return self._async_copy("d2h", nbytes, self.spec.d2h_bandwidth, tag)

    def _async_copy(self, direction: str, nbytes: int, bandwidth: float,
                    tag: str) -> CopyRecord:
        duration = self.timing.memcpy_duration_ns(nbytes, bandwidth)
        start, end = self.copy_stream.schedule(duration)
        record = CopyRecord(direction=direction, nbytes=nbytes, start_ns=start,
                            end_ns=end, tag=tag)
        self.records.append(record)
        return record

    # -- deadline-scheduled copies (swap execution) ---------------------------------

    def async_host_to_device_at(self, nbytes: int, earliest_start_ns: int,
                                tag: str = "") -> CopyRecord:
        """Host→device copy reserved on the copy stream at a (future) start time.

        The swap engine uses this for prefetches: the copy may start no
        earlier than ``earliest_start_ns`` (so the block stays on the host
        for the bulk of its idle interval) and no earlier than the copy
        stream's completion horizon (so concurrent swap traffic serializes
        and contention shows up as late prefetches).
        """
        return self._async_copy_at("h2d", nbytes, self.spec.h2d_bandwidth,
                                   earliest_start_ns, tag)

    def async_device_to_host_at(self, nbytes: int, earliest_start_ns: int,
                                tag: str = "") -> CopyRecord:
        """Device→host copy reserved on the copy stream at a (future) start time."""
        return self._async_copy_at("d2h", nbytes, self.spec.d2h_bandwidth,
                                   earliest_start_ns, tag)

    def async_host_to_device_by(self, nbytes: int, deadline_ns: int,
                                earliest_start_ns: int = 0,
                                tag: str = "") -> CopyRecord:
        """Host→device copy placed to complete by ``deadline_ns`` if possible.

        Deadline-driven prefetches use the latest-fitting idle window of the
        copy stream (see :meth:`~repro.device.stream.Stream.reserve_before`),
        so simultaneous prefetches against one deadline stack backwards in
        time; an unmeetable deadline degrades to earliest-fit and the copy is
        simply late.
        """
        duration = self.timing.memcpy_duration_ns(nbytes, self.spec.h2d_bandwidth)
        start, end = self.copy_stream.reserve_before(
            deadline_ns, duration, earliest_start_ns=earliest_start_ns,
            name=tag or "swap-h2d")
        record = CopyRecord(direction="h2d", nbytes=nbytes, start_ns=start,
                            end_ns=end, tag=tag)
        self.records.append(record)
        return record

    def _async_copy_at(self, direction: str, nbytes: int, bandwidth: float,
                       earliest_start_ns: int, tag: str) -> CopyRecord:
        duration = self.timing.memcpy_duration_ns(nbytes, bandwidth)
        start, end = self.copy_stream.reserve(earliest_start_ns, duration,
                                              name=tag or f"swap-{direction}")
        record = CopyRecord(direction=direction, nbytes=nbytes, start_ns=start,
                            end_ns=end, tag=tag)
        self.records.append(record)
        return record

    # -- helpers -------------------------------------------------------------------

    def round_trip_time_ns(self, nbytes: int) -> float:
        """Time to swap ``nbytes`` out to the host and back (Eq. 1 left-hand side)."""
        out_ns = 1e9 * nbytes / self.spec.d2h_bandwidth
        back_ns = 1e9 * nbytes / self.spec.h2d_bandwidth
        return out_ns + back_ns

    def total_bytes(self, direction: Optional[str] = None) -> int:
        """Total bytes transferred (optionally filtered by direction)."""
        return sum(r.nbytes for r in self.records
                   if direction is None or r.direction == direction)
