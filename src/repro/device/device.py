"""The simulated accelerator facade.

:class:`Device` ties together the pieces a training run needs:

* a deterministic :class:`~repro.device.clock.DeviceClock`;
* an instrumentable allocator (caching by default);
* a roofline :class:`~repro.device.timing.KernelTimingModel`;
* a :class:`~repro.device.dma.DmaEngine` for host↔device transfers;
* a compute :class:`~repro.device.stream.Stream`;
* a :class:`~repro.device.hooks.CompositeListener` that profilers attach to.

The tensor library calls :meth:`Device.allocate` / :meth:`Device.free` for
storage management, :meth:`Device.notify_read` / :meth:`Device.notify_write`
when kernels touch storage, and :meth:`Device.run_kernel` to account for the
simulated execution time of each operator.
"""

from __future__ import annotations

from typing import Optional

from ..core.events import MemoryCategory
from ..errors import ConfigurationError
from .allocator import BaseAllocator, make_allocator
from .clock import DeviceClock
from .dma import DmaEngine
from .hooks import CompositeListener, MemoryEventListener
from .memory import Block
from .spec import DeviceSpec, titan_x_pascal
from .stream import Stream
from .timing import KernelCost, KernelTimingModel

#: Execution modes supported by the tensor library on this device.
#: ``"symbolic"`` runs shape/behavior-only kernels; ``"virtual"`` is the
#: legacy name of the same mode and stays accepted for back-compat.
EXECUTION_MODES = ("eager", "symbolic", "virtual")


class Device:
    """A simulated DNN accelerator with an instrumented memory system.

    Parameters
    ----------
    spec:
        Hardware description; defaults to the paper's Titan X (Pascal).
    allocator:
        Registry name of the allocator policy (``"caching"``, ``"best_fit"``
        or ``"bump"``).
    execution_mode:
        ``"eager"`` runs every kernel numerically on NumPy buffers (correct
        values, practical only for small models); ``"symbolic"`` (legacy
        name ``"virtual"``) skips the arithmetic — tensors carry shape,
        dtype and category but no data buffer — while performing identical
        allocations, accesses and timing-model costs.  Memory behavior is
        shape-dependent, not value-dependent, so the recorded traces are
        event-identical (the equivalence suite pins this), and symbolic mode
        is the default for sweeps.
    default_dtype:
        Element type (name or :class:`~repro.tensor.dtype.DType`) used for
        floating-point tensors whose dtype is not given explicitly —
        parameters, activations and staged input batches all follow it, so
        ``default_dtype="float16"`` models half-precision training.  Must be
        a floating-point dtype.
    compute_efficiency / bandwidth_efficiency / host_dispatch_overhead_ns:
        Forwarded to :class:`~repro.device.timing.KernelTimingModel`.
    """

    def __init__(
        self,
        spec: Optional[DeviceSpec] = None,
        allocator: str = "caching",
        execution_mode: str = "eager",
        default_dtype: object = "float32",
        compute_efficiency: float = 0.65,
        bandwidth_efficiency: float = 0.75,
        host_dispatch_overhead_ns: int = 6_000,
    ):
        from ..tensor.dtype import DType, get_dtype

        if execution_mode not in EXECUTION_MODES:
            raise ConfigurationError(
                f"execution_mode must be one of {EXECUTION_MODES}, got {execution_mode!r}"
            )
        self.spec = spec if spec is not None else titan_x_pascal()
        self.execution_mode = execution_mode
        dtype = default_dtype if isinstance(default_dtype, DType) else get_dtype(
            str(default_dtype))
        if dtype.numpy_dtype.kind != "f":
            raise ConfigurationError(
                f"default_dtype must be a floating-point dtype, got '{dtype.name}'")
        self.default_dtype = dtype
        self.clock = DeviceClock()
        self.listeners = CompositeListener()
        self.allocator: BaseAllocator = make_allocator(
            allocator, self.spec, self.clock, self.listeners
        )
        self.timing = KernelTimingModel(
            self.spec,
            compute_efficiency=compute_efficiency,
            bandwidth_efficiency=bandwidth_efficiency,
            host_dispatch_overhead_ns=host_dispatch_overhead_ns,
        )
        self.compute_stream = Stream("compute", self.clock)
        self.dma = DmaEngine(self.spec, self.clock, self.timing)
        self.kernel_count = 0
        self.swap_executor = None  # set by attach_swap_executor

    # -- profiling hooks -----------------------------------------------------------

    def add_listener(self, listener: MemoryEventListener) -> None:
        """Attach a memory-behavior listener (e.g. a trace recorder)."""
        self.listeners.add(listener)

    def remove_listener(self, listener: MemoryEventListener) -> None:
        """Detach a previously attached listener."""
        self.listeners.remove(listener)

    def attach_swap_executor(self, executor: MemoryEventListener) -> None:
        """Attach the closed-loop swap engine (see :mod:`repro.swap`).

        The executor must observe every behavior *before* any trace recorder
        does — stalls it inserts and the ``swap_in`` events it emits have to
        land ahead of the access that triggered them — so attach it before
        profilers are started.  Only one executor may be attached.
        """
        if self.swap_executor is not None:
            raise ConfigurationError("a swap executor is already attached")
        self.swap_executor = executor
        self.listeners.add(executor)

    @property
    def swapped_out_bytes(self) -> int:
        """Bytes of allocated blocks currently evicted to the host (0 if no engine)."""
        if self.swap_executor is None:
            return 0
        return self.swap_executor.swapped_out_bytes

    @property
    def resident_bytes(self) -> int:
        """Bytes actually occupying device memory: allocated minus swapped out."""
        return self.allocator.allocated_bytes - self.swapped_out_bytes

    # -- memory management -----------------------------------------------------------

    def allocate(self, size: int, category: MemoryCategory = MemoryCategory.UNKNOWN,
                 tag: str = "") -> Block:
        """Allocate ``size`` bytes of device memory."""
        return self.allocator.allocate(size, category=category, tag=tag)

    def free(self, block: Block) -> None:
        """Free a device memory block."""
        self.allocator.free(block)

    def notify_read(self, block: Block, nbytes: int, op: str) -> None:
        """Report that ``op`` read ``nbytes`` from ``block``."""
        self.listeners.on_read(block, nbytes, op)

    def notify_write(self, block: Block, nbytes: int, op: str) -> None:
        """Report that ``op`` wrote ``nbytes`` to ``block``."""
        self.listeners.on_write(block, nbytes, op)

    # -- execution -----------------------------------------------------------

    @property
    def is_eager(self) -> bool:
        """Whether kernels actually compute values on NumPy buffers."""
        return self.execution_mode == "eager"

    @property
    def is_symbolic(self) -> bool:
        """Whether kernels are shape/behavior-only (``symbolic`` or legacy ``virtual``)."""
        return self.execution_mode in ("symbolic", "virtual")

    def run_kernel(self, cost: KernelCost) -> int:
        """Account for the execution of one kernel; returns its duration in ns."""
        duration = self.timing.op_duration_ns(cost)
        self.compute_stream.schedule(duration, name=cost.name)
        if self.clock.tape is not None:
            self.clock.tape.record_kernel(cost, duration)
        self.clock.advance(duration)
        self.kernel_count += 1
        return duration

    def host_pause(self, duration_ns: int) -> None:
        """Model host-side time during which the device is idle.

        Used by the training loop for data loading / preprocessing and other
        framework overhead between device operations; these gaps are what
        produce the very large access-time intervals the paper highlights.
        """
        if duration_ns < 0:
            raise ConfigurationError("host_pause duration must be non-negative")
        if self.clock.tape is not None:
            self.clock.tape.record_const(duration_ns)
        self.clock.advance(duration_ns)

    def copy_host_to_device(self, nbytes: int, tag: str = "") -> int:
        """Synchronous pinned host→device copy; returns its duration in ns."""
        return self.dma.host_to_device(nbytes, tag=tag).duration_ns

    def copy_device_to_host(self, nbytes: int, tag: str = "") -> int:
        """Synchronous pinned device→host copy; returns its duration in ns."""
        return self.dma.device_to_host(nbytes, tag=tag).duration_ns

    # -- introspection -----------------------------------------------------------

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated to live tensors."""
        return self.allocator.allocated_bytes

    @property
    def reserved_bytes(self) -> int:
        """Bytes currently reserved from the device by the allocator."""
        return self.allocator.reserved_bytes

    @property
    def peak_allocated_bytes(self) -> int:
        """High-water mark of allocated bytes."""
        return self.allocator.stats.peak_allocated_bytes

    @property
    def peak_reserved_bytes(self) -> int:
        """High-water mark of reserved bytes."""
        return self.allocator.stats.peak_reserved_bytes

    def memory_stats(self) -> dict:
        """``torch.cuda.memory_stats``-style dictionary of allocator counters."""
        return self.allocator.stats.to_dict()

    def memory_snapshot(self) -> list:
        """``torch.cuda.memory_snapshot``-style dump of segments and blocks."""
        return self.allocator.memory_snapshot()

    def synchronize(self) -> int:
        """Wait for all outstanding stream work; returns the new device time."""
        self.compute_stream.synchronize()
        self.dma.copy_stream.synchronize()
        return self.clock.now_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Device({self.spec.name!r}, allocator={self.allocator.name!r}, "
            f"mode={self.execution_mode!r}, now={self.clock.now_ns}ns)"
        )
