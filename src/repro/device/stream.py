"""Minimal stream model for overlap analysis.

The bulk of the reproduction runs synchronously on a single compute stream
(which is how eager PyTorch issues its kernels), so the device clock alone is
sufficient.  Streams become relevant for the swap-planning extension: a
dedicated copy stream lets prefetches and evictions overlap with compute, and
the planner needs to know when the copy engine would actually be free.

A :class:`Stream` tracks the time at which its last scheduled operation
finishes; scheduling a new operation starts at ``max(now, busy_until)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

from .clock import DeviceClock


@dataclass
class StreamOp:
    """One operation scheduled on a stream."""

    name: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        """Duration of the operation in nanoseconds."""
        return self.end_ns - self.start_ns


class Stream:
    """An in-order queue of device operations with its own completion horizon."""

    def __init__(self, name: str, clock: DeviceClock):
        self.name = name
        self.clock = clock
        self.busy_until_ns = clock.now_ns
        self.ops: List[StreamOp] = []

    def schedule(self, duration_ns: int, name: str = "") -> Tuple[int, int]:
        """Schedule an operation of ``duration_ns``; returns its (start, end) times.

        The operation starts when both the stream is free and the current
        device time has been reached; it does **not** advance the device clock
        (the caller synchronizes explicitly if needed).
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        start = max(self.clock.now_ns, self.busy_until_ns)
        end = start + int(duration_ns)
        self.busy_until_ns = end
        self.ops.append(StreamOp(name=name or f"{self.name}-op{len(self.ops)}",
                                 start_ns=start, end_ns=end))
        return start, end

    def synchronize(self) -> int:
        """Advance the device clock to this stream's completion horizon."""
        if self.busy_until_ns > self.clock.now_ns:
            self.clock.advance_to(self.busy_until_ns)
        return self.clock.now_ns

    def idle_time_ns(self) -> int:
        """Total idle gaps between consecutive operations on this stream."""
        idle = 0
        for previous, current in zip(self.ops, self.ops[1:]):
            idle += max(0, current.start_ns - previous.end_ns)
        return idle

    def busy_time_ns(self) -> int:
        """Total busy time of the stream."""
        return sum(op.duration_ns for op in self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Stream({self.name!r}, busy_until={self.busy_until_ns}, ops={len(self.ops)})"
