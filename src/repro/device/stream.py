"""Minimal stream model for overlap analysis.

The bulk of the reproduction runs synchronously on a single compute stream
(which is how eager PyTorch issues its kernels), so the device clock alone is
sufficient.  Streams carry the swap-execution engine
(:mod:`repro.swap`): a dedicated copy stream lets evictions and prefetches
overlap with compute, and the engine needs to know when the copy engine would
actually be free — the stream's completion horizon is what turns concurrent
swap traffic into serialized copies and, ultimately, measured stalls.

A :class:`Stream` tracks the time at which its last scheduled operation
finishes; scheduling a new operation starts at ``max(now, busy_until)``.
:meth:`Stream.schedule_at` additionally lets a caller reserve a slot at (or
after) a *future* point in time — the mechanism behind deadline-driven
prefetches — while still never moving the stream's horizon backwards.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from typing import List, Tuple

from .clock import DeviceClock


@dataclass
class StreamOp:
    """One operation scheduled on a stream."""

    name: str
    start_ns: int
    end_ns: int

    @property
    def duration_ns(self) -> int:
        """Duration of the operation in nanoseconds."""
        return self.end_ns - self.start_ns


class Stream:
    """An in-order queue of device operations with its own completion horizon.

    Zero-duration operations (empty transfers, degenerate reservations) are
    recorded in the op history but never move ``busy_until_ns``: an op that
    occupies no time must not make the engine look busy at a future instant,
    or a far-deadline zero-byte prefetch would serialize real copies behind
    an empty slot.
    """

    def __init__(self, name: str, clock: DeviceClock):
        self.name = name
        self.clock = clock
        self.busy_until_ns = clock.now_ns
        self.ops: List[StreamOp] = []
        # Busy intervals kept sorted by start for the reservation gap search;
        # intervals entirely in the past are pruned (a reservation can never
        # start before the current device time), so the search cost tracks
        # the number of *in-flight* ops, not the run's full history.
        self._busy_intervals: List[Tuple[int, int]] = []

    def schedule(self, duration_ns: int, name: str = "") -> Tuple[int, int]:
        """Schedule an operation of ``duration_ns``; returns its (start, end) times.

        The operation starts when both the stream is free and the current
        device time has been reached; it does **not** advance the device clock
        (the caller synchronizes explicitly if needed).
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        return self.schedule_at(self.clock.now_ns, duration_ns, name=name)

    def schedule_at(self, earliest_start_ns: int, duration_ns: int,
                    name: str = "") -> Tuple[int, int]:
        """Schedule an operation that may start no earlier than ``earliest_start_ns``.

        The operation starts at ``max(earliest_start_ns, busy_until)`` — an
        in-order stream can never run an op before the previous one finished,
        so an earliest-start in the past (or before the stream's completion
        horizon) is clamped forward rather than moving time backwards.  The
        returned ``(start, end)`` therefore always satisfies
        ``start >= previous op's end`` and ``end >= busy_until`` — the stream
        horizon is monotonic even for callers that compute stale deadlines.
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        start = max(int(earliest_start_ns), self.busy_until_ns)
        end = start + int(duration_ns)
        if end > start:
            self.busy_until_ns = end
        self._append_op(start, end, name)
        return start, end

    def _append_op(self, start: int, end: int, name: str) -> None:
        """Record one scheduled operation (history + sorted busy index)."""
        self.ops.append(StreamOp(name=name or f"{self.name}-op{len(self.ops)}",
                                 start_ns=start, end_ns=end))
        if end > start:
            insort(self._busy_intervals, (start, end))

    def _pruned_intervals(self) -> List[Tuple[int, int]]:
        """The sorted busy intervals, with fully elapsed ones dropped.

        Reservations are clamped to start no earlier than the device's
        current time, so an interval that ended in the past can never
        constrain a placement again.
        """
        now = self.clock.now_ns
        drop = 0
        intervals = self._busy_intervals
        while drop < len(intervals) and intervals[drop][1] <= now:
            drop += 1
        if drop:
            del intervals[:drop]
        return intervals

    def reserve(self, earliest_start_ns: int, duration_ns: int,
                name: str = "") -> Tuple[int, int]:
        """Reserve the earliest idle window of ``duration_ns`` at/after a time.

        Unlike the FIFO :meth:`schedule_at`, a reservation may *backfill* an
        idle gap between already-scheduled operations — the model of a copy
        engine whose transfers are issued on independent hardware queues, so
        a far-future reservation (a prefetch against a distant deadline) does
        not head-of-line-block an urgent transfer issued later.  Contention
        is still real: overlapping requests serialize through the gap search,
        and the stream's completion horizon only moves forward.
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        duration = int(duration_ns)
        # A reservation made now can never start in the past.
        start = max(int(earliest_start_ns), self.clock.now_ns)
        for busy_start, busy_end in self._pruned_intervals():
            if start + duration <= busy_start:
                break
            if busy_end > start:
                start = busy_end
        end = start + duration
        if end > start:
            self.busy_until_ns = max(self.busy_until_ns, end)
        self._append_op(start, end, name)
        return start, end

    def reserve_before(self, latest_end_ns: int, duration_ns: int,
                       earliest_start_ns: int = 0, name: str = "") -> Tuple[int, int]:
        """Latest-fitting reservation that completes by ``latest_end_ns``.

        The deadline-driven counterpart of :meth:`reserve`: the operation is
        placed in the idle window that lets it finish as late as possible
        while still meeting the deadline (so several prefetches against the
        same deadline stack backwards in time instead of serializing past
        it).  When no window can meet the deadline the op falls back to the
        earliest-fit placement — it will simply be late, and the caller's
        stall accounting shows by how much.
        """
        if duration_ns < 0:
            raise ValueError("duration_ns must be non-negative")
        duration = int(duration_ns)
        latest_end = int(latest_end_ns)
        # A reservation made now can never start in the past.
        earliest = max(int(earliest_start_ns), self.clock.now_ns)
        best_start = None
        cursor = earliest
        gaps = []
        for busy_start, busy_end in self._pruned_intervals():
            if busy_start > cursor:
                gaps.append((cursor, busy_start))
            cursor = max(cursor, busy_end)
        gaps.append((cursor, None))  # the open-ended tail
        for gap_start, gap_end in gaps:
            window_end = latest_end if gap_end is None else min(gap_end, latest_end)
            start = window_end - duration
            if start >= max(gap_start, earliest):
                best_start = start if best_start is None else max(best_start, start)
        if best_start is None:
            return self.reserve(earliest, duration, name=name)
        end = best_start + duration
        if end > best_start:
            self.busy_until_ns = max(self.busy_until_ns, end)
        self._append_op(best_start, end, name)
        return best_start, end

    def synchronize(self) -> int:
        """Advance the device clock to this stream's completion horizon."""
        if self.busy_until_ns > self.clock.now_ns:
            self.clock.advance_to(self.busy_until_ns)
        return self.clock.now_ns

    def idle_time_ns(self) -> int:
        """Total idle gaps between consecutive operations on this stream."""
        idle = 0
        ordered = sorted(self.ops, key=lambda op: (op.start_ns, op.end_ns))
        for previous, current in zip(ordered, ordered[1:]):
            idle += max(0, current.start_ns - previous.end_ns)
        return idle

    def busy_time_ns(self) -> int:
        """Total busy time of the stream."""
        return sum(op.duration_ns for op in self.ops)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Stream({self.name!r}, busy_until={self.busy_until_ns}, ops={len(self.ops)})"
