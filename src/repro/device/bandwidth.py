"""A ``bandwidthTest`` equivalent for the simulated device.

The paper measures pinned host↔device memcpy bandwidth with the
``bandwidthTest`` tool from the CUDA SDK samples and reports 6.3 GB/s
(host→device) and 6.4 GB/s (device→host) on its Titan X Pascal testbed.
:class:`BandwidthTest` performs the same measurement against the simulated
:class:`~repro.device.dma.DmaEngine`: it issues a series of fixed-size
transfers, times them with the device clock and reports the achieved
bandwidth.  Because the DMA engine also charges a per-copy launch overhead,
the measured numbers converge to the configured bandwidths only for large
transfer sizes — just like the real tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..units import GB, MIB
from .dma import DmaEngine


@dataclass(frozen=True)
class BandwidthMeasurement:
    """Result of one direction of the bandwidth test."""

    direction: str
    transfer_bytes: int
    repetitions: int
    total_ns: int

    @property
    def bandwidth_bytes_per_s(self) -> float:
        """Achieved bandwidth in bytes/second."""
        if self.total_ns == 0:
            return float("inf")
        return 1e9 * self.transfer_bytes * self.repetitions / self.total_ns

    @property
    def bandwidth_gb_per_s(self) -> float:
        """Achieved bandwidth in decimal GB/s (the unit ``bandwidthTest`` prints)."""
        return self.bandwidth_bytes_per_s / GB


@dataclass(frozen=True)
class BandwidthReport:
    """Measured bandwidths in both directions, as the paper reports them."""

    h2d: BandwidthMeasurement
    d2h: BandwidthMeasurement

    @property
    def h2d_gb_per_s(self) -> float:
        """Host→device bandwidth in GB/s."""
        return self.h2d.bandwidth_gb_per_s

    @property
    def d2h_gb_per_s(self) -> float:
        """Device→host bandwidth in GB/s."""
        return self.d2h.bandwidth_gb_per_s

    def summary(self) -> str:
        """Human-readable summary, mirroring ``bandwidthTest`` output."""
        return (
            f"Host to Device Bandwidth: {self.h2d_gb_per_s:.1f} GB/s\n"
            f"Device to Host Bandwidth: {self.d2h_gb_per_s:.1f} GB/s"
        )


class BandwidthTest:
    """Measure pinned host↔device transfer bandwidth on the simulated device."""

    def __init__(self, dma: DmaEngine, transfer_bytes: int = 32 * MIB, repetitions: int = 10):
        if transfer_bytes <= 0:
            raise ValueError("transfer_bytes must be positive")
        if repetitions <= 0:
            raise ValueError("repetitions must be positive")
        self.dma = dma
        self.transfer_bytes = int(transfer_bytes)
        self.repetitions = int(repetitions)

    def _measure(self, direction: str) -> BandwidthMeasurement:
        copy = (self.dma.host_to_device if direction == "h2d"
                else self.dma.device_to_host)
        start = self.dma.clock.now_ns
        for _ in range(self.repetitions):
            copy(self.transfer_bytes, tag=f"bandwidth_test_{direction}")
        total = self.dma.clock.now_ns - start
        return BandwidthMeasurement(
            direction=direction,
            transfer_bytes=self.transfer_bytes,
            repetitions=self.repetitions,
            total_ns=total,
        )

    def run(self) -> BandwidthReport:
        """Run both directions and return the report."""
        h2d = self._measure("h2d")
        d2h = self._measure("d2h")
        return BandwidthReport(h2d=h2d, d2h=d2h)

    def sweep(self, sizes: List[int]) -> List[BandwidthReport]:
        """Measure bandwidth at several transfer sizes (shmoo mode)."""
        reports = []
        original = self.transfer_bytes
        try:
            for size in sizes:
                self.transfer_bytes = int(size)
                reports.append(self.run())
        finally:
            self.transfer_bytes = original
        return reports
