"""Analytical kernel timing model.

The access-time intervals (ATIs) characterized by the paper are determined by
how long the GPU spends between consecutive accesses to the same block, i.e.
by kernel durations and host-side gaps.  We model kernel duration with a
classic roofline estimate::

    t_kernel = launch_overhead + max(flops / peak_flops,
                                     bytes_moved / memory_bandwidth)

which reproduces the two regimes the paper observes: small kernels are
launch/latency bound (tens of microseconds) while very large tensors push
durations into the millisecond range.

The model also supports an efficiency factor (< 1.0) because real kernels do
not reach peak throughput, and a fixed software overhead per operator that
accounts for the framework's host-side dispatch (Python + dispatcher), which
in eager PyTorch is a significant part of small-kernel ATIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from .spec import DeviceSpec


@dataclass(frozen=True)
class KernelCost:
    """Work estimate for one kernel: floating point ops and bytes moved."""

    flops: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    name: str = ""

    @property
    def bytes_moved(self) -> float:
        """Total DRAM traffic of the kernel in bytes."""
        return self.bytes_read + self.bytes_written

    def scaled(self, factor: float) -> "KernelCost":
        """Return a copy with all work scaled by ``factor`` (for fused ops)."""
        return KernelCost(
            flops=self.flops * factor,
            bytes_read=self.bytes_read * factor,
            bytes_written=self.bytes_written * factor,
            name=self.name,
        )


class KernelTimingModel:
    """Roofline-style duration estimator for simulated kernels.

    Parameters
    ----------
    spec:
        The device being modelled.
    compute_efficiency:
        Fraction of peak FLOP/s that dense kernels actually achieve.
    bandwidth_efficiency:
        Fraction of peak DRAM bandwidth that memory-bound kernels achieve.
    host_dispatch_overhead_ns:
        Host-side framework overhead added to every operator on top of the
        device-side launch overhead.
    """

    def __init__(
        self,
        spec: DeviceSpec,
        compute_efficiency: float = 0.65,
        bandwidth_efficiency: float = 0.75,
        host_dispatch_overhead_ns: int = 6_000,
    ):
        if not 0.0 < compute_efficiency <= 1.0:
            raise ValueError("compute_efficiency must be in (0, 1]")
        if not 0.0 < bandwidth_efficiency <= 1.0:
            raise ValueError("bandwidth_efficiency must be in (0, 1]")
        self.spec = spec
        self.compute_efficiency = compute_efficiency
        self.bandwidth_efficiency = bandwidth_efficiency
        self.host_dispatch_overhead_ns = int(host_dispatch_overhead_ns)
        self._per_kernel_ns: Dict[str, int] = {}

    # -- estimation -----------------------------------------------------------

    def kernel_duration_ns(self, cost: KernelCost) -> int:
        """Device-side duration of one kernel, in nanoseconds."""
        effective_flops = self.spec.peak_flops * self.compute_efficiency
        effective_bw = self.spec.memory_bandwidth * self.bandwidth_efficiency
        compute_ns = 1e9 * cost.flops / effective_flops if cost.flops else 0.0
        memory_ns = 1e9 * cost.bytes_moved / effective_bw if cost.bytes_moved else 0.0
        busy_ns = max(compute_ns, memory_ns)
        return int(round(self.spec.kernel_launch_overhead_ns + busy_ns))

    def op_duration_ns(self, cost: KernelCost) -> int:
        """Total operator duration: host dispatch plus kernel time."""
        duration = self.host_dispatch_overhead_ns + self.kernel_duration_ns(cost)
        self._per_kernel_ns[cost.name or "anonymous"] = duration
        return duration

    def memcpy_duration_ns(self, nbytes: int, bandwidth: float) -> int:
        """Duration of a host↔device copy of ``nbytes`` at ``bandwidth`` B/s."""
        if nbytes < 0:
            raise ValueError("nbytes must be non-negative")
        transfer_ns = 1e9 * nbytes / bandwidth if nbytes else 0.0
        return int(round(self.spec.memcpy_launch_overhead_ns + transfer_ns))

    # -- introspection ---------------------------------------------------------

    def last_durations(self) -> Dict[str, int]:
        """Most recent estimated duration per kernel name (for debugging)."""
        return dict(self._per_kernel_ns)


def matmul_cost(m: int, k: int, n: int, itemsize: int = 4, name: str = "matmul") -> KernelCost:
    """Cost of a dense ``(m, k) @ (k, n)`` matrix multiplication."""
    flops = 2.0 * m * k * n
    bytes_read = itemsize * (m * k + k * n)
    bytes_written = itemsize * (m * n)
    return KernelCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written, name=name)


def elementwise_cost(numel: int, n_inputs: int = 1, flops_per_element: float = 1.0,
                     itemsize: int = 4, name: str = "elementwise") -> KernelCost:
    """Cost of an elementwise kernel over ``numel`` elements."""
    return KernelCost(
        flops=flops_per_element * numel,
        bytes_read=itemsize * numel * n_inputs,
        bytes_written=itemsize * numel,
        name=name,
    )


def conv2d_cost(batch: int, in_channels: int, out_channels: int,
                out_h: int, out_w: int, kernel_h: int, kernel_w: int,
                itemsize: int = 4, name: str = "conv2d") -> KernelCost:
    """Cost of a direct 2-D convolution producing a ``(batch, out_channels, out_h, out_w)`` map."""
    output_elems = batch * out_channels * out_h * out_w
    flops = 2.0 * output_elems * in_channels * kernel_h * kernel_w
    bytes_read = itemsize * (
        batch * in_channels * out_h * out_w * kernel_h * kernel_w / max(1, kernel_h * kernel_w)
        + out_channels * in_channels * kernel_h * kernel_w
    )
    bytes_written = itemsize * output_elems
    return KernelCost(flops=flops, bytes_read=bytes_read, bytes_written=bytes_written, name=name)


def reduction_cost(numel: int, itemsize: int = 4, name: str = "reduction") -> KernelCost:
    """Cost of a full reduction over ``numel`` elements."""
    return KernelCost(flops=float(numel), bytes_read=float(itemsize * numel),
                      bytes_written=float(itemsize), name=name)
