"""Deterministic simulated device clock.

All timestamps in the memory traces come from this clock.  It only moves
forward, in integer nanoseconds, and is advanced explicitly by the components
that model time: kernel execution (:mod:`repro.device.timing`), DMA transfers
(:mod:`repro.device.dma`) and host-side overheads modelled by the training
loop (:mod:`repro.train`).

Using a simulated clock instead of wall-clock time makes every figure of the
reproduction exactly deterministic and independent of the speed of the machine
running the simulation.
"""

from __future__ import annotations

from typing import Callable, List

from ..errors import ClockError


class DeviceClock:
    """Monotonic simulated clock with nanosecond resolution."""

    def __init__(self, start_ns: int = 0):
        if start_ns < 0:
            raise ClockError(f"clock cannot start at negative time {start_ns}")
        self._now_ns = int(start_ns)
        self._observers: List[Callable[[int, int], None]] = []
        #: Optional :class:`~repro.device.tape.TimingTape` capturing why each
        #: advance happened (set by the tape itself when it attaches).
        self.tape = None

    @property
    def now_ns(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now_ns

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return self._now_ns / 1_000

    @property
    def now_s(self) -> float:
        """Current simulated time in seconds."""
        return self._now_ns / 1_000_000_000

    def advance(self, delta_ns: int) -> int:
        """Advance the clock by ``delta_ns`` nanoseconds and return the new time.

        ``delta_ns`` must be non-negative; the clock never moves backwards.
        Fractional inputs are rounded to the nearest nanosecond.
        """
        delta_ns = int(round(delta_ns))
        if delta_ns < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta_ns}")
        previous = self._now_ns
        self._now_ns += delta_ns
        if delta_ns and self._observers:
            for observer in self._observers:
                observer(previous, self._now_ns)
        return self._now_ns

    def advance_to(self, target_ns: int) -> int:
        """Advance the clock to an absolute time ``target_ns``.

        Raises :class:`~repro.errors.ClockError` if the target is in the past.
        """
        target_ns = int(round(target_ns))
        if target_ns < self._now_ns:
            raise ClockError(
                f"cannot move clock backwards from {self._now_ns} to {target_ns}"
            )
        return self.advance(target_ns - self._now_ns)

    def add_observer(self, observer: Callable[[int, int], None]) -> None:
        """Register a callback invoked as ``observer(old_ns, new_ns)`` on advances."""
        self._observers.append(observer)

    def remove_observer(self, observer: Callable[[int, int], None]) -> None:
        """Unregister a previously added observer (no-op if absent)."""
        if observer in self._observers:
            self._observers.remove(observer)

    def reset(self, start_ns: int = 0) -> None:
        """Reset the clock to ``start_ns`` (observers are kept)."""
        if start_ns < 0:
            raise ClockError(f"clock cannot be reset to negative time {start_ns}")
        self._now_ns = int(start_ns)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"DeviceClock(now_ns={self._now_ns})"
