"""Simulated DNN accelerator: clock, memory system, allocators, DMA and timing.

This package replaces the Nvidia Titan X (Pascal) + CUDA runtime used by the
paper with a deterministic software model whose memory system is instrumented
exactly the way the paper instruments PyTorch's allocators.
"""

from .allocator import (
    ALLOCATOR_CLASSES,
    BaseAllocator,
    BestFitAllocator,
    BumpAllocator,
    CachingAllocator,
    LARGE_SEGMENT_SIZE,
    MIN_BLOCK_SIZE,
    SMALL_ALLOCATION_LIMIT,
    SMALL_SEGMENT_SIZE,
    make_allocator,
    round_block_size,
    segment_size_for,
)
from .bandwidth import BandwidthMeasurement, BandwidthReport, BandwidthTest
from .clock import DeviceClock
from .cluster import (
    ALLREDUCE_ALGORITHMS,
    ClusterSpec,
    DeviceGroup,
    INTERCONNECT_PRESETS,
    InterconnectSpec,
    get_interconnect,
    naive_allreduce_time_ns,
    ring_allreduce_time_ns,
)
from .collective import CollectiveEngine, CollectiveRecord
from .device import Device, EXECUTION_MODES
from .dma import CopyRecord, DmaEngine
from .hooks import CompositeListener, CountingListener, MemoryEventListener, NullListener
from .memory import AllocatorStats, Block, Segment
from .spec import (
    DEVICE_PRESETS,
    DeviceSpec,
    ampere_a100_40gb,
    get_device_spec,
    small_test_device,
    titan_x_pascal,
)
from .stream import Stream, StreamOp
from .timing import (
    KernelCost,
    KernelTimingModel,
    conv2d_cost,
    elementwise_cost,
    matmul_cost,
    reduction_cost,
)

__all__ = [
    "ALLOCATOR_CLASSES",
    "ALLREDUCE_ALGORITHMS",
    "AllocatorStats",
    "BandwidthMeasurement",
    "BandwidthReport",
    "BandwidthTest",
    "BaseAllocator",
    "BestFitAllocator",
    "Block",
    "BumpAllocator",
    "CachingAllocator",
    "ClusterSpec",
    "CollectiveEngine",
    "CollectiveRecord",
    "CompositeListener",
    "CopyRecord",
    "CountingListener",
    "DEVICE_PRESETS",
    "Device",
    "DeviceClock",
    "DeviceGroup",
    "DeviceSpec",
    "DmaEngine",
    "EXECUTION_MODES",
    "INTERCONNECT_PRESETS",
    "InterconnectSpec",
    "KernelCost",
    "KernelTimingModel",
    "LARGE_SEGMENT_SIZE",
    "MIN_BLOCK_SIZE",
    "MemoryEventListener",
    "NullListener",
    "SMALL_ALLOCATION_LIMIT",
    "SMALL_SEGMENT_SIZE",
    "Segment",
    "Stream",
    "StreamOp",
    "ampere_a100_40gb",
    "conv2d_cost",
    "elementwise_cost",
    "get_device_spec",
    "get_interconnect",
    "make_allocator",
    "matmul_cost",
    "naive_allreduce_time_ns",
    "reduction_cost",
    "ring_allreduce_time_ns",
    "round_block_size",
    "segment_size_for",
    "small_test_device",
    "titan_x_pascal",
]
