"""Simulated DNN accelerator: clock, memory system, allocators, DMA and timing.

This package replaces the Nvidia Titan X (Pascal) + CUDA runtime used by the
paper with a deterministic software model whose memory system is instrumented
exactly the way the paper instruments PyTorch's allocators.
"""

from .allocator import (
    ALLOCATOR_CLASSES,
    BaseAllocator,
    BestFitAllocator,
    BumpAllocator,
    CachingAllocator,
    LARGE_SEGMENT_SIZE,
    MIN_BLOCK_SIZE,
    SMALL_ALLOCATION_LIMIT,
    SMALL_SEGMENT_SIZE,
    make_allocator,
    round_block_size,
    segment_size_for,
)
from .bandwidth import BandwidthMeasurement, BandwidthReport, BandwidthTest
from .clock import DeviceClock
from .device import Device, EXECUTION_MODES
from .dma import CopyRecord, DmaEngine
from .hooks import CompositeListener, CountingListener, MemoryEventListener, NullListener
from .memory import AllocatorStats, Block, Segment
from .spec import (
    DEVICE_PRESETS,
    DeviceSpec,
    ampere_a100_40gb,
    get_device_spec,
    small_test_device,
    titan_x_pascal,
)
from .stream import Stream, StreamOp
from .timing import (
    KernelCost,
    KernelTimingModel,
    conv2d_cost,
    elementwise_cost,
    matmul_cost,
    reduction_cost,
)

__all__ = [
    "ALLOCATOR_CLASSES",
    "AllocatorStats",
    "BandwidthMeasurement",
    "BandwidthReport",
    "BandwidthTest",
    "BaseAllocator",
    "BestFitAllocator",
    "Block",
    "BumpAllocator",
    "CachingAllocator",
    "CompositeListener",
    "CopyRecord",
    "CountingListener",
    "DEVICE_PRESETS",
    "Device",
    "DeviceClock",
    "DeviceSpec",
    "DmaEngine",
    "EXECUTION_MODES",
    "KernelCost",
    "KernelTimingModel",
    "LARGE_SEGMENT_SIZE",
    "MIN_BLOCK_SIZE",
    "MemoryEventListener",
    "NullListener",
    "SMALL_ALLOCATION_LIMIT",
    "SMALL_SEGMENT_SIZE",
    "Segment",
    "Stream",
    "StreamOp",
    "ampere_a100_40gb",
    "conv2d_cost",
    "elementwise_cost",
    "get_device_spec",
    "make_allocator",
    "matmul_cost",
    "reduction_cost",
    "round_block_size",
    "segment_size_for",
    "small_test_device",
    "titan_x_pascal",
]
