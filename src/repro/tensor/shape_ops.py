"""Shape-manipulation kernels: channel concatenation and splitting.

Needed by Inception-style modules whose parallel branches are concatenated
along the channel dimension.  Unlike reshapes, concatenation moves data, so it
is modelled as a real kernel with reads of every input and a write of the
packed output.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from ..core.events import MemoryCategory
from ..device.timing import elementwise_cost
from ..errors import ShapeError
from .functional import launch
from .tensor import Tensor, empty


def concat_channels(tensors: Sequence[Tensor], tag: str = "concat_out") -> Tensor:
    """Concatenate ``(N, C_i, H, W)`` tensors along the channel dimension."""
    if not tensors:
        raise ShapeError("concat_channels needs at least one tensor")
    device = tensors[0].device
    batch, _, height, width = tensors[0].shape
    for tensor in tensors:
        if tensor.ndim != 4 or tensor.shape[0] != batch or tensor.shape[2:] != (height, width):
            raise ShapeError(
                f"concat_channels shape mismatch: {[t.shape for t in tensors]}"
            )
    total_channels = sum(tensor.shape[1] for tensor in tensors)
    out = empty(device, (batch, total_channels, height, width), dtype=tensors[0].dtype,
                category=MemoryCategory.ACTIVATION, tag=tag)
    numel = sum(tensor.numel for tensor in tensors)
    cost = elementwise_cost(numel, n_inputs=1, itemsize=tensors[0].dtype.itemsize,
                            name="concat_channels")
    return launch(device, "concat_channels", cost, list(tensors), out,
                  compute=lambda: np.concatenate([t.numpy() for t in tensors], axis=1))


def split_channels(grad: Tensor, channel_sizes: Sequence[int],
                   tag: str = "split_grad") -> List[Tensor]:
    """Split a ``(N, C, H, W)`` gradient back into per-branch channel chunks."""
    if sum(channel_sizes) != grad.shape[1]:
        raise ShapeError(
            f"split_channels sizes {list(channel_sizes)} do not sum to {grad.shape[1]} channels"
        )
    device = grad.device
    batch, _, height, width = grad.shape
    outputs: List[Tensor] = []
    offset = 0
    for index, channels in enumerate(channel_sizes):
        piece = empty(device, (batch, channels, height, width), dtype=grad.dtype,
                      category=MemoryCategory.ACTIVATION_GRADIENT, tag=f"{tag}_{index}")
        cost = elementwise_cost(piece.numel, n_inputs=1, itemsize=grad.dtype.itemsize,
                                name="split_channels")
        start = offset

        def compute(start=start, channels=channels) -> np.ndarray:
            return grad.numpy()[:, start:start + channels, :, :]

        launch(device, "split_channels", cost, [grad], piece, compute=compute)
        outputs.append(piece)
        offset += channels
    return outputs
