"""Dense, elementwise, loss and optimizer kernels.

Every function in this module behaves like one (or a small fixed number of)
device kernel launch(es):

1. the input storages are *read* (recorded as ``read`` behaviors),
2. the kernel executes for a duration given by the roofline timing model
   (advancing the simulated clock),
3. the output storage is *written* (recorded as a ``write`` behavior),
4. in eager mode the actual values are computed with NumPy.

Convolution, pooling and batch-normalization kernels live in
:mod:`repro.tensor.conv_ops`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, Tuple

import numpy as np

from ..core.events import MemoryCategory
from ..device.device import Device
from ..device.timing import KernelCost, elementwise_cost, matmul_cost, reduction_cost
from ..errors import ShapeError
from .dtype import float32
from .tensor import Tensor, empty


def gemm(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Matrix product with fp32 accumulation for half-precision operands.

    NumPy has no BLAS path for ``float16`` matmul (it falls back to a scalar
    loop, orders of magnitude slower), and real mixed-precision GEMMs
    accumulate in fp32 anyway — so half inputs are upcast for the product.
    The caller's :func:`launch` casts the result back to the output dtype.
    """
    if a.dtype == np.float16 or b.dtype == np.float16:
        return np.matmul(a.astype(np.float32, copy=False),
                         b.astype(np.float32, copy=False))
    return np.matmul(a, b)


def launch(
    device: Device,
    op_name: str,
    cost: KernelCost,
    inputs: Sequence[Tensor],
    output: Tensor,
    compute: Optional[Callable[[], np.ndarray]] = None,
) -> Tensor:
    """Run one simulated kernel: record reads, advance time, record the write.

    ``compute`` is only invoked in eager mode; it must return the output
    values with any shape reshapeable to ``output.shape``.
    """
    for tensor in inputs:
        tensor.storage.record_read(op_name)
    device.run_kernel(cost)
    if device.is_eager and compute is not None:
        output.storage.set_buffer(np.asarray(compute(), dtype=output.dtype.numpy_dtype))
    output.storage.record_write(op_name)
    return output


def _check_same_device(*tensors: Tensor) -> Device:
    device = tensors[0].device
    for tensor in tensors[1:]:
        if tensor.device is not device:
            raise ShapeError("all operands must live on the same device")
    return device


# -- dense linear algebra -----------------------------------------------------------------


def matmul(a: Tensor, b: Tensor, category: MemoryCategory = MemoryCategory.ACTIVATION,
           tag: str = "", op_name: str = "matmul") -> Tensor:
    """Dense ``(m, k) @ (k, n)`` matrix product."""
    device = _check_same_device(a, b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ShapeError(f"matmul shapes {a.shape} and {b.shape} are incompatible")
    m, k = a.shape
    n = b.shape[1]
    out = empty(device, (m, n), dtype=a.dtype, category=category, tag=tag or "matmul_out")
    cost = matmul_cost(m, k, n, itemsize=a.dtype.itemsize, name=op_name)
    return launch(device, op_name, cost, [a, b], out,
                  compute=lambda: gemm(a.numpy(), b.numpy()))


def linear_forward(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None,
                   tag: str = "linear_out") -> Tensor:
    """Fully connected layer: ``y = x @ W + b`` with ``W`` of shape ``(in, out)``."""
    device = _check_same_device(x, weight)
    if x.ndim != 2 or weight.ndim != 2 or x.shape[1] != weight.shape[0]:
        raise ShapeError(f"linear shapes {x.shape} and {weight.shape} are incompatible")
    m, k = x.shape
    n = weight.shape[1]
    out = empty(device, (m, n), dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = matmul_cost(m, k, n, itemsize=x.dtype.itemsize, name="linear_forward")
    inputs = [x, weight] + ([bias] if bias is not None else [])

    def compute() -> np.ndarray:
        result = gemm(x.numpy(), weight.numpy())
        if bias is not None:
            result = result + bias.numpy()[None, :]
        return result

    return launch(device, "linear_forward", cost, inputs, out, compute=compute)


def linear_backward_input(grad_output: Tensor, weight: Tensor,
                          tag: str = "linear_grad_in") -> Tensor:
    """Gradient w.r.t. the input of a linear layer: ``dX = dY @ W^T``."""
    device = _check_same_device(grad_output, weight)
    m, n = grad_output.shape
    k = weight.shape[0]
    out = empty(device, (m, k), dtype=grad_output.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = matmul_cost(m, n, k, itemsize=grad_output.dtype.itemsize,
                       name="linear_backward_input")
    return launch(device, "linear_backward_input", cost, [grad_output, weight], out,
                  compute=lambda: gemm(grad_output.numpy(), weight.numpy().T))


def linear_backward_params(x: Tensor, grad_output: Tensor, grad_weight: Tensor,
                           grad_bias: Optional[Tensor] = None) -> None:
    """Accumulate parameter gradients of a linear layer into persistent buffers.

    ``dW += X^T @ dY`` and ``db += sum(dY, axis=0)``; the gradient tensors are
    read (they accumulate) and written, mirroring PyTorch's grad accumulation.
    """
    device = _check_same_device(x, grad_output, grad_weight)
    m, k = x.shape
    n = grad_output.shape[1]
    cost = matmul_cost(k, m, n, itemsize=x.dtype.itemsize, name="linear_backward_weight")

    def compute_weight() -> np.ndarray:
        return grad_weight.numpy() + gemm(x.numpy().T, grad_output.numpy())

    launch(device, "linear_backward_weight", cost, [x, grad_output, grad_weight],
           grad_weight, compute=compute_weight)

    if grad_bias is not None:
        bias_cost = reduction_cost(m * n, itemsize=grad_output.dtype.itemsize,
                                   name="linear_backward_bias")

        def compute_bias() -> np.ndarray:
            return grad_bias.numpy() + grad_output.numpy().sum(axis=0)

        launch(device, "linear_backward_bias", bias_cost, [grad_output, grad_bias],
               grad_bias, compute=compute_bias)


# -- elementwise operators ----------------------------------------------------------------


def add(a: Tensor, b: Tensor, tag: str = "add_out",
        category: MemoryCategory = MemoryCategory.ACTIVATION) -> Tensor:
    """Elementwise sum of two same-shape tensors (used by residual connections)."""
    device = _check_same_device(a, b)
    if a.shape != b.shape:
        raise ShapeError(f"add shapes {a.shape} and {b.shape} differ")
    out = empty(device, a.shape, dtype=a.dtype, category=category, tag=tag)
    cost = elementwise_cost(a.numel, n_inputs=2, itemsize=a.dtype.itemsize, name="add")
    return launch(device, "add", cost, [a, b], out,
                  compute=lambda: a.numpy() + b.numpy())


def accumulate_(dst: Tensor, src: Tensor, op_name: str = "accumulate") -> Tensor:
    """In-place ``dst += src`` (gradient accumulation)."""
    device = _check_same_device(dst, src)
    if dst.shape != src.shape:
        raise ShapeError(f"accumulate shapes {dst.shape} and {src.shape} differ")
    cost = elementwise_cost(dst.numel, n_inputs=2, itemsize=dst.dtype.itemsize, name=op_name)
    return launch(device, op_name, cost, [dst, src], dst,
                  compute=lambda: dst.numpy() + src.numpy())


def scale(x: Tensor, alpha: float, tag: str = "scale_out",
          category: MemoryCategory = MemoryCategory.ACTIVATION) -> Tensor:
    """Elementwise multiplication by a scalar."""
    device = x.device
    out = empty(device, x.shape, dtype=x.dtype, category=category, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, itemsize=x.dtype.itemsize, name="scale")
    return launch(device, "scale", cost, [x], out, compute=lambda: x.numpy() * alpha)


def zero_(x: Tensor) -> Tensor:
    """In-place fill with zeros (``optimizer.zero_grad``)."""
    cost = elementwise_cost(x.numel, n_inputs=0, itemsize=x.dtype.itemsize, name="zero_")
    return launch(x.device, "zero_", cost, [], x,
                  compute=lambda: np.zeros(x.numel, dtype=x.dtype.numpy_dtype))


def relu_forward(x: Tensor, tag: str = "relu_out") -> Tensor:
    """Rectified linear unit."""
    device = x.device
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, itemsize=x.dtype.itemsize, name="relu")
    return launch(device, "relu_forward", cost, [x], out,
                  compute=lambda: np.maximum(x.numpy(), 0.0))


def relu_backward(grad_output: Tensor, output: Tensor, tag: str = "relu_grad_in") -> Tensor:
    """Gradient of ReLU, using the saved forward output as the mask."""
    device = _check_same_device(grad_output, output)
    out = empty(device, grad_output.shape, dtype=grad_output.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=2,
                            itemsize=grad_output.dtype.itemsize, name="relu_backward")
    return launch(device, "relu_backward", cost, [grad_output, output], out,
                  compute=lambda: grad_output.numpy() * (output.numpy() > 0))


def sigmoid_forward(x: Tensor, tag: str = "sigmoid_out") -> Tensor:
    """Logistic sigmoid."""
    device = x.device
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, flops_per_element=4.0,
                            itemsize=x.dtype.itemsize, name="sigmoid")
    return launch(device, "sigmoid_forward", cost, [x], out,
                  compute=lambda: 1.0 / (1.0 + np.exp(-x.numpy())))


def sigmoid_backward(grad_output: Tensor, output: Tensor, tag: str = "sigmoid_grad_in") -> Tensor:
    """Gradient of sigmoid using the saved output: ``dy * y * (1 - y)``."""
    device = _check_same_device(grad_output, output)
    out = empty(device, grad_output.shape, dtype=grad_output.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=2, flops_per_element=3.0,
                            itemsize=grad_output.dtype.itemsize, name="sigmoid_backward")

    def compute() -> np.ndarray:
        y = output.numpy()
        return grad_output.numpy() * y * (1.0 - y)

    return launch(device, "sigmoid_backward", cost, [grad_output, output], out, compute=compute)


def tanh_forward(x: Tensor, tag: str = "tanh_out") -> Tensor:
    """Hyperbolic tangent."""
    device = x.device
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, flops_per_element=4.0,
                            itemsize=x.dtype.itemsize, name="tanh")
    return launch(device, "tanh_forward", cost, [x], out, compute=lambda: np.tanh(x.numpy()))


def tanh_backward(grad_output: Tensor, output: Tensor, tag: str = "tanh_grad_in") -> Tensor:
    """Gradient of tanh using the saved output: ``dy * (1 - y^2)``."""
    device = _check_same_device(grad_output, output)
    out = empty(device, grad_output.shape, dtype=grad_output.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=2, flops_per_element=3.0,
                            itemsize=grad_output.dtype.itemsize, name="tanh_backward")

    def compute() -> np.ndarray:
        y = output.numpy()
        return grad_output.numpy() * (1.0 - y * y)

    return launch(device, "tanh_backward", cost, [grad_output, output], out, compute=compute)


def dropout_forward(x: Tensor, p: float, rng: np.random.Generator,
                    tag: str = "dropout_out") -> Tuple[Tensor, Tensor]:
    """Dropout with keep-probability ``1 - p``; returns (output, mask)."""
    if not 0.0 <= p < 1.0:
        raise ShapeError(f"dropout probability must be in [0, 1), got {p}")
    device = x.device
    mask = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION,
                 tag=f"{tag}_mask")
    mask_values = None
    if device.is_eager:
        mask_values = (rng.random(x.numel) >= p).astype(np.float32) / max(1e-8, (1.0 - p))
        mask.storage.set_buffer(mask_values)
    mask.storage.record_write("dropout_mask")
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=2, itemsize=x.dtype.itemsize, name="dropout")
    launch(device, "dropout_forward", cost, [x, mask], out,
           compute=lambda: x.numpy() * mask_values.reshape(x.shape))
    return out, mask


def dropout_backward(grad_output: Tensor, mask: Tensor, tag: str = "dropout_grad_in") -> Tensor:
    """Gradient of dropout: elementwise product with the saved mask."""
    device = _check_same_device(grad_output, mask)
    out = empty(device, grad_output.shape, dtype=grad_output.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=2,
                            itemsize=grad_output.dtype.itemsize, name="dropout_backward")
    return launch(device, "dropout_backward", cost, [grad_output, mask], out,
                  compute=lambda: grad_output.numpy() * mask.numpy())


# -- softmax and losses -------------------------------------------------------------------


def softmax(x: Tensor, tag: str = "softmax_out") -> Tensor:
    """Row-wise softmax of a 2-D tensor."""
    device = x.device
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, flops_per_element=5.0,
                            itemsize=x.dtype.itemsize, name="softmax")

    def compute() -> np.ndarray:
        logits = x.numpy()
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        return exp / exp.sum(axis=1, keepdims=True)

    return launch(device, "softmax", cost, [x], out, compute=compute)


def cross_entropy_forward(logits: Tensor, labels: Tensor) -> Tuple[Tensor, Tensor]:
    """Softmax cross-entropy loss; returns (scalar loss, saved probabilities)."""
    device = _check_same_device(logits, labels)
    probs = softmax(logits, tag="ce_probs")
    loss = empty(device, (1,), dtype=float32, category=MemoryCategory.ACTIVATION, tag="ce_loss")
    cost = reduction_cost(logits.numel, itemsize=logits.dtype.itemsize, name="cross_entropy")

    def compute() -> np.ndarray:
        probabilities = probs.numpy()
        targets = labels.numpy().astype(np.int64).reshape(-1)
        batch = probabilities.shape[0]
        # Upcast before clipping: in float16 the 1e-12 floor underflows to 0
        # and log(0) would leak -inf into the loss.
        picked = probabilities[np.arange(batch), targets].astype(np.float64)
        return np.array([-np.log(np.clip(picked, 1e-12, None)).mean()], dtype=np.float32)

    launch(device, "cross_entropy_forward", cost, [probs, labels], loss, compute=compute)
    return loss, probs


def cross_entropy_backward(probs: Tensor, labels: Tensor,
                           tag: str = "ce_grad_logits") -> Tensor:
    """Gradient of softmax cross-entropy w.r.t. the logits: ``(p - onehot) / N``."""
    device = _check_same_device(probs, labels)
    out = empty(device, probs.shape, dtype=probs.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(probs.numel, n_inputs=2, itemsize=probs.dtype.itemsize,
                            name="cross_entropy_backward")

    def compute() -> np.ndarray:
        probabilities = probs.numpy()
        targets = labels.numpy().astype(np.int64).reshape(-1)
        batch = probabilities.shape[0]
        grad = probabilities.copy()
        grad[np.arange(batch), targets] -= 1.0
        return grad / batch

    return launch(device, "cross_entropy_backward", cost, [probs, labels], out, compute=compute)


def mse_forward(prediction: Tensor, target: Tensor) -> Tensor:
    """Mean-squared-error loss between two same-shape tensors."""
    device = _check_same_device(prediction, target)
    if prediction.shape != target.shape:
        raise ShapeError(f"mse shapes {prediction.shape} and {target.shape} differ")
    loss = empty(device, (1,), dtype=float32, category=MemoryCategory.ACTIVATION, tag="mse_loss")
    cost = reduction_cost(prediction.numel, itemsize=prediction.dtype.itemsize, name="mse")

    def compute() -> np.ndarray:
        diff = prediction.numpy() - target.numpy()
        return np.array([float(np.mean(diff * diff))], dtype=np.float32)

    return launch(device, "mse_forward", cost, [prediction, target], loss, compute=compute)


def mse_backward(prediction: Tensor, target: Tensor, tag: str = "mse_grad") -> Tensor:
    """Gradient of MSE w.r.t. the prediction: ``2 (pred - target) / N``."""
    device = _check_same_device(prediction, target)
    out = empty(device, prediction.shape, dtype=prediction.dtype,
                category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(prediction.numel, n_inputs=2,
                            itemsize=prediction.dtype.itemsize, name="mse_backward")

    def compute() -> np.ndarray:
        return 2.0 * (prediction.numpy() - target.numpy()) / prediction.numel

    return launch(device, "mse_backward", cost, [prediction, target], out, compute=compute)


# -- optimizer update kernels ------------------------------------------------------------


def sgd_step(param: Tensor, grad: Tensor, momentum_buffer: Optional[Tensor],
             lr: float, momentum: float = 0.0, weight_decay: float = 0.0) -> None:
    """One SGD (optionally momentum) update, in-place on the parameter.

    Reads the parameter, its gradient and the momentum buffer (if any), and
    writes the parameter (and the momentum buffer), matching the memory
    behaviors of ``torch.optim.SGD``'s fused kernels.
    """
    device = _check_same_device(param, grad)
    inputs = [param, grad] + ([momentum_buffer] if momentum_buffer is not None else [])
    cost = elementwise_cost(param.numel, n_inputs=len(inputs), flops_per_element=4.0,
                            itemsize=param.dtype.itemsize, name="sgd_step")

    def compute_param() -> np.ndarray:
        values = param.numpy().reshape(-1)
        gradient = grad.numpy().reshape(-1)
        if weight_decay:
            gradient = gradient + weight_decay * values
        if momentum_buffer is not None and momentum:
            buf = momentum_buffer.numpy().reshape(-1)
            buf = momentum * buf + gradient
            momentum_buffer.storage.set_buffer(buf)
            update = buf
        else:
            update = gradient
        return values - lr * update

    launch(device, "sgd_step", cost, inputs, param, compute=compute_param)
    if momentum_buffer is not None:
        momentum_buffer.storage.record_write("sgd_step")


def adam_step(param: Tensor, grad: Tensor, exp_avg: Tensor, exp_avg_sq: Tensor,
              lr: float, beta1: float, beta2: float, eps: float, step: int,
              weight_decay: float = 0.0) -> None:
    """One Adam update, in-place on the parameter and its moment buffers."""
    device = _check_same_device(param, grad, exp_avg, exp_avg_sq)
    inputs = [param, grad, exp_avg, exp_avg_sq]
    cost = elementwise_cost(param.numel, n_inputs=len(inputs), flops_per_element=10.0,
                            itemsize=param.dtype.itemsize, name="adam_step")

    def compute_param() -> np.ndarray:
        values = param.numpy().reshape(-1)
        gradient = grad.numpy().reshape(-1)
        if weight_decay:
            gradient = gradient + weight_decay * values
        m = exp_avg.numpy().reshape(-1)
        v = exp_avg_sq.numpy().reshape(-1)
        m = beta1 * m + (1.0 - beta1) * gradient
        v = beta2 * v + (1.0 - beta2) * gradient * gradient
        exp_avg.storage.set_buffer(m)
        exp_avg_sq.storage.set_buffer(v)
        m_hat = m / (1.0 - beta1 ** step)
        v_hat = v / (1.0 - beta2 ** step)
        return values - lr * m_hat / (np.sqrt(v_hat) + eps)

    launch(device, "adam_step", cost, inputs, param, compute=compute_param)
    exp_avg.storage.record_write("adam_step")
    exp_avg_sq.storage.record_write("adam_step")
