"""Convolution, pooling and batch-normalization kernels.

The eager implementations use im2col/col2im on the host for numerical
correctness.  The simulated device additionally models a cuDNN-style
convolution *workspace*: a transient device buffer allocated right before the
kernel and freed right after it, capped at :data:`WORKSPACE_LIMIT_BYTES` (the
same 64 MiB default limit PyTorch passes to cuDNN).  Those short-lived
workspace blocks are part of the "intermediate results" the paper's breakdown
attributes most of the footprint to.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from ..core.events import MemoryCategory
from ..device.timing import KernelCost, conv2d_cost, elementwise_cost
from ..errors import ShapeError
from ..units import MIB
from .dtype import float32
from .functional import gemm, launch
from .im2col import (
    col2im,
    conv_output_hw,
    im2col,
    pool_col2im,
    pool_im2col,
    pool_output_hw,
)
from .tensor import Tensor, empty

#: cuDNN-style workspace cap; the modeled workspace never exceeds this.
WORKSPACE_LIMIT_BYTES = 64 * MIB


def _workspace_bytes(batch: int, channels: int, kernel_h: int, kernel_w: int,
                     out_h: int, out_w: int, itemsize: int) -> int:
    """Size of the modeled convolution workspace (im2col buffer, capped)."""
    full = batch * channels * kernel_h * kernel_w * out_h * out_w * itemsize
    return int(min(full, WORKSPACE_LIMIT_BYTES))


def _with_workspace(device, nbytes: int, op_name: str):
    """Allocate, touch and return a transient workspace tensor (or None)."""
    if nbytes <= 0:
        return None
    workspace = empty(device, (max(1, nbytes // 4),), dtype=float32,
                      category=MemoryCategory.WORKSPACE, tag=f"{op_name}_workspace")
    workspace.storage.record_write(op_name)
    return workspace


def conv2d_forward(x: Tensor, weight: Tensor, bias: Optional[Tensor],
                   stride: int, padding: int, tag: str = "conv_out") -> Tensor:
    """2-D convolution forward: ``(N, C, H, W) * (O, C, kh, kw) -> (N, O, oh, ow)``."""
    device = x.device
    if x.ndim != 4 or weight.ndim != 4:
        raise ShapeError(f"conv2d expects 4-D input/weight, got {x.shape} and {weight.shape}")
    batch, in_channels, height, width = x.shape
    out_channels, weight_in_channels, kernel_h, kernel_w = weight.shape
    if in_channels != weight_in_channels:
        raise ShapeError(
            f"conv2d channel mismatch: input has {in_channels}, weight expects {weight_in_channels}"
        )
    out_h, out_w = conv_output_hw(height, width, kernel_h, kernel_w, stride, padding)
    out = empty(device, (batch, out_channels, out_h, out_w), dtype=x.dtype,
                category=MemoryCategory.ACTIVATION, tag=tag)
    workspace = _with_workspace(
        device,
        _workspace_bytes(batch, in_channels, kernel_h, kernel_w, out_h, out_w,
                         x.dtype.itemsize),
        "conv2d_forward",
    )
    cost = conv2d_cost(batch, in_channels, out_channels, out_h, out_w, kernel_h, kernel_w,
                       itemsize=x.dtype.itemsize, name="conv2d_forward")
    inputs = [x, weight] + ([bias] if bias is not None else [])
    if workspace is not None:
        inputs.append(workspace)

    def compute() -> np.ndarray:
        cols = im2col(x.numpy(), kernel_h, kernel_w, stride, padding)
        flat_weight = weight.numpy().reshape(out_channels, -1)
        result = gemm(cols, flat_weight.T)
        if bias is not None:
            result = result + bias.numpy()[None, :]
        result = result.reshape(batch, out_h, out_w, out_channels).transpose(0, 3, 1, 2)
        return result

    launch(device, "conv2d_forward", cost, inputs, out, compute=compute)
    if workspace is not None:
        workspace.free()
    return out


def conv2d_backward_input(grad_output: Tensor, weight: Tensor,
                          x_shape: Tuple[int, int, int, int], stride: int,
                          padding: int, tag: str = "conv_grad_in") -> Tensor:
    """Gradient of a convolution w.r.t. its input."""
    device = grad_output.device
    batch, in_channels, height, width = x_shape
    out_channels, _, kernel_h, kernel_w = weight.shape
    out_h, out_w = conv_output_hw(height, width, kernel_h, kernel_w, stride, padding)
    grad_input = empty(device, x_shape, dtype=grad_output.dtype,
                       category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    workspace = _with_workspace(
        device,
        _workspace_bytes(batch, in_channels, kernel_h, kernel_w, out_h, out_w,
                         grad_output.dtype.itemsize),
        "conv2d_backward_input",
    )
    cost = conv2d_cost(batch, in_channels, out_channels, out_h, out_w, kernel_h, kernel_w,
                       itemsize=grad_output.dtype.itemsize, name="conv2d_backward_input")
    inputs = [grad_output, weight] + ([workspace] if workspace is not None else [])

    def compute() -> np.ndarray:
        flat_weight = weight.numpy().reshape(out_channels, -1)
        grad_cols = grad_output.numpy().transpose(0, 2, 3, 1).reshape(-1, out_channels)
        cols = gemm(grad_cols, flat_weight)
        return col2im(cols, x_shape, kernel_h, kernel_w, stride, padding)

    launch(device, "conv2d_backward_input", cost, inputs, grad_input, compute=compute)
    if workspace is not None:
        workspace.free()
    return grad_input


def conv2d_backward_params(x: Tensor, grad_output: Tensor, grad_weight: Tensor,
                           grad_bias: Optional[Tensor], stride: int, padding: int) -> None:
    """Accumulate convolution parameter gradients into persistent buffers."""
    device = x.device
    batch, in_channels, height, width = x.shape
    out_channels = grad_output.shape[1]
    _, _, kernel_h, kernel_w = grad_weight.shape
    out_h, out_w = conv_output_hw(height, width, kernel_h, kernel_w, stride, padding)
    workspace = _with_workspace(
        device,
        _workspace_bytes(batch, in_channels, kernel_h, kernel_w, out_h, out_w,
                         x.dtype.itemsize),
        "conv2d_backward_weight",
    )
    cost = conv2d_cost(batch, in_channels, out_channels, out_h, out_w, kernel_h, kernel_w,
                       itemsize=x.dtype.itemsize, name="conv2d_backward_weight")
    inputs = [x, grad_output, grad_weight] + ([workspace] if workspace is not None else [])

    def compute_weight() -> np.ndarray:
        cols = im2col(x.numpy(), kernel_h, kernel_w, stride, padding)
        grad_cols = grad_output.numpy().transpose(0, 2, 3, 1).reshape(-1, out_channels)
        grad_w = gemm(grad_cols.T, cols).reshape(grad_weight.shape)
        return grad_weight.numpy() + grad_w

    launch(device, "conv2d_backward_weight", cost, inputs, grad_weight, compute=compute_weight)
    if workspace is not None:
        workspace.free()

    if grad_bias is not None:
        bias_cost = elementwise_cost(grad_output.numel, n_inputs=2,
                                     itemsize=grad_output.dtype.itemsize,
                                     name="conv2d_backward_bias")

        def compute_bias() -> np.ndarray:
            return grad_bias.numpy() + grad_output.numpy().sum(axis=(0, 2, 3))

        launch(device, "conv2d_backward_bias", bias_cost, [grad_output, grad_bias],
               grad_bias, compute=compute_bias)


# -- pooling ---------------------------------------------------------------------------


def maxpool2d_forward(x: Tensor, kernel: int, stride: int, padding: int = 0,
                      tag: str = "maxpool_out") -> Tuple[Tensor, Tensor]:
    """Max pooling; returns (output, argmax indices saved for backward)."""
    device = x.device
    batch, channels, height, width = x.shape
    out_h, out_w = pool_output_hw(height, width, kernel, stride, padding)
    out = empty(device, (batch, channels, out_h, out_w), dtype=x.dtype,
                category=MemoryCategory.ACTIVATION, tag=tag)
    indices = empty(device, (batch, channels, out_h, out_w), dtype=x.dtype,
                    category=MemoryCategory.ACTIVATION, tag=f"{tag}_indices")
    cost = elementwise_cost(x.numel, n_inputs=1, itemsize=x.dtype.itemsize, name="maxpool2d")
    argmax_holder = {}

    def compute() -> np.ndarray:
        padded = x.numpy()
        if padding:
            padded = np.pad(padded, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                            mode="constant", constant_values=-np.inf)
        cols = pool_im2col(x.numpy(), kernel, stride, padding)
        argmax = cols.argmax(axis=1)
        argmax_holder["argmax"] = argmax
        return cols.max(axis=1).reshape(batch, channels, out_h, out_w)

    launch(device, "maxpool2d_forward", cost, [x], out, compute=compute)
    if device.is_eager:
        indices.storage.set_buffer(argmax_holder["argmax"].astype(np.float32))
    indices.storage.record_write("maxpool2d_forward")
    return out, indices


def maxpool2d_backward(grad_output: Tensor, indices: Tensor,
                       x_shape: Tuple[int, int, int, int], kernel: int, stride: int,
                       padding: int = 0, tag: str = "maxpool_grad_in") -> Tensor:
    """Gradient of max pooling: scatter gradients to the saved argmax positions."""
    device = grad_output.device
    grad_input = empty(device, x_shape, dtype=grad_output.dtype,
                       category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=2,
                            itemsize=grad_output.dtype.itemsize, name="maxpool2d_backward")

    def compute() -> np.ndarray:
        grads = grad_output.numpy().reshape(-1)
        argmax = indices.numpy().reshape(-1).astype(np.int64)
        cols = np.zeros((grads.size, kernel * kernel), dtype=grad_output.dtype.numpy_dtype)
        cols[np.arange(grads.size), argmax] = grads
        return pool_col2im(cols, x_shape, kernel, stride, padding)

    return launch(device, "maxpool2d_backward", cost, [grad_output, indices], grad_input,
                  compute=compute)


def avgpool2d_forward(x: Tensor, kernel: int, stride: int, padding: int = 0,
                      tag: str = "avgpool_out") -> Tensor:
    """Average pooling forward."""
    device = x.device
    batch, channels, height, width = x.shape
    out_h, out_w = pool_output_hw(height, width, kernel, stride, padding)
    out = empty(device, (batch, channels, out_h, out_w), dtype=x.dtype,
                category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, itemsize=x.dtype.itemsize, name="avgpool2d")

    def compute() -> np.ndarray:
        cols = pool_im2col(x.numpy(), kernel, stride, padding)
        return cols.mean(axis=1).reshape(batch, channels, out_h, out_w)

    return launch(device, "avgpool2d_forward", cost, [x], out, compute=compute)


def avgpool2d_backward(grad_output: Tensor, x_shape: Tuple[int, int, int, int],
                       kernel: int, stride: int, padding: int = 0,
                       tag: str = "avgpool_grad_in") -> Tensor:
    """Gradient of average pooling: spread each gradient uniformly over its window."""
    device = grad_output.device
    grad_input = empty(device, x_shape, dtype=grad_output.dtype,
                       category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(grad_output.numel, n_inputs=1,
                            itemsize=grad_output.dtype.itemsize, name="avgpool2d_backward")

    def compute() -> np.ndarray:
        grads = grad_output.numpy().reshape(-1)
        cols = np.repeat(grads[:, None] / (kernel * kernel), kernel * kernel, axis=1)
        return pool_col2im(cols, x_shape, kernel, stride, padding)

    return launch(device, "avgpool2d_backward", cost, [grad_output], grad_input,
                  compute=compute)


def global_avg_pool_forward(x: Tensor, tag: str = "gap_out") -> Tensor:
    """Global average pooling to a ``(N, C, 1, 1)`` map (ResNet's final pooling)."""
    device = x.device
    batch, channels = x.shape[0], x.shape[1]
    out = empty(device, (batch, channels, 1, 1), dtype=x.dtype,
                category=MemoryCategory.ACTIVATION, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=1, itemsize=x.dtype.itemsize,
                            name="global_avg_pool")
    return launch(device, "global_avg_pool_forward", cost, [x], out,
                  compute=lambda: x.numpy().mean(axis=(2, 3), keepdims=True))


def global_avg_pool_backward(grad_output: Tensor, x_shape: Tuple[int, int, int, int],
                             tag: str = "gap_grad_in") -> Tensor:
    """Gradient of global average pooling."""
    device = grad_output.device
    grad_input = empty(device, x_shape, dtype=grad_output.dtype,
                       category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    spatial = x_shape[2] * x_shape[3]
    cost = elementwise_cost(grad_input.numel, n_inputs=1,
                            itemsize=grad_output.dtype.itemsize, name="global_avg_pool_backward")

    def compute() -> np.ndarray:
        return np.broadcast_to(grad_output.numpy() / spatial, x_shape).copy()

    return launch(device, "global_avg_pool_backward", cost, [grad_output], grad_input,
                  compute=compute)


# -- batch normalization ----------------------------------------------------------------


def batchnorm2d_forward(x: Tensor, gamma: Tensor, beta: Tensor, running_mean: Tensor,
                        running_var: Tensor, momentum: float, eps: float, training: bool,
                        tag: str = "bn_out") -> Tuple[Tensor, Tensor, Tensor]:
    """Batch normalization over ``(N, H, W)`` per channel.

    Returns ``(output, save_mean, save_invstd)``; the saved statistics are
    needed by the backward pass and are part of the intermediate footprint.
    In training mode the running statistics are updated in place (read+write).
    """
    device = x.device
    channels = x.shape[1]
    out = empty(device, x.shape, dtype=x.dtype, category=MemoryCategory.ACTIVATION, tag=tag)
    save_mean = empty(device, (channels,), dtype=x.dtype,
                      category=MemoryCategory.ACTIVATION, tag=f"{tag}_mean")
    save_invstd = empty(device, (channels,), dtype=x.dtype,
                        category=MemoryCategory.ACTIVATION, tag=f"{tag}_invstd")
    cost = elementwise_cost(x.numel, n_inputs=2, flops_per_element=5.0,
                            itemsize=x.dtype.itemsize, name="batchnorm2d")
    stats_holder = {}

    def compute() -> np.ndarray:
        values = x.numpy()
        if training:
            mean = values.mean(axis=(0, 2, 3))
            var = values.var(axis=(0, 2, 3))
        else:
            mean = running_mean.numpy()
            var = running_var.numpy()
        invstd = 1.0 / np.sqrt(var + eps)
        stats_holder["mean"], stats_holder["invstd"] = mean, invstd
        stats_holder["var"] = var
        normalized = (values - mean[None, :, None, None]) * invstd[None, :, None, None]
        return normalized * gamma.numpy()[None, :, None, None] + beta.numpy()[None, :, None, None]

    launch(device, "batchnorm2d_forward", cost, [x, gamma, beta], out, compute=compute)
    if device.is_eager:
        save_mean.storage.set_buffer(stats_holder["mean"])
        save_invstd.storage.set_buffer(stats_holder["invstd"])
    save_mean.storage.record_write("batchnorm2d_forward")
    save_invstd.storage.record_write("batchnorm2d_forward")

    if training:
        running_mean.storage.record_read("batchnorm2d_forward")
        running_var.storage.record_read("batchnorm2d_forward")
        if device.is_eager:
            new_mean = (1 - momentum) * running_mean.numpy() + momentum * stats_holder["mean"]
            new_var = (1 - momentum) * running_var.numpy() + momentum * stats_holder["var"]
            running_mean.storage.set_buffer(new_mean)
            running_var.storage.set_buffer(new_var)
        running_mean.storage.record_write("batchnorm2d_forward")
        running_var.storage.record_write("batchnorm2d_forward")
    return out, save_mean, save_invstd


def batchnorm2d_backward(grad_output: Tensor, x: Tensor, gamma: Tensor, save_mean: Tensor,
                         save_invstd: Tensor, grad_gamma: Tensor, grad_beta: Tensor,
                         tag: str = "bn_grad_in") -> Tensor:
    """Gradient of batch normalization (training mode) w.r.t. input, gamma and beta."""
    device = grad_output.device
    grad_input = empty(device, x.shape, dtype=x.dtype,
                       category=MemoryCategory.ACTIVATION_GRADIENT, tag=tag)
    cost = elementwise_cost(x.numel, n_inputs=3, flops_per_element=8.0,
                            itemsize=x.dtype.itemsize, name="batchnorm2d_backward")
    holder = {}

    def compute() -> np.ndarray:
        dy = grad_output.numpy()
        values = x.numpy()
        mean = save_mean.numpy()[None, :, None, None]
        invstd = save_invstd.numpy()[None, :, None, None]
        g = gamma.numpy()[None, :, None, None]
        count = values.shape[0] * values.shape[2] * values.shape[3]
        x_hat = (values - mean) * invstd
        dgamma = (dy * x_hat).sum(axis=(0, 2, 3))
        dbeta = dy.sum(axis=(0, 2, 3))
        holder["dgamma"], holder["dbeta"] = dgamma, dbeta
        dxhat = dy * g
        dx = (invstd / count) * (
            count * dxhat
            - dxhat.sum(axis=(0, 2, 3), keepdims=True)
            - x_hat * (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        )
        return dx

    launch(device, "batchnorm2d_backward", cost,
           [grad_output, x, gamma, save_mean, save_invstd], grad_input, compute=compute)

    grad_gamma.storage.record_read("batchnorm2d_backward")
    grad_beta.storage.record_read("batchnorm2d_backward")
    if device.is_eager:
        grad_gamma.storage.set_buffer(grad_gamma.numpy() + holder["dgamma"])
        grad_beta.storage.set_buffer(grad_beta.numpy() + holder["dbeta"])
    grad_gamma.storage.record_write("batchnorm2d_backward")
    grad_beta.storage.record_write("batchnorm2d_backward")
    return grad_input
