"""The device tensor type.

A :class:`Tensor` is a shaped, typed view over one :class:`DeviceStorage`.
All tensors are contiguous; reshaping returns a new tensor sharing (and
retaining) the same storage, so no data movement and no new memory behavior
is generated — exactly like a PyTorch ``view``.

Tensors are the unit at which the training framework allocates and frees
device memory; every tensor creation produces a ``malloc`` behavior and every
release produces a ``free`` behavior in the trace.
"""

from __future__ import annotations

import math
from typing import Iterable, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.events import MemoryCategory
from ..device.device import Device
from ..errors import ShapeError, TensorError
from .dtype import DType, float32, from_numpy_dtype, int64
from .storage import DeviceStorage

ShapeLike = Union[int, Sequence[int]]


def _normalize_shape(shape: ShapeLike) -> Tuple[int, ...]:
    if isinstance(shape, (int, np.integer)):
        shape = (int(shape),)
    shape = tuple(int(dim) for dim in shape)
    for dim in shape:
        if dim < 0:
            raise ShapeError(f"negative dimension in shape {shape}")
    return shape


class Tensor:
    """A contiguous device tensor.

    Most users construct tensors through the factory helpers
    (:func:`empty`, :func:`zeros`, :func:`randn`, :func:`from_numpy`) or
    through the operators in :mod:`repro.tensor.functional`.
    """

    def __init__(
        self,
        device: Device,
        shape: ShapeLike,
        dtype: Optional[DType] = None,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
        storage: Optional[DeviceStorage] = None,
    ):
        if dtype is None:
            dtype = device.default_dtype
        self.device = device
        self.shape = _normalize_shape(shape)
        self.dtype = dtype
        self.category = category
        self.tag = tag
        if storage is None:
            storage = DeviceStorage(
                device, numel=int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1,
                dtype=dtype, category=category, tag=tag,
            )
        else:
            expected = int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1
            if storage.numel != expected:
                raise ShapeError(
                    f"storage of {storage.numel} elements cannot view shape {self.shape}"
                )
        self.storage = storage

    # -- basic properties -----------------------------------------------------------

    @property
    def ndim(self) -> int:
        """Number of dimensions."""
        return len(self.shape)

    @property
    def numel(self) -> int:
        """Number of elements."""
        return int(np.prod(self.shape, dtype=np.int64)) if self.shape else 1

    @property
    def nbytes(self) -> int:
        """Size in bytes of the underlying storage."""
        return self.storage.nbytes

    @property
    def is_freed(self) -> bool:
        """Whether the underlying device memory has been released."""
        return self.storage.is_freed

    @property
    def block_id(self) -> Optional[int]:
        """Identity of the device memory block backing this tensor."""
        return None if self.storage.block is None else self.storage.block.block_id

    # -- lifecycle --------------------------------------------------------------------

    def retain(self) -> "Tensor":
        """Add a reference to the underlying storage and return ``self``."""
        self.storage.retain()
        return self

    def release(self) -> None:
        """Drop one reference to the underlying storage (frees it at zero)."""
        self.storage.release()

    def free(self) -> None:
        """Force-release the underlying device memory immediately."""
        self.storage.free()

    # -- views ------------------------------------------------------------------------

    def reshape(self, shape: ShapeLike) -> "Tensor":
        """Return a tensor sharing this storage with a new shape (no data movement)."""
        new_shape = _normalize_shape(shape)
        if int(np.prod(new_shape, dtype=np.int64)) != self.numel:
            raise ShapeError(f"cannot reshape {self.shape} ({self.numel} elems) to {new_shape}")
        view = Tensor(self.device, new_shape, dtype=self.dtype, category=self.category,
                      tag=self.tag, storage=self.storage.retain())
        return view

    def flatten_batch(self) -> "Tensor":
        """View a ``(N, ...)`` tensor as ``(N, prod(...))`` (classifier input)."""
        if self.ndim < 2:
            raise ShapeError(f"flatten_batch needs at least 2 dims, got shape {self.shape}")
        return self.reshape((self.shape[0], self.numel // self.shape[0]))

    # -- host data access ---------------------------------------------------------------

    def numpy(self) -> np.ndarray:
        """Return a NumPy copy of the tensor values (eager mode only)."""
        return self.storage.buffer().reshape(self.shape).copy()

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        if self.numel != 1:
            raise TensorError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.storage.buffer().reshape(-1)[0])

    def set_data(self, values: np.ndarray, op: str = "set_data") -> "Tensor":
        """Overwrite the tensor contents on-device (records a write behavior)."""
        array = np.asarray(values)
        if array.size != self.numel:
            raise ShapeError(
                f"cannot set {array.size} values into tensor of shape {self.shape}"
            )
        self.storage.set_buffer(array.astype(self.dtype.numpy_dtype, copy=False))
        self.storage.record_write(op)
        return self

    def copy_from_host(self, values: np.ndarray, tag: str = "") -> "Tensor":
        """Stage host data onto the device: models a pinned H2D copy plus a write."""
        array = np.asarray(values)
        if array.size != self.numel:
            raise ShapeError(
                f"cannot copy {array.size} host values into tensor of shape {self.shape}"
            )
        self.device.copy_host_to_device(self.nbytes, tag=tag or self.tag or "h2d")
        self.storage.set_buffer(array.astype(self.dtype.numpy_dtype, copy=False))
        self.storage.record_write("memcpy_h2d")
        return self

    def copy_to_host(self, tag: str = "") -> Optional[np.ndarray]:
        """Read the tensor back to the host: models a D2H copy plus a read."""
        self.storage.record_read("memcpy_d2h")
        self.device.copy_device_to_host(self.nbytes, tag=tag or self.tag or "d2h")
        if self.storage.is_materialized:
            return self.numpy()
        return None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"Tensor(shape={self.shape}, dtype={self.dtype.name}, "
            f"category={self.category.value}, tag={self.tag!r})"
        )


# -- factory helpers ---------------------------------------------------------------------


def empty(device: Device, shape: ShapeLike, dtype: Optional[DType] = None,
          category: MemoryCategory = MemoryCategory.UNKNOWN, tag: str = "") -> Tensor:
    """Allocate an uninitialized tensor (``device.default_dtype`` when untyped)."""
    return Tensor(device, shape, dtype=dtype, category=category, tag=tag)


def zeros(device: Device, shape: ShapeLike, dtype: Optional[DType] = None,
          category: MemoryCategory = MemoryCategory.UNKNOWN, tag: str = "") -> Tensor:
    """Allocate a zero-filled tensor (records an on-device fill write)."""
    tensor = empty(device, shape, dtype=dtype, category=category, tag=tag)
    if tensor.storage.is_materialized:
        tensor.storage.set_buffer(np.zeros(tensor.numel, dtype=tensor.dtype.numpy_dtype))
    tensor.storage.record_write("fill_zero")
    return tensor


def full(device: Device, shape: ShapeLike, value: float, dtype: Optional[DType] = None,
         category: MemoryCategory = MemoryCategory.UNKNOWN, tag: str = "") -> Tensor:
    """Allocate a tensor filled with ``value``."""
    tensor = empty(device, shape, dtype=dtype, category=category, tag=tag)
    if tensor.storage.is_materialized:
        tensor.storage.set_buffer(
            np.full(tensor.numel, value, dtype=tensor.dtype.numpy_dtype))
    tensor.storage.record_write("fill_value")
    return tensor


def randn(device: Device, shape: ShapeLike, dtype: Optional[DType] = None,
          scale: float = 1.0,
          category: MemoryCategory = MemoryCategory.UNKNOWN, tag: str = "",
          rng: Optional[np.random.Generator] = None) -> Tensor:
    """Allocate a tensor of Gaussian values (records an on-device init write)."""
    tensor = empty(device, shape, dtype=dtype, category=category, tag=tag)
    if tensor.storage.is_materialized:
        generator = rng if rng is not None else np.random.default_rng()
        values = (generator.standard_normal(tensor.numel)
                  .astype(tensor.dtype.numpy_dtype) * scale)
        tensor.storage.set_buffer(values)
    tensor.storage.record_write("fill_randn")
    return tensor


def from_numpy(device: Device, array: np.ndarray,
               category: MemoryCategory = MemoryCategory.UNKNOWN, tag: str = "",
               stage_h2d: bool = False) -> Tensor:
    """Create a device tensor from a host array.

    With ``stage_h2d=True`` the creation also models the pinned host→device
    copy (used for input batches); otherwise the values are assumed to already
    be resident (used for test fixtures).
    """
    array = np.asarray(array)
    if array.dtype.kind == "f":
        # Floating host data is staged in the device's training precision so
        # that a float16 run really moves (and keeps) half-size batches.
        dtype = device.default_dtype
    else:
        dtype = from_numpy_dtype(array.dtype)
    tensor = empty(device, array.shape, dtype=dtype, category=category, tag=tag)
    if stage_h2d:
        tensor.copy_from_host(array, tag=tag)
    else:
        if tensor.storage.is_materialized:
            tensor.storage.set_buffer(array.astype(dtype.numpy_dtype, copy=False))
        tensor.storage.record_write("init_from_host")
    return tensor


def arange_labels(device: Device, batch: int, num_classes: int,
                  tag: str = "labels", rng: Optional[np.random.Generator] = None) -> Tensor:
    """Create an integer label tensor (one label per sample), for test workloads."""
    generator = rng if rng is not None else np.random.default_rng()
    values = generator.integers(0, num_classes, size=batch)
    tensor = empty(device, (batch,), dtype=int64, category=MemoryCategory.LABEL, tag=tag)
    if tensor.storage.is_materialized:
        tensor.storage.set_buffer(values.astype(np.int64))
    tensor.storage.record_write("init_labels")
    return tensor
