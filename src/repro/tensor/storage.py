"""Device tensor storage backed by the instrumented allocator.

A :class:`DeviceStorage` owns exactly one device memory block.  Creating a
storage performs a ``malloc`` on the device allocator, releasing it performs
a ``free``, and every kernel that touches the storage reports a ``read`` or
``write`` — the four memory behaviors the paper records.

In *eager* execution the storage also owns a NumPy buffer holding the actual
values; in *symbolic* execution (legacy name: *virtual*) the buffer is
omitted and only the memory behavior (allocation, accesses, timing) is
simulated.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import MemoryCategory
from ..device.device import Device
from ..device.memory import Block
from ..errors import MaterializationError, TensorError
from .dtype import DType, float32


class DeviceStorage:
    """A reference-counted slab of device memory holding tensor elements."""

    def __init__(
        self,
        device: Device,
        numel: int,
        dtype: DType = float32,
        category: MemoryCategory = MemoryCategory.UNKNOWN,
        tag: str = "",
    ):
        if numel < 0:
            raise TensorError(f"storage cannot have negative numel {numel}")
        self.device = device
        self.numel = int(numel)
        self.dtype = dtype
        self.nbytes = self.numel * dtype.itemsize
        self.category = category
        self.tag = tag
        self.block: Optional[Block] = device.allocate(
            max(self.nbytes, 1), category=category, tag=tag
        )
        self._buffer: Optional[np.ndarray] = None
        if device.is_eager:
            self._buffer = np.zeros(self.numel, dtype=dtype.numpy_dtype)
        self._refcount = 1

    # -- lifecycle ---------------------------------------------------------------

    @property
    def is_freed(self) -> bool:
        """Whether the underlying device block has been released."""
        return self.block is None

    def retain(self) -> "DeviceStorage":
        """Increase the reference count (a new tensor view shares this storage)."""
        self._ensure_live()
        self._refcount += 1
        return self

    def release(self) -> None:
        """Decrease the reference count; frees the device block at zero."""
        if self.is_freed:
            return
        self._refcount -= 1
        if self._refcount <= 0:
            self.free()

    def free(self) -> None:
        """Immediately release the device block (idempotent)."""
        if self.block is not None:
            self.device.free(self.block)
            self.block = None
            self._buffer = None

    def _ensure_live(self) -> None:
        if self.block is None:
            raise TensorError(f"storage {self.tag!r} has already been freed")

    # -- instrumented access -------------------------------------------------------

    def record_read(self, op: str, nbytes: Optional[int] = None) -> None:
        """Report a read of this storage by operator ``op``."""
        self._ensure_live()
        self.device.notify_read(self.block, nbytes if nbytes is not None else self.nbytes, op)

    def record_write(self, op: str, nbytes: Optional[int] = None) -> None:
        """Report a write of this storage by operator ``op``."""
        self._ensure_live()
        self.device.notify_write(self.block, nbytes if nbytes is not None else self.nbytes, op)

    # -- data access (eager mode only) ----------------------------------------------

    @property
    def is_materialized(self) -> bool:
        """Whether a NumPy buffer with actual values exists."""
        return self._buffer is not None

    def buffer(self) -> np.ndarray:
        """The flat NumPy buffer; raises if the storage is virtual or freed."""
        self._ensure_live()
        if self._buffer is None:
            raise MaterializationError(
                f"storage {self.tag!r} is symbolic (execution_mode="
                f"{self.device.execution_mode!r}); numeric values are not "
                "available — rerun with execution_mode='eager'"
            )
        return self._buffer

    def set_buffer(self, values: np.ndarray) -> None:
        """Replace the buffer contents (eager mode only)."""
        self._ensure_live()
        if self._buffer is None:
            return  # virtual storages silently drop values
        flat = np.asarray(values, dtype=self.dtype.numpy_dtype).reshape(-1)
        if flat.size != self.numel:
            raise TensorError(
                f"buffer of {flat.size} elements does not match storage numel {self.numel}"
            )
        self._buffer = flat.copy()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        state = "freed" if self.is_freed else ("eager" if self.is_materialized else "symbolic")
        return (
            f"DeviceStorage(numel={self.numel}, dtype={self.dtype.name}, "
            f"category={self.category.value}, tag={self.tag!r}, {state})"
        )
