"""Device tensor library: dtypes, storages, tensors and operator kernels."""

from . import conv_ops, functional
from .dtype import (
    DType,
    all_dtypes,
    bool_,
    float16,
    float32,
    float64,
    from_numpy_dtype,
    get_dtype,
    int32,
    int64,
    uint8,
)
from .storage import DeviceStorage
from .tensor import (
    Tensor,
    arange_labels,
    empty,
    from_numpy,
    full,
    randn,
    zeros,
)

__all__ = [
    "DType",
    "DeviceStorage",
    "Tensor",
    "all_dtypes",
    "arange_labels",
    "bool_",
    "conv_ops",
    "empty",
    "float16",
    "float32",
    "float64",
    "from_numpy",
    "from_numpy_dtype",
    "full",
    "functional",
    "get_dtype",
    "int32",
    "int64",
    "randn",
    "uint8",
    "zeros",
]
