"""Data types supported by the device tensor library."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DTypeError


@dataclass(frozen=True)
class DType:
    """A tensor element type: a name, an element size and a NumPy equivalent."""

    name: str
    itemsize: int
    numpy_dtype: np.dtype

    def __repr__(self) -> str:
        return f"repro.{self.name}"


float32 = DType("float32", 4, np.dtype(np.float32))
float16 = DType("float16", 2, np.dtype(np.float16))
float64 = DType("float64", 8, np.dtype(np.float64))
int64 = DType("int64", 8, np.dtype(np.int64))
int32 = DType("int32", 4, np.dtype(np.int32))
uint8 = DType("uint8", 1, np.dtype(np.uint8))
bool_ = DType("bool", 1, np.dtype(np.bool_))

_DTYPES = {
    "float32": float32,
    "float16": float16,
    "float64": float64,
    "int64": int64,
    "int32": int32,
    "uint8": uint8,
    "bool": bool_,
}


def get_dtype(name: str) -> DType:
    """Look up a dtype by name; raises :class:`~repro.errors.DTypeError` if unknown."""
    try:
        return _DTYPES[name]
    except KeyError:
        known = ", ".join(sorted(_DTYPES))
        raise DTypeError(f"unknown dtype '{name}'; known dtypes: {known}") from None


def from_numpy_dtype(np_dtype: np.dtype) -> DType:
    """Map a NumPy dtype back to the library dtype."""
    np_dtype = np.dtype(np_dtype)
    for dtype in _DTYPES.values():
        if dtype.numpy_dtype == np_dtype:
            return dtype
    raise DTypeError(f"unsupported numpy dtype {np_dtype}")


def all_dtypes() -> tuple:
    """All registered dtypes (useful for property-based tests)."""
    return tuple(_DTYPES.values())
