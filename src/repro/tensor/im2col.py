"""NumPy im2col/col2im helpers used by the eager convolution kernels.

These are host-side numerical helpers only; they do not touch the simulated
device.  Shape arithmetic (:func:`conv_output_hw`, :func:`pool_output_hw`) is
shared with the virtual execution path so that virtual and eager runs allocate
identical tensors.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..errors import ShapeError


def conv_output_hw(height: int, width: int, kernel_h: int, kernel_w: int,
                   stride: int, padding: int) -> Tuple[int, int]:
    """Output spatial size of a convolution with square stride/padding."""
    out_h = (height + 2 * padding - kernel_h) // stride + 1
    out_w = (width + 2 * padding - kernel_w) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ShapeError(
            f"convolution of {height}x{width} input with kernel {kernel_h}x{kernel_w}, "
            f"stride {stride}, padding {padding} produces empty output"
        )
    return out_h, out_w


def pool_output_hw(height: int, width: int, kernel: int, stride: int,
                   padding: int = 0) -> Tuple[int, int]:
    """Output spatial size of a pooling window (same formula as convolution)."""
    return conv_output_hw(height, width, kernel, kernel, stride, padding)


def im2col(x: np.ndarray, kernel_h: int, kernel_w: int, stride: int,
           padding: int) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into ``(N * out_h * out_w, C * kernel_h * kernel_w)``.

    Column ordering matches a ``(C, kh, kw)`` flattening of the filter, so a
    convolution becomes ``cols @ weight.reshape(out_c, -1).T``.
    """
    batch, channels, height, width = x.shape
    out_h, out_w = conv_output_hw(height, width, kernel_h, kernel_w, stride, padding)
    if padding > 0:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                   mode="constant")
    cols = np.empty((batch, channels, kernel_h, kernel_w, out_h, out_w), dtype=x.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            cols[:, :, i, j, :, :] = x[:, :, i:i_end:stride, j:j_end:stride]
    cols = cols.transpose(0, 4, 5, 1, 2, 3).reshape(
        batch * out_h * out_w, channels * kernel_h * kernel_w
    )
    return cols


def col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel_h: int,
           kernel_w: int, stride: int, padding: int) -> np.ndarray:
    """Fold columns produced by :func:`im2col` back into an ``(N, C, H, W)`` array.

    Overlapping positions are summed, which is exactly the adjoint operation
    needed by the convolution input-gradient.
    """
    batch, channels, height, width = x_shape
    out_h, out_w = conv_output_hw(height, width, kernel_h, kernel_w, stride, padding)
    cols = cols.reshape(batch, out_h, out_w, channels, kernel_h, kernel_w)
    cols = cols.transpose(0, 3, 4, 5, 1, 2)
    padded_h, padded_w = height + 2 * padding, width + 2 * padding
    x = np.zeros((batch, channels, padded_h, padded_w), dtype=cols.dtype)
    for i in range(kernel_h):
        i_end = i + stride * out_h
        for j in range(kernel_w):
            j_end = j + stride * out_w
            x[:, :, i:i_end:stride, j:j_end:stride] += cols[:, :, i, j, :, :]
    if padding > 0:
        x = x[:, :, padding:padding + height, padding:padding + width]
    return x


def pool_im2col(x: np.ndarray, kernel: int, stride: int,
                padding: int = 0) -> np.ndarray:
    """Unfold ``(N, C, H, W)`` into pooling windows ``(N * C * out_h * out_w, kernel^2)``."""
    batch, channels, height, width = x.shape
    merged = x.reshape(batch * channels, 1, height, width)
    cols = im2col(merged, kernel, kernel, stride, padding)
    return cols


def pool_col2im(cols: np.ndarray, x_shape: Tuple[int, int, int, int], kernel: int,
                stride: int, padding: int = 0) -> np.ndarray:
    """Fold pooling windows back to the input shape, summing overlaps."""
    batch, channels, height, width = x_shape
    folded = col2im(cols, (batch * channels, 1, height, width), kernel, kernel,
                    stride, padding)
    return folded.reshape(batch, channels, height, width)
