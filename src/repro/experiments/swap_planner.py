"""Experiment E10 — the paper's future work: an automatic swap cost model.

Section IV of the paper announces "an automatic cost model to sift out these
memory access behaviors to reduce the device memory pressure during
training".  This experiment runs the :class:`~repro.core.swap.SwapPlanner`
on the recorded MLP trace and compares it against two reference policies
inspired by the works the paper cites: a SwapAdvisor-style policy (swap the
largest tensors regardless of timing) and a ZeRO-Offload-style policy
(offload all optimizer state and gradients).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..baselines.swapping import (
    SwapPolicyResult,
    swap_advisor_style_policy,
    zero_offload_style_policy,
)
from ..core.ati import AccessInterval, compute_access_intervals
from ..core.swap import BandwidthConfig, SwapPlan, SwapPlanner
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from .configs import paper_mlp_config


@dataclass
class SwapPlannerResult:
    """The planner's plan plus the two reference policies on the same trace."""

    session: SessionResult
    plan: SwapPlan
    swap_advisor_baseline: SwapPolicyResult
    zero_offload_baseline: SwapPolicyResult

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "workload": self.session.label,
            "planner": self.plan.summary(),
            "swap_advisor_style": self.swap_advisor_baseline.summary(),
            "zero_offload_style": self.zero_offload_baseline.summary(),
        }


def run_swap_planner(config: Optional[TrainingRunConfig] = None,
                     session: Optional[SessionResult] = None,
                     bandwidths: Optional[BandwidthConfig] = None,
                     allow_overhead_ns: float = 0.0) -> SwapPlannerResult:
    """Plan swapping on the MLP trace and evaluate the reference policies."""
    if session is None:
        config = config if config is not None else paper_mlp_config()
        session = run_training_session(config)
    bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
    intervals = compute_access_intervals(session.trace)
    planner = SwapPlanner(bandwidths=bandwidths, allow_overhead_ns=allow_overhead_ns)
    plan = planner.plan(session.trace, intervals)
    return SwapPlannerResult(
        session=session,
        plan=plan,
        swap_advisor_baseline=swap_advisor_style_policy(session.trace, bandwidths),
        zero_offload_baseline=zero_offload_style_policy(session.trace, bandwidths),
    )
