"""Template store: a JSON manifest over content-addressed template files.

The replay engine persists one ``.npz`` per :class:`TemplateFamily`, named
by the family's structural key (a content hash of the dtype-free config
fingerprint).  This module fronts that directory with a small manifest,
``index.json``, giving the three properties a shared pool needs:

* **O(1) lookup** — the manifest maps key → file without globbing the
  directory, and records which dtypes each family has captured so a caller
  can tell a miss from a family that merely lacks the requested variant.
* **LRU bound** — every publish and load bumps a monotonically increasing
  sequence number; when the pool exceeds ``max_entries`` the
  least-recently-used families are deleted, so long-lived sweep services do
  not grow the template directory without bound.
* **Atomic publish** — both the ``.npz`` (see
  :func:`~repro.experiments.replay.save_family`) and the manifest are
  written to pid-unique temp files and published with ``os.replace``, so
  parallel sweep workers sharing one cache directory never read a torn
  file.  The manifest is advisory: :meth:`load` falls back to probing the
  directory directly, so a stale or missing index degrades to the pre-index
  behavior instead of hiding templates.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Optional

from .replay import TemplateFamily, load_family, save_family

#: Manifest file name inside the template directory.
INDEX_NAME = "index.json"

#: Version of the manifest layout; bump to discard stale manifests (the
#: ``.npz`` files themselves carry their own schema version).
STORE_SCHEMA_VERSION = 1

#: Default LRU bound on stored families.
DEFAULT_MAX_ENTRIES = 64


#: Subdirectory holding corrupt ``.npz`` files moved aside by :meth:`TemplateStore.load`.
QUARANTINE_DIR = "quarantine"


class TemplateStore:
    """Directory of persisted template families with a manifest index.

    ``fault_plan`` threads the deterministic fault-injection harness in:
    a ``template_corrupt`` spec overwrites a family's just-published ``.npz``
    with garbage, exercising the quarantine path the next load takes.
    """

    def __init__(self, root: Path, max_entries: int = DEFAULT_MAX_ENTRIES,
                 fault_plan=None):
        self.root = Path(root)
        self.max_entries = max_entries
        self.fault_plan = fault_plan
        #: Corrupt archives moved into ``quarantine/`` by this store instance.
        self.quarantined = 0

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt archive aside (evidence preserved, never re-parsed)."""
        try:
            quarantine = self.root / QUARANTINE_DIR
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    @property
    def index_path(self) -> Path:
        """Path of the JSON manifest inside the store directory."""
        return self.root / INDEX_NAME

    def path_for(self, key: str) -> Path:
        """Content-addressed archive path for a family key."""
        return self.root / f"{key}.npz"

    # -- manifest ----------------------------------------------------------------

    def read_index(self) -> dict:
        """The manifest, or a fresh empty one when absent/corrupt/stale."""
        try:
            raw = json.loads(self.index_path.read_text(encoding="utf-8"))
            if raw.get("schema") != STORE_SCHEMA_VERSION:
                raise ValueError("stale manifest schema")
            if not isinstance(raw.get("entries"), dict):
                raise ValueError("malformed manifest")
            raw["next_seq"] = int(raw.get("next_seq", 0))
            return raw
        except Exception:
            return {"schema": STORE_SCHEMA_VERSION, "entries": {}, "next_seq": 0}

    def _write_index(self, index: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / f".{INDEX_NAME}.{os.getpid()}.tmp"
        tmp.write_text(json.dumps(index, indent=2, sort_keys=True),
                       encoding="utf-8")
        os.replace(tmp, self.index_path)

    def _touch(self, index: dict, key: str, entry: Dict) -> None:
        entry["seq"] = index["next_seq"]
        index["next_seq"] += 1
        index["entries"][key] = entry

    # -- lookup / load / publish -------------------------------------------------

    def lookup(self, key: str) -> Optional[Dict]:
        """The manifest entry for ``key`` (falls back to a directory probe).

        Returns ``None`` when the family is not stored; a probe hit outside
        the manifest is reported as a minimal entry so callers can still
        :meth:`load` it.
        """
        entry = self.read_index()["entries"].get(key)
        if entry is not None:
            return dict(entry)
        path = self.path_for(key)
        if path.is_file():
            return {"file": path.name, "bytes": path.stat().st_size,
                    "dtypes": [], "seq": -1}
        return None

    def load(self, key: str) -> Optional[TemplateFamily]:
        """Load and LRU-touch the stored family for ``key`` (``None`` on miss).

        Corrupt or key-mismatched files are treated as misses so the caller
        recompiles instead of failing — but the bad bytes are *quarantined*
        (moved into ``quarantine/`` and tallied on :attr:`quarantined`), not
        silently recompiled over, and the manifest entry is dropped.
        """
        path = self.path_for(key)
        if not path.is_file():
            return None
        family = load_family(path, key=key)
        index = self.read_index()
        if family is None:
            self._quarantine(path)
            if index["entries"].pop(key, None) is not None:
                self._write_index(index)
            return None
        entry = index["entries"].get(key) or self._entry_for(path, family)
        self._touch(index, key, entry)
        self._write_index(index)
        return family

    def publish(self, family: TemplateFamily) -> Path:
        """Atomically persist ``family`` and update the manifest (with LRU).

        Returns the published ``.npz`` path.
        """
        path = self.path_for(family.key)
        save_family(family, path)
        if self.fault_plan is not None:
            self.fault_plan.corrupt_artifact("template_corrupt", family.key, path)
        index = self.read_index()
        self._touch(index, family.key, self._entry_for(path, family))
        entries = index["entries"]
        while self.max_entries is not None and len(entries) > self.max_entries:
            victim = min(entries, key=lambda k: entries[k].get("seq", -1))
            victim_entry = entries.pop(victim)
            try:
                (self.root / victim_entry.get("file", f"{victim}.npz")).unlink()
            except OSError:
                pass
        self._write_index(index)
        return path

    def _entry_for(self, path: Path, family: TemplateFamily) -> Dict:
        return {
            "file": path.name,
            "bytes": int(path.stat().st_size),
            "dtypes": family.captured_dtypes(),
            "seq": -1,
        }

    def keys(self) -> Dict[str, Dict]:
        """All manifest entries (key → entry), for inspection/tests."""
        return dict(self.read_index()["entries"])
