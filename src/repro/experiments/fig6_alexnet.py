"""Experiment E7 — Figure 6: AlexNet breakdown versus batch size (CIFAR-100).

The paper's observation: as the batch size grows, intermediate results
gradually dominate the device memory consumption, the share of parameters
shrinks and the share of input data grows slightly.  This experiment sweeps
the batch size for AlexNet on CIFAR-100-shaped data and reports the breakdown
at every point.

The sweep itself runs through the scenario-sweep engine
(:mod:`repro.experiments.sweep`), so it shares result caching and process
parallelism with ``repro sweep``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.breakdown import BreakdownSeries
from .configs import breakdown_config
from .sweep import Scenario, SweepRunner

#: Batch sizes swept by default (the paper sweeps batch size on a log-ish grid).
DEFAULT_FIG6_BATCH_SIZES = (32, 64, 128, 256, 512, 1024)


@dataclass
class Fig6Result:
    """Breakdown-vs-batch-size series for AlexNet."""

    series: BreakdownSeries
    model: str
    dataset: str
    input_size: int

    def rows(self) -> List[Dict[str, object]]:
        """One row per batch size with the bucket fractions."""
        return self.series.fractions_table()

    def intermediates_grow_with_batch(self) -> bool:
        """The paper's claim: the intermediate share grows with batch size."""
        return self.series.is_monotonic_increasing("intermediate results")

    def parameters_shrink_with_batch(self) -> bool:
        """The paper's claim: the parameter share weakens with batch size."""
        return self.series.is_monotonic_decreasing("parameters")

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "model": self.model,
            "dataset": self.dataset,
            "input_size": self.input_size,
            "intermediates_grow_with_batch": self.intermediates_grow_with_batch(),
            "parameters_shrink_with_batch": self.parameters_shrink_with_batch(),
            "rows": self.rows(),
        }


def fig6_scenarios(batch_sizes: Sequence[int] = DEFAULT_FIG6_BATCH_SIZES,
                   model: str = "alexnet", dataset: str = "cifar100",
                   input_size: int = 32, num_classes: int = 100) -> List[Scenario]:
    """The concrete sweep points behind Figure 6 (one per batch size)."""
    scenarios = []
    for batch_size in batch_sizes:
        config = breakdown_config(model=model, dataset=dataset, batch_size=batch_size,
                                  input_size=input_size, num_classes=num_classes)
        config.label = f"{model}-batch{batch_size}"
        scenarios.append(Scenario(config=config))
    return scenarios


def run_fig6(batch_sizes: Sequence[int] = DEFAULT_FIG6_BATCH_SIZES,
             model: str = "alexnet", dataset: str = "cifar100",
             input_size: int = 32, num_classes: int = 100,
             runner: Optional[SweepRunner] = None) -> Fig6Result:
    """Sweep the batch size for AlexNet (or another registered model).

    ``runner`` (defaulting to a serial, uncached :class:`SweepRunner`)
    controls caching and parallelism — pass one with a ``cache_dir`` and
    ``workers`` to reuse previous figure runs.
    """
    runner = runner if runner is not None else SweepRunner()
    sweep = runner.run(fig6_scenarios(batch_sizes, model=model, dataset=dataset,
                                      input_size=input_size, num_classes=num_classes))
    series = BreakdownSeries(parameter_name="batch_size")
    for batch_size, result in zip(batch_sizes, sweep.results):
        series.add(batch_size, result.occupation())
    return Fig6Result(series=series, model=model, dataset=dataset, input_size=input_size)
