"""Scenario-sweep subsystem: declarative grids, parallel execution, caching.

The paper's methodology is a *characterization*: the same instrumented
training loop is run across models, batch sizes, allocators and devices, and
each run is reduced to a handful of numbers (peak memory, ATI distribution,
swappable fraction, occupation breakdown, step time).  This module makes that
sweep a first-class operation:

* :class:`SweepGrid` declares the cross product of scenario dimensions and
  expands it into concrete :class:`Scenario` objects (a
  :class:`~repro.train.session.TrainingRunConfig` plus a swap policy);
* :func:`run_scenario` executes one scenario and reduces its trace to a
  JSON-serializable :class:`ScenarioResult` (the per-scenario *metrics*, not
  the multi-megabyte trace);
* :class:`SweepRunner` executes many scenarios across a
  ``ProcessPoolExecutor`` with a content-addressed on-disk cache — a repeat
  sweep is served from JSON files in milliseconds;
* :class:`SweepResult` aggregates the scenario results into a tidy summary
  table and into the :class:`~repro.core.breakdown.BreakdownSeries` the
  figure experiments consume.

The figure experiments (``fig6_alexnet``, ``fig7_resnet``), the ablations
and the report generator (``repro report``) are thin wrappers over this
engine, so ``repro sweep`` on the command line, the benchmarks and the tests
all share one execution path.

Sweep axes
----------
``models x batch_sizes x iterations x allocators x device_specs x dtypes x
n_devices x interconnects x swaps x device_memory_capacities x
host_dispatch_overheads_ns x seeds x swap_policies``.  The ``swaps`` axis
turns the closed-loop swap-execution engine (:mod:`repro.swap`) on inside
each scenario (``off``, ``planner``, ``swap_advisor``, ``zero_offload``,
``lru``, ``unified``) — results then carry the engine's measured stall/peak
numbers next to the policy's predictions.  The ``device_memory_capacities``
axis runs each scenario under a hard capacity: with the swap engine on, the
executor's capacity governor enforces it (forced evictions with stall
accounting, a structured :class:`~repro.errors.InfeasibleScenarioError`
when infeasible); with swap off, the allocator itself is shrunk and OOMs
raw — together they trace a feasibility frontier.
The policy axis is backed by the :mod:`repro.baselines`
registry (swapping variants, recomputation, parameter compression); the
dtype axis sets the device's default training precision; the device axis
also selects the Eq.-1 bandwidths unless the runner overrides them
explicitly.  The ``n_devices`` and ``interconnects`` axes make each
scenario a data-parallel cluster (batch sharded across replicas, gradient
allreduce on the named interconnect before every optimizer step); results
then report *per-replica* peaks plus the collective summary.

Per-scenario reduction runs on the trace's column store
(:meth:`~repro.core.trace.MemoryTrace.columns`): ATI pairing via
:func:`~repro.core.ati.compute_interval_arrays`, Eq.-1 screening via
:func:`~repro.core.swap.swappable_fraction` over the interval arrays, and
the occupation breakdown via the vectorized
:func:`~repro.core.breakdown.occupation_breakdown` — the multi-megabyte
Python event objects never cross the process-pool boundary, only the
reduced :class:`ScenarioResult`.

Cache layout
------------
``<cache_dir>/<sha256(fingerprint)>.json`` where the fingerprint is the
canonical JSON of the scenario's configuration plus
:data:`RESULT_SCHEMA_VERSION`.  Bumping the schema version (or changing any
config field) invalidates stale entries by construction; nothing is ever
deleted except by ``repro sweep --clear-cache``.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
import traceback as traceback_module
import weakref
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..baselines.policy import available_policies, get_policy
from ..swap.policies import EXECUTION_POLICIES, SWAP_OFF
from ..core.ati import compute_interval_arrays, summarize_values_us
from ..core.breakdown import BreakdownSeries, OccupationBreakdown, occupation_breakdown
from ..core.fragmentation import analyze_fragmentation
from ..core.swap import BandwidthConfig, swappable_fraction
from ..errors import (ConfigurationError, InfeasibleScenarioError,
                      InjectedFaultError, OutOfMemoryError, ReproError,
                      ScenarioTimeoutError, SweepFaultError)
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from ..units import MIB
from .faults import FaultPlan
from .journal import RunJournal

#: Version of the cached result schema; bump to invalidate every cache entry.
#: v2: policies generalized to the baselines registry, dtype axis added.
#: v3: data-parallel axes (n_devices, interconnect), collective summaries,
#:     fp32 master weights under half-precision training.
#: v4: symbolic execution mode is the sweep default (legacy name "virtual"),
#:     columnar recorder, per-scenario wall time in the summary table.
#: v5: closed-loop swap execution (the ``swaps`` axis / ``--swap`` flag):
#:     scenarios can run the repro.swap engine and results carry the
#:     measured-vs-predicted swap_execution summary.
#: v6: trace-template replay (``--execution replay``): replayed results are
#:     pinned bit-identical to fresh symbolic runs and share their cache
#:     entries; the bump guards against any pre-replay entry produced while
#:     the per-scenario reduction was being factored out.
#: v7: unified keep/swap/recompute policy and real capacity pressure:
#:     ``device_memory_capacity`` became the ``device_memory_capacities``
#:     sweep axis, scenario identities carry the capacity, and swap-execution
#:     summaries gained recompute/pressure counters.
RESULT_SCHEMA_VERSION = 7

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE"

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = Path(".repro_cache") / "sweeps"

#: Policies a scenario can be evaluated under (the baselines registry: the
#: historical name is kept although the axis now spans swapping, recompute
#: and parameter-compression baselines).
SWAP_POLICIES = available_policies()

#: Modes of the closed-loop swap-execution axis: ``off`` plus the executable
#: policy registry of :mod:`repro.swap` (the ``--swap`` CLI flag).
SWAP_EXECUTION_MODES = (SWAP_OFF,) + tuple(EXECUTION_POLICIES)


def default_cache_dir() -> Path:
    """The cache directory (``$REPRO_SWEEP_CACHE`` or ``.repro_cache/sweeps``)."""
    override = os.environ.get(CACHE_DIR_ENV)
    return Path(override) if override else DEFAULT_CACHE_DIR


# -- scenarios ------------------------------------------------------------------------


@dataclass
class Scenario:
    """One concrete sweep point: a training configuration plus a swap policy."""

    config: TrainingRunConfig
    swap_policy: str = "none"
    #: Route this scenario through the replay engine (``--execution replay``).
    #: Excluded from the fingerprint: replay is pinned bit-identical to a
    #: fresh symbolic run, so both share one cache entry.
    via_replay: bool = False

    def resolve_bandwidths(self,
                           bandwidths: Optional[BandwidthConfig] = None) -> BandwidthConfig:
        """The Eq.-1 bandwidths this scenario is evaluated under.

        An explicit override wins; otherwise the bandwidths come from the
        scenario's own device spec (for the paper's Titan X these are exactly
        the measured 6.3/6.4 GB/s), so the device axis changes the
        swap-feasibility results the way real hardware would.
        """
        if bandwidths is not None:
            return bandwidths
        from ..device.spec import get_device_spec
        return BandwidthConfig.from_device_spec(get_device_spec(self.config.device_spec))

    def fingerprint(self, bandwidths: Optional[BandwidthConfig] = None) -> Dict[str, object]:
        """Canonical JSON-friendly identity of this scenario (cache key input).

        The cosmetic ``label`` is excluded: two scenarios that run the same
        workload hit the same cache entry regardless of how they are named.
        The Eq.-1 bandwidths are *included* (resolved from the device spec
        when unset): they shape ``swappable_fraction`` and every swap-policy
        summary, so results computed under different bandwidths must never
        share a cache entry.
        """
        bandwidths = self.resolve_bandwidths(bandwidths)
        config = self.config.to_dict()
        config.pop("label", None)
        return {
            "schema_version": RESULT_SCHEMA_VERSION,
            "swap_policy": self.swap_policy,
            "bandwidths": {"h2d_bytes_per_s": bandwidths.h2d_bytes_per_s,
                           "d2h_bytes_per_s": bandwidths.d2h_bytes_per_s},
            "config": config,
        }

    def key(self, bandwidths: Optional[BandwidthConfig] = None) -> str:
        """Content hash of the scenario (the cache file stem)."""
        canonical = json.dumps(self.fingerprint(bandwidths), sort_keys=True,
                               separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """One-line description used by ``repro sweep --dry-run``."""
        c = self.config
        capacity = ("" if c.device_memory_capacity is None
                    else f" cap={c.device_memory_capacity}")
        return (f"{c.model}/{c.dataset} batch={c.batch_size} iters={c.iterations} "
                f"alloc={c.allocator} swap={self.swap_policy} device={c.device_spec} "
                f"dtype={c.dtype} ndev={c.n_devices} link={c.interconnect} "
                f"swap_exec={c.swap}{capacity} mode={c.execution_mode}")


@dataclass
class SweepGrid:
    """Declarative cross product of scenario dimensions.

    Every field that is a sequence is a sweep dimension; the cross product of
    all dimensions is expanded by :meth:`expand`.  Scalar fields are shared
    by every scenario.
    """

    models: Sequence[str] = ("mlp",)
    batch_sizes: Sequence[int] = (64,)
    iterations: Sequence[int] = (2,)
    allocators: Sequence[str] = ("caching",)
    swap_policies: Sequence[str] = ("none",)
    device_specs: Sequence[str] = ("titan_x_pascal",)
    dtypes: Sequence[str] = ("float32",)
    n_devices: Sequence[int] = (1,)
    interconnects: Sequence[str] = ("pcie_gen3",)
    swaps: Sequence[str] = ("off",)
    device_memory_capacities: Sequence[Optional[int]] = (None,)
    host_dispatch_overheads_ns: Sequence[Optional[int]] = (None,)
    seeds: Sequence[int] = (0,)
    # shared scalars
    dataset: str = "two_cluster"
    execution_mode: str = "symbolic"
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    optimizer: str = "sgd"
    allreduce_algorithm: str = "ring"
    host_latency: Optional[object] = None  # HostLatencyModel

    def size(self) -> int:
        """Number of scenarios the grid expands to."""
        return (len(self.models) * len(self.batch_sizes) * len(self.iterations)
                * len(self.allocators) * len(self.swap_policies)
                * len(self.device_specs) * len(self.dtypes)
                * len(self.n_devices) * len(self.interconnects)
                * len(self.swaps) * len(self.device_memory_capacities)
                * len(self.host_dispatch_overheads_ns) * len(self.seeds))

    def expand(self) -> List[Scenario]:
        """Expand the grid into concrete scenarios (deterministic order)."""
        for policy in self.swap_policies:
            if policy not in SWAP_POLICIES:
                raise ValueError(
                    f"unknown swap policy '{policy}'; known policies: {SWAP_POLICIES}")
        for swap in self.swaps:
            if swap not in SWAP_EXECUTION_MODES:
                raise ValueError(
                    f"unknown swap execution mode '{swap}'; known modes: "
                    f"{SWAP_EXECUTION_MODES}")
        # "replay" is a pseudo-mode: the scenarios themselves are plain
        # symbolic (identical fingerprints, identical results), only routed
        # through the template-replay engine by the runner.
        execution_mode = self.execution_mode
        via_replay = execution_mode == "replay"
        if via_replay:
            execution_mode = "symbolic"
        scenarios: List[Scenario] = []
        # Outermost dimension first; the policy varies fastest so that related
        # baselines of one workload sit together in the summary table.
        axes = itertools.product(
            self.models, self.batch_sizes, self.iterations, self.allocators,
            self.device_specs, self.dtypes, self.n_devices, self.interconnects,
            self.swaps, self.device_memory_capacities,
            self.host_dispatch_overheads_ns, self.seeds,
            self.swap_policies,
        )
        for (model, batch_size, iterations, allocator, device_spec, dtype,
             n_devices, interconnect, swap, capacity, overhead, seed,
             policy) in axes:
            config = TrainingRunConfig(
                model=model,
                model_kwargs=dict(self.model_kwargs),
                dataset=self.dataset,
                dataset_kwargs=dict(self.dataset_kwargs),
                batch_size=batch_size,
                iterations=iterations,
                optimizer=self.optimizer,
                device_spec=device_spec,
                dtype=dtype,
                allocator=allocator,
                execution_mode=execution_mode,
                seed=seed,
                host_latency=self.host_latency,
                device_memory_capacity=capacity,
                host_dispatch_overhead_ns=overhead,
                n_devices=n_devices,
                interconnect=interconnect,
                allreduce_algorithm=self.allreduce_algorithm,
                swap=swap,
                label=f"{model}-batch{batch_size}-{allocator}",
            )
            scenarios.append(Scenario(config=config, swap_policy=policy,
                                      via_replay=via_replay))
        return scenarios


# -- per-scenario execution -----------------------------------------------------------


@dataclass
class ScenarioResult:
    """JSON-serializable reduction of one profiled scenario."""

    scenario: Dict[str, object]        # identifying fields (model, batch_size, ...)
    key: str                           # content hash of the scenario
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    peak_live_bytes: int
    parameter_bytes: int
    parameter_count: int
    num_events: int
    num_blocks: int
    step_time_s_mean: float
    step_time_s_total: float
    ati: Dict[str, float]              # AtiSummary.to_dict()
    swappable_fraction: float
    swap: Optional[Dict[str, object]]  # plan/policy summary (None for "none")
    breakdown: Dict[str, object]       # OccupationBreakdown.to_dict()
    allocator_stats: Dict[str, int]
    mean_utilization: float
    wall_time_s: float
    collective: Optional[Dict[str, object]] = None  # allreduce summary (n_devices>1)
    #: Closed-loop swap-execution summary (measured counters + stalls + the
    #: policy's predicted numbers); ``None`` when the scenario ran swap-off.
    swap_execution: Optional[Dict[str, object]] = None
    from_cache: bool = False

    def to_dict(self) -> Dict[str, object]:
        """Serialize for the on-disk cache."""
        data = asdict(self)
        data.pop("from_cache", None)
        return data

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "ScenarioResult":
        """Reconstruct a result from :meth:`to_dict` output."""
        known = {f for f in ScenarioResult.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        kwargs.setdefault("from_cache", False)
        return ScenarioResult(**kwargs)

    def occupation(self) -> OccupationBreakdown:
        """The scenario's occupation breakdown as a first-class object."""
        return OccupationBreakdown.from_dict(self.breakdown)

    def row(self) -> Dict[str, object]:
        """One tidy flat row for the aggregate summary table."""
        row: Dict[str, object] = dict(self.scenario)
        collective = self.collective or {}
        iterations = max(1, int(self.scenario.get("iterations", 1)))
        row.update({
            "wall_s": round(self.wall_time_s, 3),
            "peak_alloc_mib": round(self.peak_allocated_bytes / MIB, 2),
            "peak_reserved_mib": round(self.peak_reserved_bytes / MIB, 2),
            "step_time_ms": round(self.step_time_s_mean * 1e3, 3),
            "allreduce_ms": round(
                float(collective.get("total_time_ns", 0.0)) / iterations / 1e6, 3),
            "ati_count": int(self.ati.get("count", 0)),
            "ati_p50_us": round(float(self.ati.get("p50_us", 0.0)), 3),
            "ati_p90_us": round(float(self.ati.get("p90_us", 0.0)), 3),
            "ati_p99_us": round(float(self.ati.get("p99_us", 0.0)), 3),
            "swappable_frac": round(self.swappable_fraction, 4),
            "swap_savings_mib": round(
                float((self.swap or {}).get("savings_bytes", 0)) / MIB, 2),
            "cached": self.from_cache,
        })
        execution = self.swap_execution or {}
        predicted = execution.get("predicted") or {}
        row.update({
            "swap_stall_ms": round(
                float(execution.get("stall_ns_per_iteration", 0.0)) / 1e6, 3),
            "swap_measured_mib": round(
                float(execution.get("measured_savings_bytes", 0)) / MIB, 2),
            "swap_predicted_mib": round(
                float(predicted.get("savings_bytes", 0) or 0) / MIB, 2),
            "recompute_ms": round(
                float(execution.get("recompute_ns_per_iteration", 0.0)) / 1e6, 3),
            "pressure_stall_ms": round(
                float(execution.get("pressure_stall_ns", 0.0)) / 1e6, 3),
            "peak_resident_mib": round(
                float(execution.get("peak_resident_bytes", 0)) / MIB, 2),
        })
        return row


def scenario_identity(scenario: Scenario) -> Dict[str, object]:
    """The identifying fields shared by result rows and failure records."""
    config = scenario.config
    return {
        "model": config.model,
        "dataset": config.dataset,
        "batch_size": config.batch_size,
        "iterations": config.iterations,
        "allocator": config.allocator,
        "swap_policy": scenario.swap_policy,
        "device_spec": config.device_spec,
        "dtype": config.dtype,
        "n_devices": config.n_devices,
        "interconnect": config.interconnect,
        "swap": config.swap,
        "device_memory_capacity": config.device_memory_capacity,
        "execution_mode": config.execution_mode,
        "seed": config.seed,
    }


def _swap_policy_summary(policy: str, session: SessionResult,
                         bandwidths: BandwidthConfig) -> Optional[Dict[str, object]]:
    """Evaluate the requested policy (from the baselines registry) on the trace.

    Multi-device sessions evaluate the policy on the rank-0 replica's slice:
    every policy then reports *per-device* peaks and savings, directly
    comparable with the scenario's per-replica ``peak_allocated_bytes``
    (the merged trace would count each replicated parameter/gradient block
    once per rank).  The slice keeps the session metadata, so the rank-aware
    ZeRO-Offload partitioning still sees the cluster size.
    """
    trace = session.trace
    if session.n_devices > 1:
        trace = trace.for_rank(0)
    return get_policy(policy).evaluate(trace, bandwidths)


def run_scenario(scenario: Scenario,
                 bandwidths: Optional[BandwidthConfig] = None) -> ScenarioResult:
    """Execute one scenario and reduce its trace to a :class:`ScenarioResult`.

    This is the worker function shipped to the process pool, so it must stay
    importable at module top level and both its argument and its return value
    must pickle.

    Multi-device semantics: ``peak_allocated_bytes`` / ``peak_reserved_bytes``
    and the policy summary are *per replica* (what must fit one device),
    while ``peak_live_bytes``, the event counts, the ATI distribution and
    the occupation breakdown aggregate the merged multi-rank trace
    (cluster-wide totals).
    """
    bandwidths = scenario.resolve_bandwidths(bandwidths)
    started = time.perf_counter()
    session = run_training_session(scenario.config)
    return reduce_session(scenario, bandwidths, session, started)


def reduce_session(scenario: Scenario, bandwidths: BandwidthConfig,
                   session: SessionResult, started: float) -> ScenarioResult:
    """Reduce a finished session to a :class:`ScenarioResult`.

    Factored out of :func:`run_scenario` so the replay engine
    (:mod:`repro.experiments.replay`) can feed a *reconstructed* session
    through the very same reduction — bit-identical results require the
    identical code path, not a parallel reimplementation.
    """
    trace = session.trace

    arrays = compute_interval_arrays(trace)
    ati_summary = summarize_values_us(arrays.interval_us)
    breakdown = occupation_breakdown(
        trace, label=scenario.config.label or scenario.config.describe())

    stats = dict(session.allocator_stats)
    peak_reserved = int(stats.get("peak_reserved_bytes", session.peak_reserved_bytes))
    peak_allocated = int(stats.get("peak_allocated_bytes", session.peak_allocated_bytes))
    if peak_reserved:
        mean_utilization = peak_allocated / peak_reserved
    else:
        mean_utilization = analyze_fragmentation(trace).mean_utilization

    durations_s = [stats_.duration_ns / 1e9 for stats_ in session.iteration_stats]
    total_s = float(sum(durations_s))

    config = scenario.config
    return ScenarioResult(
        scenario=scenario_identity(scenario),
        key=scenario.key(bandwidths),
        peak_allocated_bytes=int(session.peak_allocated_bytes),
        peak_reserved_bytes=int(session.peak_reserved_bytes),
        peak_live_bytes=int(trace.peak_live_bytes()),
        parameter_bytes=int(session.parameter_bytes),
        parameter_count=int(session.parameter_count),
        num_events=len(trace),
        num_blocks=len(trace.block_ids()),
        step_time_s_mean=total_s / len(durations_s) if durations_s else 0.0,
        step_time_s_total=total_s,
        ati=ati_summary.to_dict(),
        swappable_fraction=swappable_fraction(arrays, bandwidths),
        swap=_swap_policy_summary(scenario.swap_policy, session, bandwidths),
        breakdown=breakdown.to_dict(),
        allocator_stats={k: int(v) for k, v in stats.items()},
        mean_utilization=float(mean_utilization),
        wall_time_s=time.perf_counter() - started,
        collective=session.collective,
        swap_execution=session.swap_execution,
    )


class _RemoteTraceback(Exception):
    """Carries a worker's formatted traceback across the process boundary."""

    def __init__(self, formatted: str):
        self.formatted = formatted

    def __str__(self) -> str:
        return self.formatted


@dataclass
class _ScenarioFailure:
    """In-band record of one scenario's failure inside a pool worker."""

    error: Exception
    traceback: str

    def unwrap(self) -> Exception:
        """The original exception, chained to the worker's traceback text."""
        self.error.__cause__ = _RemoteTraceback(f"\n{self.traceback}")
        return self.error


# -- failure taxonomy -----------------------------------------------------------------

#: Failure kinds: a *transient* failure describes the harness (retryable
#: under the per-scenario budget), a *deterministic* one describes the
#: scenario itself (recorded once, never retried).
TRANSIENT, DETERMINISTIC = "transient", "deterministic"


def classify_failure(error: BaseException) -> Tuple[str, str]:
    """Map an exception to its ``(reason code, kind)`` taxonomy verdict.

    Transient reasons — a dead worker (``BrokenProcessPool``), an expired
    per-scenario deadline, an injected harness fault, a cache/storage I/O
    error — are properties of the *run*, so retrying the scenario can
    succeed.  Deterministic reasons — an infeasible capacity, a raw OOM, a
    configuration error, and any unrecognized exception (re-running the same
    pure simulation reproduces it) — are properties of the *scenario*:
    they are recorded once in the failure manifest and never retried.
    """
    if isinstance(error, BrokenProcessPool):
        return "worker_crash", TRANSIENT
    if isinstance(error, ScenarioTimeoutError):
        return "timeout", TRANSIENT
    if isinstance(error, InjectedFaultError):
        return "injected_fault", TRANSIENT
    if isinstance(error, SweepFaultError):
        return "fault", TRANSIENT
    if isinstance(error, InfeasibleScenarioError):
        return "infeasible", DETERMINISTIC
    if isinstance(error, OutOfMemoryError):
        return "oom", DETERMINISTIC
    if isinstance(error, ConfigurationError):
        return "config", DETERMINISTIC
    if isinstance(error, OSError):
        return "io_error", TRANSIENT
    return "error", DETERMINISTIC


@dataclass
class FailureRecord:
    """One scenario's terminal entry in the sweep's failure manifest.

    Mirrors :class:`ScenarioResult` for scenarios that did not produce one:
    the identifying fields, the content-hash key, the taxonomy verdict
    (``reason`` code + ``kind``), how many attempts were spent, and the
    final error (message plus the worker traceback when one crossed the
    pool boundary).  ``resumed`` marks failures replayed from a prior run's
    journal under ``--resume`` rather than re-executed.
    """

    scenario: Dict[str, object]
    key: str
    reason: str
    kind: str
    attempts: int
    error: str
    traceback: str = ""
    resumed: bool = False
    #: The live exception (used by strict re-raise); never serialized.
    error_obj: Optional[BaseException] = field(default=None, repr=False,
                                               compare=False)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (drops the live exception object)."""
        data = asdict(self)
        data.pop("error_obj", None)
        return data

    def describe(self) -> str:
        """One-line rendering for the CLI/report failure footer."""
        s = self.scenario
        resumed = " (resumed)" if self.resumed else ""
        return (f"{s.get('model')}/batch={s.get('batch_size')} "
                f"alloc={s.get('allocator')} device={s.get('device_spec')} "
                f"swap={s.get('swap')}: reason={self.reason} kind={self.kind} "
                f"attempts={self.attempts}{resumed} — {self.error}")


def _run_scenario_chunk(scenarios: List[Scenario],
                        bandwidths: Optional[BandwidthConfig],
                        fault_plan: Optional[FaultPlan] = None,
                        keys: Optional[List[str]] = None,
                        attempts: Optional[List[int]] = None):
    """Pool worker: run several scenarios inside one task submission.

    Chunked submission amortizes the per-task pickling/dispatch overhead of
    the process pool across many scenarios — at symbolic-mode speeds that
    overhead is comparable to a small scenario itself.  Per-scenario failures
    are returned in-band (as a :class:`_ScenarioFailure` carrying the worker
    traceback) instead of failing the whole chunk, so one bad scenario never
    discards its chunk-mates' work.

    ``fault_plan``/``keys``/``attempts`` thread the deterministic
    fault-injection harness into the worker: each scenario's fault decision
    is a pure function of its key and attempt number, so retries across
    rebuilt pools observe the same schedule.
    """
    outcomes: List[object] = []
    for position, scenario in enumerate(scenarios):
        try:
            if fault_plan is not None and keys is not None:
                fault_plan.fire_execution(keys[position],
                                          0 if attempts is None
                                          else attempts[position],
                                          in_worker=True)
            outcomes.append(run_scenario(scenario, bandwidths=bandwidths))
        except Exception as error:  # reported to the parent, with traceback
            outcomes.append(_ScenarioFailure(error, traceback_module.format_exc()))
    return outcomes


# -- the runner -----------------------------------------------------------------------


@dataclass
class SweepResult:
    """Aggregate outcome of one sweep invocation."""

    results: List[ScenarioResult]
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    #: Scenarios priced by template replay (a subset of ``cache_misses``).
    replayed: int = 0
    #: Template *families* that needed a fresh compile this run (one family
    #: per dtype-free structure; store hits do not count).
    templates_compiled: int = 0
    #: Individual compile simulations run (>= ``templates_compiled`` when a
    #: family was widened with extra dtype variants).
    template_variants: int = 0
    #: Replay-eligible scenarios that fell back to fresh simulation, tallied
    #: by :class:`~repro.experiments.replay.TemplateError` reason code.
    replay_fallbacks: Dict[str, int] = field(default_factory=dict)
    #: Scenarios that terminally failed this run (the failure manifest);
    #: the partial ``results`` above still carry every scenario that
    #: completed.  Expansion order, like ``results``.
    failures: List[FailureRecord] = field(default_factory=list)
    #: Transient-failure re-submissions performed under the retry budget.
    retries: int = 0
    #: Corrupt artifacts moved aside this run, tallied by artifact kind
    #: (``cache_corrupt`` entries, ``template_corrupt`` stores).
    quarantined: Dict[str, int] = field(default_factory=dict)
    #: Scenarios skipped because a prior run's journal already recorded
    #: their deterministic failure (``resume=True``).
    resumed_skipped: int = 0

    def __len__(self) -> int:
        return len(self.results)

    def failure_summary(self) -> str:
        """Multi-line failure footer for the CLI/report (empty when clean)."""
        if not self.failures:
            return ""
        lines = [f"{len(self.failures)} scenario(s) failed "
                 f"({self.retries} retries performed)"]
        lines.extend(f"  - {record.describe()}" for record in self.failures)
        if self.quarantined:
            tally = ", ".join(f"{kind}={count}"
                              for kind, count in sorted(self.quarantined.items()))
            lines.append(f"  quarantined artifacts: {tally}")
        return "\n".join(lines)

    def rows(self) -> List[Dict[str, object]]:
        """Tidy flat rows, one per scenario, in expansion order."""
        return [result.row() for result in self.results]

    def summary_table(self, columns: Optional[Sequence[str]] = None) -> str:
        """Fixed-width text table of the tidy rows."""
        from ..viz import render_table
        rows = self.rows()
        if not rows:
            return "(empty sweep)"
        if columns is None:
            columns = ["model", "dataset", "batch_size", "iterations", "allocator",
                       "swap_policy", "device_spec", "dtype", "n_devices",
                       "interconnect", "peak_alloc_mib", "step_time_ms",
                       "allreduce_ms", "ati_p50_us", "ati_p90_us", "swappable_frac",
                       "swap_savings_mib", "wall_s", "cached"]
            if any(row.get("swap", "off") != "off" for row in rows):
                columns[columns.index("swap_savings_mib"):
                        columns.index("swap_savings_mib") + 1] = [
                    "swap", "swap_measured_mib", "swap_predicted_mib",
                    "swap_stall_ms"]
            columns = [c for c in columns if c in rows[0]]
        return render_table(rows, columns=columns)

    def filter(self, **scenario_fields) -> List[ScenarioResult]:
        """Scenario results whose identifying fields match every given value."""
        return [result for result in self.results
                if all(result.scenario.get(k) == v for k, v in scenario_fields.items())]

    def breakdown_series(self, parameter: str) -> BreakdownSeries:
        """Build the figure-style series keyed on one scenario dimension."""
        series = BreakdownSeries(parameter_name=parameter)
        for result in self.results:
            series.add(result.scenario.get(parameter), result.occupation())
        return series

    def total_simulated_time_s(self) -> float:
        """Sum of the simulated training time across scenarios."""
        return float(sum(result.step_time_s_total for result in self.results))


class SweepRunner:
    """Execute scenario sweeps with caching and optional process parallelism.

    Parameters
    ----------
    cache_dir:
        Directory of the content-addressed JSON cache.  ``None`` disables
        caching entirely (every scenario runs).
    workers:
        Number of worker processes; 1 runs scenarios serially in-process.
    use_cache:
        If false, cached entries are ignored (but fresh results are still
        written back when ``cache_dir`` is set).
    bandwidths:
        Explicit Eq.-1 bandwidth override for every scenario; ``None`` (the
        default) derives the bandwidths from each scenario's device spec.
    chunk_size:
        Scenarios submitted to a pool worker per task; ``None`` picks a size
        that gives every worker a few chunks (load balancing) while keeping
        the per-task dispatch overhead amortized.  A per-scenario
        ``timeout_s`` forces chunks of one (a deadline must map to exactly
        one scenario to kill).
    retries:
        Per-scenario budget of re-submissions after a *transient* failure
        (worker crash, timeout, injected fault, I/O error — see
        :func:`classify_failure`).  Deterministic failures are recorded once
        and never retried.
    backoff_s:
        Base of the deterministic exponential backoff between retry rounds:
        round ``n`` (1-based) sleeps ``backoff_s * 2**(n-1)`` first.
    timeout_s:
        Per-scenario wall-clock deadline.  On the pool path an overdue
        scenario gets its workers killed and the pool rebuilt; on the serial
        path the deadline is checked post-hoc (a pure simulation cannot be
        preempted in-process).
    strict:
        When true (the default, the historical behavior) the first terminal
        failure is re-raised after the run drains.  When false, failures are
        returned in ``SweepResult.failures`` and the partial results stand.
    resume:
        Consult the per-grid run journal: scenarios that already failed
        deterministically in a prior run are skipped (resurfaced as
        ``resumed`` failure records) instead of re-executed.
    journal:
        Whether to keep the journal at all; ``None`` (default) enables it
        exactly when a ``cache_dir`` is configured.
    fault_plan:
        A deterministic :class:`~repro.experiments.faults.FaultPlan` to
        inject; ``None`` falls back to the ``REPRO_FAULT_PLAN`` environment
        hook (and to no-op when that is unset too).

    The worker pool is created lazily on the first parallel :meth:`run` and
    *reused across runs* — repeated sweeps (the report generator issues
    several) never pay the process-spawn cost twice.  Call :meth:`close` (or
    use the runner as a context manager) to shut the pool down eagerly.
    """

    def __init__(self, cache_dir: Optional[Union[str, Path]] = None, workers: int = 1,
                 use_cache: bool = True,
                 bandwidths: Optional[BandwidthConfig] = None,
                 chunk_size: Optional[int] = None,
                 replay_batching: bool = True,
                 retries: int = 0,
                 backoff_s: float = 0.05,
                 timeout_s: Optional[float] = None,
                 strict: bool = True,
                 resume: bool = False,
                 journal: Optional[bool] = None,
                 fault_plan: Optional[FaultPlan] = None):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.workers = max(1, int(workers))
        self.use_cache = bool(use_cache)
        self.bandwidths = bandwidths
        self.chunk_size = chunk_size
        #: Route replay scenarios through the grid-batched pricer
        #: (:meth:`ReplayEngine.price_batch`); ``False`` restores the
        #: scenario-at-a-time scalar path (benchmark baseline).
        self.replay_batching = bool(replay_batching)
        self.retries = max(0, int(retries))
        self.backoff_s = max(0.0, float(backoff_s))
        self.timeout_s = None if timeout_s is None else float(timeout_s)
        self.strict = bool(strict)
        self.resume = bool(resume)
        self.journal_enabled = (self.cache_dir is not None
                                if journal is None else bool(journal))
        self.fault_plan = fault_plan if fault_plan is not None else FaultPlan.from_env()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._replay_engine = None  # lazy ReplayEngine (replay scenarios only)
        self._cache_quarantined = 0  # corrupt cache entries moved aside
        self._cache_io_errors = 0    # cache writes that failed (tallied, not fatal)

    # -- worker pool ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The reusable worker pool (spawned on first use).

        A ``weakref.finalize`` safety net shuts the pool down when the
        runner is garbage-collected, so callers that never call
        :meth:`close` (the pre-context-manager API) do not leak worker
        processes for the rest of the interpreter's lifetime.
        """
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
            self._pool_finalizer = weakref.finalize(
                self, ProcessPoolExecutor.shutdown, self._pool, wait=False)
        return self._pool

    def close(self) -> None:
        """Shut down the reusable worker pool (idempotent)."""
        if self._pool is not None:
            finalizer = getattr(self, "_pool_finalizer", None)
            if finalizer is not None:
                finalizer.detach()
            self._pool.shutdown(wait=True)
            self._pool = None

    def _kill_pool(self) -> None:
        """Forcibly terminate the pool (hung or crashed workers).

        ``shutdown(wait=True)`` would block forever behind a wedged scenario,
        so the timeout path terminates the worker processes directly and
        abandons the executor without waiting; the next round rebuilds a
        fresh pool via :meth:`_ensure_pool`.
        """
        if self._pool is None:
            return
        finalizer = getattr(self, "_pool_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        processes = getattr(self._pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:  # already dead — exactly what we wanted
                pass
        self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.close()

    def _chunks(self, missing: List[Tuple[int, "Scenario"]]) -> List[List[Tuple[int, "Scenario"]]]:
        """Split the uncached scenarios into per-task chunks (expansion order)."""
        if self.chunk_size is not None:
            size = max(1, int(self.chunk_size))
        else:
            # Aim for ~4 chunks per worker so stragglers rebalance, but never
            # less than one scenario per task.
            size = max(1, -(-len(missing) // (self.workers * 4)))
        return [missing[i:i + size] for i in range(0, len(missing), size)]

    # -- cache ------------------------------------------------------------------------

    def _cache_path(self, scenario: Scenario) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / f"{scenario.key(self.bandwidths)}.json"

    def _quarantine_cache_entry(self, path: Path) -> None:
        """Move a corrupt cache entry into ``<cache_dir>/quarantine/``.

        Keeping the bad bytes (instead of silently recomputing over them)
        preserves the evidence for post-mortem and guarantees a torn write
        can never be half-parsed twice.  Falls back to unlinking when even
        the move fails.
        """
        try:
            quarantine = path.parent / "quarantine"
            quarantine.mkdir(parents=True, exist_ok=True)
            os.replace(path, quarantine / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        self._cache_quarantined += 1

    def cache_load(self, scenario: Scenario) -> Optional[ScenarioResult]:
        """Load one scenario's cached result (None on miss or corrupt entry).

        A schema-version mismatch is a legitimate invalidation (the entry is
        simply ignored); an *unparseable* entry is corruption — it is moved
        into the quarantine directory and tallied as ``cache_corrupt`` in
        :attr:`SweepResult.quarantined` before the miss is reported.
        """
        path = self._cache_path(scenario)
        if path is None or not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                data = json.load(handle)
            if data.get("schema_version") != RESULT_SCHEMA_VERSION:
                return None
            result = ScenarioResult.from_dict(data["result"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError):
            self._quarantine_cache_entry(path)
            return None  # treated as a miss; a fresh result is rewritten
        except OSError:
            self._cache_io_errors += 1
            return None
        result.from_cache = True
        return result

    def cache_store(self, scenario: Scenario, result: ScenarioResult) -> None:
        """Write one scenario result to the cache (atomic rename).

        A failed write is tallied (``io_error``) but never fatal: losing a
        cache entry only costs recomputation next run, while aborting the
        sweep would discard finished work.
        """
        path = self._cache_path(scenario)
        if path is None:
            return
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            payload = {
                "schema_version": RESULT_SCHEMA_VERSION,
                "fingerprint": scenario.fingerprint(self.bandwidths),
                "result": result.to_dict(),
            }
            temporary = path.with_suffix(".tmp")
            with open(temporary, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(temporary, path)
        except OSError:
            self._cache_io_errors += 1
            return
        if self.fault_plan is not None:
            self.fault_plan.corrupt_artifact("cache_corrupt", path.stem, path)

    def clear_cache(self) -> int:
        """Delete every cache entry; returns the number of files removed.

        Run journals and quarantined artifacts are wiped along with the
        entries they describe, but are *not* counted: the return value is
        the number of results invalidated, the contract callers display.
        """
        if self.cache_dir is None or not self.cache_dir.is_dir():
            return 0
        removed = 0
        for path in self.cache_dir.glob("*.json"):
            path.unlink()
            removed += 1
        for path in (self.cache_dir / "templates").glob("*.npz"):
            path.unlink()
            removed += 1
        index_path = self.cache_dir / "templates" / "index.json"
        if index_path.is_file():
            index_path.unlink()
            removed += 1
        for side_dir in ("journals", "quarantine"):
            directory = self.cache_dir / side_dir
            if directory.is_dir():
                for path in directory.iterdir():
                    if path.is_file():
                        path.unlink()
        quarantine = self.cache_dir / "templates" / "quarantine"
        if quarantine.is_dir():
            for path in quarantine.iterdir():
                if path.is_file():
                    path.unlink()
        return removed

    # -- replay -----------------------------------------------------------------------

    def _ensure_replay_engine(self):
        """The lazily-built template-replay engine (persists templates next to
        the result cache when one is configured)."""
        if self._replay_engine is None:
            from .replay import ReplayEngine
            template_dir = (self.cache_dir / "templates"
                            if self.cache_dir is not None else None)
            self._replay_engine = ReplayEngine(template_dir=template_dir,
                                               fault_plan=self.fault_plan)
        return self._replay_engine

    # -- execution --------------------------------------------------------------------

    def run(self, grid_or_scenarios: Union[SweepGrid, Sequence[Scenario]]) -> SweepResult:
        """Run every scenario (cache-first), preserving expansion order.

        The pipeline: cache pass, resume pass (skip prior deterministic
        failures when ``resume=True``), replay phase, then the retry/timeout
        execution loop.  Each result is cached and journaled the moment it
        completes, so an interrupt at any instant loses at most the work in
        flight.  With ``strict=True`` (the default) the first terminal
        failure is re-raised after everything drains; otherwise failures are
        returned in :attr:`SweepResult.failures` next to the partial results.
        """
        if isinstance(grid_or_scenarios, SweepGrid):
            scenarios = grid_or_scenarios.expand()
        else:
            scenarios = list(grid_or_scenarios)
        started = time.perf_counter()
        self._cache_quarantined = 0
        self._cache_io_errors = 0

        keys = [scenario.key(self.bandwidths) for scenario in scenarios]
        journal: Optional[RunJournal] = None
        if self.journal_enabled and self.cache_dir is not None:
            journal = RunJournal.for_keys(self.cache_dir, keys,
                                          RESULT_SCHEMA_VERSION)
            if not self.resume:
                # A fresh (non-resume) run voids the prior bookkeeping; the
                # first record flushed rewrites the journal from scratch.
                journal.entries = {}

        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)
        failure_records: Dict[int, FailureRecord] = {}
        resumed_skipped = 0

        missing: List[Tuple[int, Scenario]] = []
        for index, scenario in enumerate(scenarios):
            cached = self.cache_load(scenario) if self.use_cache else None
            if cached is not None:
                results[index] = cached
            else:
                missing.append((index, scenario))

        if self.resume and journal is not None:
            # Deterministic failures recorded by a prior run are skipped —
            # re-running them cannot change the outcome — and resurfaced in
            # the manifest marked ``resumed``.  Transient failures re-run
            # with a fresh budget; completed scenarios were already served
            # by the cache above (data wins over bookkeeping).
            remaining: List[Tuple[int, Scenario]] = []
            for index, scenario in missing:
                prior = journal.deterministic_failure(keys[index])
                if prior is not None:
                    reason = str(prior.get("reason", "error"))
                    failure_records[index] = FailureRecord(
                        scenario=scenario_identity(scenario),
                        key=keys[index],
                        reason=reason,
                        kind=DETERMINISTIC,
                        attempts=int(prior.get("attempts", 1)),
                        error=(f"skipped: a prior run recorded a "
                               f"deterministic '{reason}' failure"),
                        resumed=True,
                    )
                    resumed_skipped += 1
                else:
                    remaining.append((index, scenario))
            missing = remaining

        replayed = templates_compiled = template_variants = 0
        replay_fallbacks: Dict[str, int] = {}
        template_quarantined = 0
        replay_candidates = [(i, s) for i, s in missing if s.via_replay]
        if replay_candidates:
            # Replay runs serially in-process: pricing a scenario from a
            # memoized template is far cheaper than shipping it to a pool
            # worker.  Scenarios the engine declines (no template, structure
            # invalid for the target capacity, swap engine on) stay in
            # ``missing`` and take the ordinary simulation path below, with
            # the decline reason tallied in ``replay_fallbacks`` — and an
            # engine *crash* degrades the same way (reason ``engine_error``)
            # instead of aborting the sweep.
            engine = self._ensure_replay_engine()
            store = getattr(engine, "store", None)
            quarantined_before = getattr(store, "quarantined", 0)
            bandwidths_list = [scenario.resolve_bandwidths(self.bandwidths)
                               for _, scenario in replay_candidates]
            engine_errors = 0
            if self.replay_batching:
                # Whole grid in one call: the engine groups the scenarios by
                # structure and prices each group as a single broadcast.
                try:
                    outcomes = engine.price_batch(
                        [scenario for _, scenario in replay_candidates],
                        bandwidths_list)
                except Exception:  # degrade to fresh simulation below
                    engine_errors = len(replay_candidates)
                    outcomes = [None] * len(replay_candidates)
            else:
                outcomes = []
                for (_, scenario), bandwidths in zip(replay_candidates,
                                                     bandwidths_list):
                    try:
                        outcomes.append(engine.price(scenario, bandwidths))
                    except Exception:  # degrade to fresh simulation below
                        engine_errors += 1
                        outcomes.append(None)
            priced: set = set()
            for (index, scenario), result in zip(replay_candidates, outcomes):
                if result is None:
                    continue
                results[index] = result
                self.cache_store(scenario, result)
                if journal is not None:
                    journal.record_completed(keys[index], 1)
                priced.add(index)
            missing = [(i, s) for i, s in missing if i not in priced]
            replayed = engine.replayed
            templates_compiled = engine.templates_compiled
            template_variants = engine.variants_captured
            replay_fallbacks = dict(engine.fallback_reasons)
            if engine_errors:
                replay_fallbacks["engine_error"] = (
                    replay_fallbacks.get("engine_error", 0) + engine_errors)
            template_quarantined = (getattr(store, "quarantined", 0)
                                    - quarantined_before)

        retries_performed = 0
        if missing:
            retries_performed = self._execute_missing(
                missing, keys, results, failure_records, journal)

        failures = [failure_records[index] for index in sorted(failure_records)]
        if self.strict and failures:
            first = failures[0]
            if first.error_obj is not None:
                raise first.error_obj
            raise ReproError(first.error)

        quarantined: Dict[str, int] = {}
        if self._cache_quarantined:
            quarantined["cache_corrupt"] = self._cache_quarantined
        if template_quarantined:
            quarantined["template_corrupt"] = template_quarantined

        cache_hits = sum(1 for result in results
                         if result is not None and result.from_cache)
        return SweepResult(
            results=[result for result in results if result is not None],
            cache_hits=cache_hits,
            cache_misses=len(scenarios) - cache_hits,
            wall_time_s=time.perf_counter() - started,
            replayed=replayed,
            templates_compiled=templates_compiled,
            template_variants=template_variants,
            replay_fallbacks=replay_fallbacks,
            failures=failures,
            retries=retries_performed,
            quarantined=quarantined,
            resumed_skipped=resumed_skipped,
        )

    # -- the retry/timeout execution loop ----------------------------------------------

    def _execute_missing(self, missing: List[Tuple[int, Scenario]],
                         keys: List[str],
                         results: List[Optional[ScenarioResult]],
                         failure_records: Dict[int, FailureRecord],
                         journal: Optional[RunJournal]) -> int:
        """Run the uncached scenarios under the retry policy; returns retries.

        Scenarios execute in rounds: every pending scenario is submitted,
        outcomes are classified, transient failures within budget re-enter
        the next round (after a deterministic exponential backoff), terminal
        outcomes are recorded.  A scenario whose round died *around* it (the
        pool broke before its chunk was submitted) re-enters without
        spending an attempt — only observed outcomes consume budget, which
        both bounds the loop (the culprit's budget drains) and never charges
        an innocent scenario for its neighbor's crash.
        """
        attempts: Dict[int, int] = {index: 0 for index, _ in missing}
        pending = list(missing)
        retries_performed = 0
        round_number = 0
        while pending:
            if round_number > 0 and self.backoff_s > 0:
                time.sleep(self.backoff_s * (2 ** (round_number - 1)))
            failures = self._run_round(pending, keys, attempts, results, journal)
            round_number += 1
            next_pending: List[Tuple[int, Scenario]] = []
            for index, scenario in pending:
                if results[index] is not None:
                    continue  # persisted by the round the moment it finished
                outcome = failures.get(index)
                if outcome is None:
                    # Never actually ran this round (unsubmitted when the
                    # pool died): re-enter without consuming an attempt.
                    next_pending.append((index, scenario))
                    continue
                attempts[index] += 1
                error, trace_text = outcome
                reason, kind = classify_failure(error)
                if kind == TRANSIENT and attempts[index] <= self.retries:
                    retries_performed += 1
                    next_pending.append((index, scenario))
                    continue
                failure_records[index] = FailureRecord(
                    scenario=scenario_identity(scenario),
                    key=keys[index],
                    reason=reason,
                    kind=kind,
                    attempts=attempts[index],
                    error=str(error),
                    traceback=trace_text,
                    error_obj=error,
                )
                if journal is not None:
                    journal.record_failed(keys[index], reason, kind,
                                          attempts[index])
            pending = next_pending
        return retries_performed

    def _record_success(self, index: int, scenario: Scenario, key: str,
                        result: ScenarioResult,
                        results: List[Optional[ScenarioResult]],
                        attempts: Dict[int, int],
                        journal: Optional[RunJournal]) -> None:
        """Persist one completed scenario *immediately* (crash safety).

        Caching and journaling happen the moment the result lands in the
        parent, not at end-of-round: an interrupt a millisecond later loses
        nothing that already finished.
        """
        attempts[index] += 1
        results[index] = result
        self.cache_store(scenario, result)
        if journal is not None:
            journal.record_completed(key, attempts[index])

    def _run_round(self, pending: List[Tuple[int, Scenario]],
                   keys: List[str], attempts: Dict[int, int],
                   results: List[Optional[ScenarioResult]],
                   journal: Optional[RunJournal]) -> Dict[int, Tuple[BaseException, str]]:
        """One submission round over the pending scenarios.

        Successes are persisted in place (``results``/cache/journal) as they
        complete; the return value maps the failed indices to their
        ``(error, traceback_text)``.  An index with neither a result nor a
        failure was not executed this round (the pool died before its chunk
        was submitted) and must not be charged an attempt.
        """
        failures: Dict[int, Tuple[BaseException, str]] = {}
        if self.workers > 1 and len(pending) > 1:
            self._run_pool_round(pending, keys, attempts, results, journal,
                                 failures)
        else:
            self._run_serial_round(pending, keys, attempts, results, journal,
                                   failures)
        return failures

    def _run_serial_round(self, pending: List[Tuple[int, Scenario]],
                          keys: List[str], attempts: Dict[int, int],
                          results: List[Optional[ScenarioResult]],
                          journal: Optional[RunJournal],
                          failures: Dict[int, Tuple[BaseException, str]]) -> None:
        """Serial in-process round (``workers == 1`` or a single scenario).

        The per-scenario deadline is checked *post hoc*: a pure in-process
        simulation cannot be preempted, so an overdue scenario's result is
        discarded and replaced with a :class:`ScenarioTimeoutError` — the
        same outcome the pool path produces by killing the worker.
        ``KeyboardInterrupt`` propagates (the journal already holds every
        finished scenario, so Ctrl-C is resumable by construction).
        """
        for index, scenario in pending:
            scenario_started = time.perf_counter()
            try:
                if self.fault_plan is not None:
                    self.fault_plan.fire_execution(keys[index], attempts[index],
                                                   in_worker=False)
                result = run_scenario(scenario, bandwidths=self.bandwidths)
                elapsed = time.perf_counter() - scenario_started
                if self.timeout_s is not None and elapsed > self.timeout_s:
                    raise ScenarioTimeoutError(keys[index], elapsed,
                                               self.timeout_s)
            except KeyboardInterrupt:
                raise
            except Exception as error:
                failures[index] = (error, traceback_module.format_exc())
                continue
            self._record_success(index, scenario, keys[index], result,
                                 results, attempts, journal)

    def _run_pool_round(self, pending: List[Tuple[int, Scenario]],
                        keys: List[str], attempts: Dict[int, int],
                        results: List[Optional[ScenarioResult]],
                        journal: Optional[RunJournal],
                        failures: Dict[int, Tuple[BaseException, str]]) -> None:
        """Parallel round over the process pool.

        Without a deadline this is one shot of chunked submission.  With
        ``timeout_s`` set, chunks shrink to a single scenario (the unit a
        deadline can kill), submission is windowed to the worker count so
        every in-flight task's clock starts when it is actually submitted,
        and an overdue task terminates the whole pool (``os.kill`` is the
        only way to preempt a wedged worker) — innocent in-flight scenarios
        are simply not charged and re-run next round on a fresh pool.
        """
        pool = self._ensure_pool()
        timeout = self.timeout_s
        if timeout is not None:
            chunks = [[entry] for entry in pending]
        else:
            chunks = self._chunks(pending)
        queue = list(chunks)
        in_flight: Dict[object, Tuple[List[Tuple[int, Scenario]], float]] = {}

        def submit(chunk: List[Tuple[int, Scenario]]) -> None:
            future = pool.submit(
                _run_scenario_chunk,
                [scenario for _, scenario in chunk],
                self.bandwidths,
                self.fault_plan,
                [keys[index] for index, _ in chunk],
                [attempts[index] for index, _ in chunk])
            in_flight[future] = (chunk, time.perf_counter())

        window = self.workers if timeout is not None else len(queue)
        while queue and len(in_flight) < window:
            submit(queue.pop(0))

        pool_lost = False
        while in_flight:
            done, _ = wait(list(in_flight),
                           timeout=None if timeout is None else 0.05,
                           return_when=FIRST_COMPLETED)
            for future in done:
                chunk, _submitted_at = in_flight.pop(future)
                try:
                    chunk_outcomes = future.result()
                except Exception as error:  # pool-level failure (worker died)
                    for index, _ in chunk:
                        failures[index] = (error, "")
                    pool_lost = True
                    continue
                for (index, scenario), outcome in zip(chunk, chunk_outcomes):
                    if isinstance(outcome, _ScenarioFailure):
                        failures[index] = (outcome.unwrap(), outcome.traceback)
                    else:
                        self._record_success(index, scenario, keys[index],
                                             outcome, results, attempts,
                                             journal)
            if pool_lost:
                # Stop feeding work; drain the remaining in-flight futures
                # (a broken pool fails them fast).  Unsubmitted chunks keep
                # no outcome and re-run next round, attempt-free.
                queue.clear()
                continue
            if timeout is not None:
                now = time.perf_counter()
                overdue = [future for future, (_, submitted_at) in in_flight.items()
                           if now - submitted_at > timeout]
                if overdue:
                    for future in overdue:
                        chunk, submitted_at = in_flight.pop(future)
                        for index, _ in chunk:
                            failures[index] = (
                                ScenarioTimeoutError(keys[index],
                                                     now - submitted_at,
                                                     timeout), "")
                    self._kill_pool()
                    in_flight.clear()
                    queue.clear()
                    return
            while queue and len(in_flight) < window:
                submit(queue.pop(0))
        if pool_lost:
            # Dispose of the broken executor so the next round (or the next
            # run()) starts from a fresh pool instead of failing fast.
            self.close()


def run_sweep(grid: SweepGrid, cache_dir: Optional[Union[str, Path]] = None,
              workers: int = 1, use_cache: bool = True) -> SweepResult:
    """Convenience wrapper: expand ``grid`` and run it with a :class:`SweepRunner`.

    The runner (and its worker pool, if one was spawned) is shut down before
    returning; hold a :class:`SweepRunner` yourself to reuse workers across
    several sweeps.
    """
    with SweepRunner(cache_dir=cache_dir, workers=workers,
                     use_cache=use_cache) as runner:
        return runner.run(grid)
