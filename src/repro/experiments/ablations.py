"""Ablation experiments A1 and A2.

The design choices called out in DESIGN.md are quantified here:

* **A1 — allocator policy.**  The same MLP workload is traced under the
  caching allocator, a best-fit arena allocator and a bump allocator.  The
  caching allocator reuses blocks (stable block identities, few segment
  reservations); the alternatives change the event stream, the number of
  distinct blocks and the reserved-memory profile.
* **A2 — timing-model sensitivity.**  The ATI distribution depends on the
  kernel timing model; sweeping the host dispatch overhead shows how much of
  the small-ATI band is launch/dispatch bound versus data-movement bound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.ati import compute_access_intervals, summarize_intervals
from ..core.fragmentation import analyze_fragmentation
from ..core.profiler import MemoryProfiler
from ..data.datasets import TwoClusterDataset
from ..data.loader import DataLoader, HostLatencyModel
from ..device.device import Device
from ..device.spec import titan_x_pascal
from ..models.mlp import MLP
from ..nn.loss import CrossEntropyLoss
from ..nn.optim import SGD
from ..train.trainer import Trainer


@dataclass
class AllocatorAblationRow:
    """Metrics of one allocator policy on the shared workload."""

    allocator: str
    num_events: int
    num_blocks: int
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    cache_hit_rate: float
    segment_allocs: int
    mean_utilization: float

    def to_dict(self) -> Dict[str, object]:
        """Serialize for reporting."""
        return {
            "allocator": self.allocator,
            "num_events": self.num_events,
            "num_blocks": self.num_blocks,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "cache_hit_rate": self.cache_hit_rate,
            "segment_allocs": self.segment_allocs,
            "mean_utilization": self.mean_utilization,
        }


def _run_mlp_workload(device: Device, batch_size: int, iterations: int,
                      hidden_dim: int) -> MemoryProfiler:
    """Train a small MLP on ``device`` under a profiler and return the profiler."""
    profiler = MemoryProfiler(device)
    with profiler:
        model = MLP(device, hidden_dim=hidden_dim)
        dataset = TwoClusterDataset(input_dim=model.input_dim, seed=0)
        loader = DataLoader(dataset, batch_size=batch_size,
                            host_latency=HostLatencyModel(per_batch_ns=500_000,
                                                          per_sample_ns=5_000,
                                                          per_byte_ns=0.05))
        loss_fn = CrossEntropyLoss(device, name="loss")
        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.9)
        trainer = Trainer(model, loader, optimizer, loss_fn, device, recorder=profiler)
        trainer.train(iterations)
    return profiler


def run_allocator_ablation(allocators: Sequence[str] = ("caching", "best_fit", "bump"),
                           batch_size: int = 1024, iterations: int = 4,
                           hidden_dim: int = 2048) -> List[AllocatorAblationRow]:
    """A1: trace the same workload under different allocator policies."""
    rows: List[AllocatorAblationRow] = []
    for allocator_name in allocators:
        device = Device(titan_x_pascal(), allocator=allocator_name, execution_mode="virtual")
        profiler = _run_mlp_workload(device, batch_size, iterations, hidden_dim)
        trace = profiler.trace()
        stats = device.memory_stats()
        total_lookups = stats["cache_hits"] + stats["cache_misses"]
        fragmentation = analyze_fragmentation(trace)
        # Reserved-memory counters come from the allocator itself rather than
        # the trace: the best-fit allocator reserves its whole arena when the
        # device is constructed, before the profiler attaches.
        peak_reserved = stats["peak_reserved_bytes"]
        peak_allocated = stats["peak_allocated_bytes"]
        rows.append(AllocatorAblationRow(
            allocator=allocator_name,
            num_events=len(trace),
            num_blocks=len(trace.block_ids()),
            peak_allocated_bytes=peak_allocated,
            peak_reserved_bytes=peak_reserved,
            cache_hit_rate=(stats["cache_hits"] / total_lookups) if total_lookups else 0.0,
            segment_allocs=stats["segment_allocs"],
            mean_utilization=(peak_allocated / peak_reserved) if peak_reserved else
            fragmentation.mean_utilization,
        ))
    return rows


@dataclass
class TimingAblationRow:
    """ATI statistics of the shared workload under one timing configuration."""

    host_dispatch_overhead_us: float
    p50_us: float
    p90_us: float
    mean_us: float

    def to_dict(self) -> Dict[str, float]:
        """Serialize for reporting."""
        return {
            "host_dispatch_overhead_us": self.host_dispatch_overhead_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "mean_us": self.mean_us,
        }


def run_timing_ablation(dispatch_overheads_us: Sequence[float] = (1.0, 6.0, 20.0, 50.0),
                        batch_size: int = 256, iterations: int = 4,
                        hidden_dim: int = 1024) -> List[TimingAblationRow]:
    """A2: sweep the host dispatch overhead and report the ATI percentiles."""
    rows: List[TimingAblationRow] = []
    for overhead_us in dispatch_overheads_us:
        device = Device(titan_x_pascal(), execution_mode="virtual",
                        host_dispatch_overhead_ns=int(overhead_us * 1_000))
        profiler = _run_mlp_workload(device, batch_size, iterations, hidden_dim)
        summary = summarize_intervals(compute_access_intervals(profiler.trace()))
        rows.append(TimingAblationRow(
            host_dispatch_overhead_us=overhead_us,
            p50_us=summary.p50_us,
            p90_us=summary.p90_us,
            mean_us=summary.mean_us,
        ))
    return rows
