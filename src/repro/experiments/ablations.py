"""Ablation experiments A1 and A2.

The design choices called out in DESIGN.md are quantified here:

* **A1 — allocator policy.**  The same MLP workload is traced under the
  caching allocator, a best-fit arena allocator and a bump allocator.  The
  caching allocator reuses blocks (stable block identities, few segment
  reservations); the alternatives change the event stream, the number of
  distinct blocks and the reserved-memory profile.
* **A2 — timing-model sensitivity.**  The ATI distribution depends on the
  kernel timing model; sweeping the host dispatch overhead shows how much of
  the small-ATI band is launch/dispatch bound versus data-movement bound.

Both ablations are one-dimensional scenario sweeps, so they are expressed as
:class:`~repro.experiments.sweep.SweepGrid` grids and executed by the shared
sweep engine (same caching and parallelism as ``repro sweep``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..data.loader import HostLatencyModel
from .sweep import ScenarioResult, SweepGrid, SweepRunner

#: Host-side latency of the shared ablation workload (fast: the ablations
#: compare allocator/timing effects, not dataloader behavior).
ABLATION_HOST_LATENCY = HostLatencyModel(per_batch_ns=500_000, per_sample_ns=5_000,
                                         per_byte_ns=0.05)


def _mlp_ablation_grid(batch_size: int, iterations: int, hidden_dim: int,
                       **dimensions) -> SweepGrid:
    """The shared MLP workload, with one sweep dimension supplied by the caller."""
    return SweepGrid(
        models=("mlp",),
        batch_sizes=(batch_size,),
        iterations=(iterations,),
        model_kwargs={"hidden_dim": hidden_dim},
        dataset="two_cluster",
        execution_mode="symbolic",
        host_latency=ABLATION_HOST_LATENCY,
        **dimensions,
    )


@dataclass
class AllocatorAblationRow:
    """Metrics of one allocator policy on the shared workload."""

    allocator: str
    num_events: int
    num_blocks: int
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    cache_hit_rate: float
    segment_allocs: int
    mean_utilization: float

    def to_dict(self) -> Dict[str, object]:
        """Serialize for reporting."""
        return {
            "allocator": self.allocator,
            "num_events": self.num_events,
            "num_blocks": self.num_blocks,
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "cache_hit_rate": self.cache_hit_rate,
            "segment_allocs": self.segment_allocs,
            "mean_utilization": self.mean_utilization,
        }

    @staticmethod
    def from_scenario_result(result: ScenarioResult) -> "AllocatorAblationRow":
        """Build one ablation row from a sweep scenario result."""
        stats = result.allocator_stats
        total_lookups = stats.get("cache_hits", 0) + stats.get("cache_misses", 0)
        # Reserved-memory counters come from the allocator itself rather than
        # the trace: the best-fit allocator reserves its whole arena when the
        # device is constructed, before the profiler attaches.
        return AllocatorAblationRow(
            allocator=str(result.scenario["allocator"]),
            num_events=result.num_events,
            num_blocks=result.num_blocks,
            peak_allocated_bytes=stats.get("peak_allocated_bytes",
                                           result.peak_allocated_bytes),
            peak_reserved_bytes=stats.get("peak_reserved_bytes",
                                          result.peak_reserved_bytes),
            cache_hit_rate=(stats.get("cache_hits", 0) / total_lookups
                            if total_lookups else 0.0),
            segment_allocs=stats.get("segment_allocs", 0),
            mean_utilization=result.mean_utilization,
        )


def run_allocator_ablation(allocators: Sequence[str] = ("caching", "best_fit", "bump"),
                           batch_size: int = 1024, iterations: int = 4,
                           hidden_dim: int = 2048,
                           runner: Optional[SweepRunner] = None) -> List[AllocatorAblationRow]:
    """A1: trace the same workload under different allocator policies."""
    runner = runner if runner is not None else SweepRunner()
    grid = _mlp_ablation_grid(batch_size, iterations, hidden_dim,
                              allocators=tuple(allocators))
    sweep = runner.run(grid)
    return [AllocatorAblationRow.from_scenario_result(result)
            for result in sweep.results]


@dataclass
class TimingAblationRow:
    """ATI statistics of the shared workload under one timing configuration."""

    host_dispatch_overhead_us: float
    p50_us: float
    p90_us: float
    mean_us: float

    def to_dict(self) -> Dict[str, float]:
        """Serialize for reporting."""
        return {
            "host_dispatch_overhead_us": self.host_dispatch_overhead_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "mean_us": self.mean_us,
        }


def run_timing_ablation(dispatch_overheads_us: Sequence[float] = (1.0, 6.0, 20.0, 50.0),
                        batch_size: int = 256, iterations: int = 4,
                        hidden_dim: int = 1024,
                        runner: Optional[SweepRunner] = None) -> List[TimingAblationRow]:
    """A2: sweep the host dispatch overhead and report the ATI percentiles."""
    runner = runner if runner is not None else SweepRunner()
    grid = _mlp_ablation_grid(batch_size, iterations, hidden_dim,
                              host_dispatch_overheads_ns=tuple(
                                  int(us * 1_000) for us in dispatch_overheads_us))
    sweep = runner.run(grid)
    return [TimingAblationRow(
        host_dispatch_overhead_us=overhead_us,
        p50_us=float(result.ati["p50_us"]),
        p90_us=float(result.ati["p90_us"]),
        mean_us=float(result.ati["mean_us"]),
    ) for overhead_us, result in zip(dispatch_overheads_us, sweep.results)]
