"""Experiment E6 — Figure 5: memory occupation breakdown of typical DNNs.

The paper's observation: for most DNNs, parameters account for only a small
fraction of the training footprint; intermediate results dominate.  This
experiment profiles a family of "typical" models (the MLP, LeNet-5, AlexNet,
VGG-11/16, a small Inception and ResNet-18/50) in virtual execution and
reports the three-way breakdown at peak occupancy for each.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.breakdown import OccupationBreakdown, occupation_breakdown
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from .configs import breakdown_config
from .sweep import Scenario

#: Default class count per dataset (used when the workload does not override it).
DATASET_NUM_CLASSES = {"cifar100": 100, "cifar10": 10, "imagenet": 1000,
                       "mnist": 10, "two_cluster": 2}

#: Default model family for the Figure-5 breakdown: (label, model, dataset,
#: batch size, input size).  CIFAR-sized inputs keep the sweep fast while the
#: two ImageNet entries show the large-model regime.
DEFAULT_FIG5_WORKLOADS: Tuple[Tuple[str, str, str, int, int], ...] = (
    ("mlp", "mlp", "two_cluster", 512, 0),
    ("lenet5", "lenet5", "mnist", 128, 28),
    ("alexnet-imagenet", "alexnet", "imagenet", 64, 224),
    ("vgg11-cifar", "vgg11", "cifar100", 128, 32),
    ("vgg16-imagenet", "vgg16", "imagenet", 32, 224),
    ("inception-cifar", "inception_small", "cifar100", 128, 32),
    ("resnet18-imagenet", "resnet18", "imagenet", 32, 224),
    ("resnet50-imagenet", "resnet50", "imagenet", 16, 224),
)


@dataclass
class Fig5Result:
    """Per-model breakdowns for the "typical DNNs" figure."""

    breakdowns: List[OccupationBreakdown] = field(default_factory=list)
    sessions: Dict[str, SessionResult] = field(default_factory=dict)

    def rows(self) -> List[Dict[str, object]]:
        """One report row per model: total footprint and per-bucket fractions."""
        return [dict(label=b.label, total_bytes=b.total_bytes, **b.fractions())
                for b in self.breakdowns]

    def parameters_always_minor(self, threshold: float = 0.5) -> bool:
        """The paper's claim: parameters are a small fraction for every model."""
        return all(b.fraction("parameters") <= threshold for b in self.breakdowns)

    def intermediates_dominant_count(self) -> int:
        """How many models have intermediate results as the largest bucket."""
        count = 0
        for b in self.breakdowns:
            fractions = b.fractions()
            if max(fractions, key=fractions.get) == "intermediate results":
                count += 1
        return count

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "num_models": len(self.breakdowns),
            "parameters_always_minor": self.parameters_always_minor(),
            "intermediates_dominant_count": self.intermediates_dominant_count(),
            "rows": self.rows(),
        }


def fig5_config(label: str, model: str, dataset: str, batch_size: int,
                input_size: int,
                num_classes_override: Optional[int] = None) -> TrainingRunConfig:
    """The training configuration of one Figure-5 workload tuple."""
    kwargs: Dict[str, Optional[int]] = {}
    if model not in ("mlp", "paper_mlp"):
        kwargs["input_size"] = input_size or None
        kwargs["num_classes"] = (num_classes_override
                                 if num_classes_override is not None
                                 else DATASET_NUM_CLASSES[dataset])
    config = breakdown_config(model=model, dataset=dataset, batch_size=batch_size,
                              input_size=kwargs.get("input_size"),
                              num_classes=kwargs.get("num_classes"))
    config.label = label
    return config


def fig5_scenarios(workloads: Optional[Sequence[Tuple[str, str, str, int, int]]] = None,
                   num_classes_override: Optional[int] = None) -> List[Scenario]:
    """The concrete sweep points behind Figure 5 (one per workload tuple)."""
    workloads = workloads if workloads is not None else DEFAULT_FIG5_WORKLOADS
    return [Scenario(config=fig5_config(*workload,
                                        num_classes_override=num_classes_override))
            for workload in workloads]


def run_fig5(workloads: Optional[Sequence[Tuple[str, str, str, int, int]]] = None,
             num_classes_override: Optional[int] = None) -> Fig5Result:
    """Profile every model of the Figure-5 family and compute its breakdown."""
    workloads = workloads if workloads is not None else DEFAULT_FIG5_WORKLOADS
    result = Fig5Result()
    for workload in workloads:
        label = workload[0]
        config = fig5_config(*workload, num_classes_override=num_classes_override)
        session = run_training_session(config)
        breakdown = occupation_breakdown(session.trace, label=label)
        result.breakdowns.append(breakdown)
        result.sessions[label] = session
    return result
