"""Trace-template replay: compile one structure, re-price thousands of scenarios.

Symbolic execution (PR 4) made a run's *event structure* — which blocks are
allocated, accessed and freed, in which order, at which addresses — a pure
function of the workload (model, batch size, allocator, replica count),
while simulated *time* is that structure priced under the timing axes
(device spec, host dispatch overhead, interconnect).  A sweep over pricing
axes therefore re-simulates the same structure over and over, only to
multiply different constants into the same event stream.

This module splits the two:

* :func:`compile_template` runs the simulation **once** per structure with a
  :class:`~repro.device.tape.TimingTape` attached to every replica clock,
  and captures a :class:`TraceTemplate`: the columnar event log, the timing
  atoms behind every clock advance, the event→atom correspondence, block
  lifetimes, iteration spans, and the structural scalars (peaks, parameter
  bytes, allocator counters).
* :meth:`TraceTemplate.replay` re-derives every timestamp for a *different*
  pricing point as a handful of vectorized NumPy transforms — re-price the
  atoms from the target device spec, resolve cross-rank collectives with
  barrier semantics, gather event times by tape position — and reduces the
  result to the exact :class:`~repro.experiments.sweep.ScenarioResult` a
  fresh simulation would produce.  No kernels run, no allocator decisions
  are replayed; ``tests/test_replay_equivalence.py`` pins bit-identical
  equality against fresh symbolic runs.
* :class:`ReplayEngine` memoizes templates (in memory, and optionally as
  content-hashed ``.npz`` files next to the sweep cache) and prices
  scenarios on demand; :class:`~repro.experiments.sweep.SweepRunner` routes
  ``--execution replay`` scenarios through it, falling back to a fresh
  symbolic run whenever a template is structurally invalid for the target
  (different memory capacity that changed allocator behavior, inconsistent
  capture, swap engine on).

Single-rank swap-off scenarios take an additional fast path: the ATI
pairing, the occupation breakdown's cumulative sums and the live-bytes peak
are *structural* for a single rank (their event order never depends on
timestamps), so they are precomputed at compile time and a replay only
recomputes the interval gaps, the distribution summary and Eq.-1 screening
— microseconds instead of milliseconds per scenario.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ati import IntervalArrays, compute_interval_arrays, summarize_values_us
from ..core.breakdown import occupation_breakdown
from ..core.events import BlockLifetime, IterationMark, MemoryEventKind
from ..core.swap import BandwidthConfig, swappable_fraction
from ..core.trace import CATEGORY_FROM_CODE, KIND_CODES, EventColumns, MemoryTrace, merge_rank_traces
from ..device.spec import get_device_spec
from ..device.tape import (
    SYNC_KINDS,
    TAPE_ALLOC_OVERHEAD,
    TAPE_ALLREDUCE,
    TAPE_CONST,
    TAPE_KERNEL,
    TAPE_MEMCPY_D2H,
    TAPE_MEMCPY_H2D,
    TAPE_SEGMENT_OVERHEAD,
    TimingTape,
)
from ..train.session import (
    SessionResult,
    TrainingRunConfig,
    build_cluster,
    run_training_session,
)
from ..train.trainer import IterationStats

#: Version of the persisted template format; bump to invalidate stored templates.
TEMPLATE_SCHEMA_VERSION = 1

_SEGMENT_FREE_CODE = KIND_CODES[MemoryEventKind.SEGMENT_FREE]
_MALLOC_CODE = KIND_CODES[MemoryEventKind.MALLOC]
_FREE_CODE = KIND_CODES[MemoryEventKind.FREE]

#: Config fields that price a run without changing its structure.  They are
#: excluded from the template identity, so one compiled structure serves
#: every combination of them.
PRICING_FIELDS = ("label", "device_spec", "host_dispatch_overhead_ns",
                  "interconnect", "allreduce_algorithm", "device_memory_capacity")


class TemplateError(Exception):
    """A capture cannot be turned into (or served as) a replayable template."""


# -- template identity ----------------------------------------------------------------


def template_fingerprint(config: TrainingRunConfig) -> Dict[str, object]:
    """Canonical JSON-friendly *structural* identity of a training config.

    Everything that shapes the event stream stays; the pricing axes
    (:data:`PRICING_FIELDS`) are dropped, and the legacy ``"virtual"``
    execution mode is normalized to its synonym ``"symbolic"``.
    """
    from dataclasses import asdict

    if config.swap != "off":
        raise TemplateError("swap-execution runs are not replayable")
    structural = asdict(config)
    for name in PRICING_FIELDS:
        structural.pop(name, None)
    structural.pop("host_latency", None)
    if structural.get("execution_mode") == "virtual":
        structural["execution_mode"] = "symbolic"
    return {"template_schema": TEMPLATE_SCHEMA_VERSION, "config": structural}


def template_key(config: TrainingRunConfig) -> str:
    """Content hash of the structural fingerprint (the template file stem)."""
    import hashlib

    canonical = json.dumps(template_fingerprint(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- capture --------------------------------------------------------------------------


class _TemplateCapture:
    """Session hook that attaches one timing tape per replica clock."""

    def __init__(self) -> None:
        self.tapes: List[TimingTape] = []
        self.profilers = None
        self.rank_traces = None

    def attach(self, group) -> None:
        self.tapes = [TimingTape(device.clock) for device in group]

    def collect(self, group=None, profilers=None, trainer=None,
                rank_traces=None) -> None:
        self.profilers = profilers
        self.rank_traces = rank_traces

    def detach(self) -> None:
        for tape in self.tapes:
            tape.detach()


@dataclass
class RankTemplate:
    """One replica's captured structure: event columns, tape atoms, lifetimes."""

    # timing tape (one entry per clock advance)
    tape_kind: np.ndarray          # int64
    tape_duration_ns: np.ndarray   # int64 (verbatim for CONST; ignored otherwise)
    tape_nbytes: np.ndarray        # int64 (memcpy / allreduce payloads)
    tape_flops: np.ndarray         # float64 (kernel roofline inputs)
    tape_bytes_moved: np.ndarray   # float64
    # event columns (timestamps re-derived at replay)
    event_kind: np.ndarray         # int64
    event_block: np.ndarray        # int64
    event_address: np.ndarray      # int64
    event_size: np.ndarray         # int64
    event_category: np.ndarray     # int64
    event_iteration: np.ndarray    # int64
    event_tape_pos: np.ndarray     # int64: atoms preceding each event
    event_tags: List[str]
    event_ops: List[str]
    # iteration marks: index plus [begin, end] tape positions
    mark_indices: List[int]
    mark_spans: np.ndarray         # int64 (k, 2)
    # block lifetimes: 8 parallel int64 rows (see _LT_* indices) + tags
    lifetimes: np.ndarray          # int64 (8, m)
    lifetime_tags: List[str]
    #: Pre-attach clock time as whole segment reservations (best-fit arena).
    preamble_segments: int


# row indices of RankTemplate.lifetimes
_LT_BLOCK, _LT_ADDRESS, _LT_SIZE, _LT_CATEGORY, _LT_ITERATION, \
    _LT_ACCESS, _LT_MALLOC_IDX, _LT_FREE_IDX = range(8)


def _capture_rank(recorder, trace: MemoryTrace, tape: TimingTape) -> RankTemplate:
    """Freeze one replica's recorder + tape into a :class:`RankTemplate`."""
    if not tape.consistent:
        raise TemplateError("timing tape saw unannotated or mismatched advances")
    cols = trace.columns()
    tags, ops = trace.event_strings()
    positions = np.asarray(recorder.event_tape_positions, dtype=np.int64)
    if positions.size != len(cols):
        raise TemplateError("event/tape correspondence is incomplete")
    spans = recorder.mark_tape_spans
    if len(spans) != len(trace.iteration_marks) or any(e < 0 for _, e in spans):
        raise TemplateError("iteration mark spans are incomplete")

    # Lifetimes: malloc events pair 1:1 with lifetimes in recording order;
    # frees are matched through an open-block walk (handles id reuse).
    malloc_positions = np.flatnonzero(cols.kind_code == _MALLOC_CODE)
    if malloc_positions.size != len(trace.lifetimes):
        raise TemplateError("lifetime/malloc correspondence is incomplete")
    m = len(trace.lifetimes)
    lifetimes = np.full((8, m), -1, dtype=np.int64)
    open_blocks: Dict[int, int] = {}
    next_lifetime = 0
    kind_list = cols.kind_code.tolist()
    block_list = cols.block_id.tolist()
    for pos, kind in enumerate(kind_list):
        if kind == _MALLOC_CODE:
            open_blocks[block_list[pos]] = next_lifetime
            lifetimes[_LT_MALLOC_IDX, next_lifetime] = pos
            next_lifetime += 1
        elif kind == _FREE_CODE:
            index = open_blocks.pop(block_list[pos], None)
            if index is not None:
                lifetimes[_LT_FREE_IDX, index] = pos
    lifetime_tags = []
    from ..core.trace import CATEGORY_CODES
    for i, lifetime in enumerate(trace.lifetimes):
        lifetimes[_LT_BLOCK, i] = lifetime.block_id
        lifetimes[_LT_ADDRESS, i] = lifetime.address
        lifetimes[_LT_SIZE, i] = lifetime.size
        lifetimes[_LT_CATEGORY, i] = CATEGORY_CODES[lifetime.category]
        lifetimes[_LT_ITERATION, i] = lifetime.iteration
        lifetimes[_LT_ACCESS, i] = lifetime.access_count
        lifetime_tags.append(lifetime.tag)

    return RankTemplate(
        tape_kind=np.asarray(tape.kind, dtype=np.int64),
        tape_duration_ns=np.asarray(tape.duration_ns, dtype=np.int64),
        tape_nbytes=np.asarray(tape.nbytes, dtype=np.int64),
        tape_flops=np.asarray(tape.flops, dtype=np.float64),
        tape_bytes_moved=np.asarray(tape.bytes_moved, dtype=np.float64),
        event_kind=cols.kind_code.copy(),
        event_block=cols.block_id.copy(),
        event_address=(cols.address.copy() if cols.address is not None
                       else np.zeros(len(cols), dtype=np.int64)),
        event_size=cols.size.copy(),
        event_category=cols.category_code.copy(),
        event_iteration=cols.iteration.copy(),
        event_tape_pos=positions,
        event_tags=list(tags),
        event_ops=list(ops),
        mark_indices=[mark.index for mark in trace.iteration_marks],
        mark_spans=np.asarray(spans, dtype=np.int64).reshape(len(spans), 2),
        lifetimes=lifetimes,
        lifetime_tags=lifetime_tags,
        preamble_segments=-1,  # filled by the caller (needs the compile spec)
    )

# -- the template ---------------------------------------------------------------------


@dataclass
class _FastPath:
    """Single-rank precomputations whose event order is timestamp-free."""

    ati: Optional[IntervalArrays]      # interval_ns holds compile-time gaps (unused)
    ati_start_pos: np.ndarray          # positions into the event stream
    ati_end_pos: np.ndarray
    breakdown: object                  # OccupationBreakdown with peak_time_ns=0
    peak_event_pos: int                # event position of the occupancy peak (-1: none)
    peak_live_bytes: int
    num_events: int
    num_blocks: int


class TraceTemplate:
    """One compiled structure: everything needed to re-price it in bulk.

    ``meta`` carries the structural scalars (allocator name, capacities,
    peaks, parameter bytes, allocator counters, per-iteration statistics);
    ``ranks`` carries the per-replica arrays.  Construction validates the
    capture (consistent tapes, matching cross-rank sync sequences) and, for
    single-rank templates, precomputes the timestamp-free reductions.
    """

    def __init__(self, key: str, meta: Dict[str, object],
                 ranks: Sequence[RankTemplate]):
        self.key = key
        self.meta = dict(meta)
        self.ranks = list(ranks)
        if not self.ranks:
            raise TemplateError("a template needs at least one rank")
        self._validate_syncs()
        self.fast = self._precompute_fast() if len(self.ranks) == 1 else None

    # -- validation -------------------------------------------------------------------

    def _validate_syncs(self) -> None:
        """Cross-rank sync atoms must agree in kind and payload, rank by rank."""
        sync_mask = [np.isin(rank.tape_kind, SYNC_KINDS) for rank in self.ranks]
        self.sync_pos = [np.flatnonzero(mask) for mask in sync_mask]
        kinds = [rank.tape_kind[pos] for rank, pos in zip(self.ranks, self.sync_pos)]
        payloads = [rank.tape_nbytes[pos] for rank, pos in zip(self.ranks, self.sync_pos)]
        first_kinds, first_payloads = kinds[0], payloads[0]
        for other_kinds, other_payloads in zip(kinds[1:], payloads[1:]):
            if (other_kinds.size != first_kinds.size
                    or not np.array_equal(other_kinds, first_kinds)
                    or not np.array_equal(other_payloads, first_payloads)):
                raise TemplateError("ranks disagree on the collective sequence")
        self.sync_kinds = first_kinds
        self.sync_nbytes = first_payloads

    def valid_for(self, config: TrainingRunConfig) -> bool:
        """Whether this structure also holds under ``config``'s memory capacity.

        Capacity is the one pricing axis that can feed back into structure
        (allocator OOM handling, best-fit arena sizing), so a template is
        only served when the target capacity provably cannot have changed
        the capture:

        * ``caching``: same capacity, or the capture never released a
          segment (no cache-flush pressure) and its reserved peak fits;
        * ``bump``: same capacity, or the reserved peak fits (its segments
          mirror allocation sizes, independent of the headroom);
        * ``best_fit`` (and anything unknown): same capacity only — the
          arena layout is itself a function of the capacity.
        """
        spec = get_device_spec(config.device_spec)
        capacity = (config.device_memory_capacity
                    if config.device_memory_capacity is not None
                    else spec.memory_capacity)
        compile_capacity = int(self.meta["compile_capacity"])
        if capacity == compile_capacity:
            return True
        allocator = self.meta["allocator"]
        fits = capacity >= int(self.meta["peak_reserved_validity"])
        if allocator == "caching":
            return fits and not self.meta["has_segment_free"]
        if allocator == "bump":
            return fits
        return False

    # -- timestamp-free precompute (single rank) --------------------------------------

    def _structural_trace(self) -> MemoryTrace:
        """The single rank's trace with zeroed timestamps (structure only)."""
        rank = self.ranks[0]
        n = len(rank.event_kind)
        columns = EventColumns(
            event_id=np.arange(n, dtype=np.int64),
            kind_code=rank.event_kind,
            timestamp_ns=np.zeros(n, dtype=np.int64),
            block_id=rank.event_block,
            size=rank.event_size,
            category_code=rank.event_category,
            iteration=rank.event_iteration,
            device_rank=np.zeros(n, dtype=np.int64),
            address=rank.event_address,
        )
        return MemoryTrace(columns=columns, event_tags=list(rank.event_tags),
                           event_ops=list(rank.event_ops))

    def _precompute_fast(self) -> Optional[_FastPath]:
        trace = self._structural_trace()
        if trace.is_empty:
            return None
        cols = trace.columns()
        arrays = compute_interval_arrays(trace)
        breakdown = occupation_breakdown(trace, label="")
        mask = cols.is_malloc | cols.is_free
        positions = np.flatnonzero(mask)
        if positions.size:
            live = np.cumsum(cols.live_deltas()[mask])
            peak_event_pos = int(positions[int(np.argmax(live))])
            peak_live = int(max(0, live.max()))
        else:
            peak_event_pos, peak_live = -1, 0
        return _FastPath(
            ati=arrays,
            ati_start_pos=arrays.start_index,
            ati_end_pos=arrays.end_index,
            breakdown=breakdown,
            peak_event_pos=peak_event_pos,
            peak_live_bytes=peak_live,
            num_events=len(trace),
            num_blocks=len(trace.block_ids()),
        )

    # -- re-pricing -------------------------------------------------------------------

    def _reprice_atoms(self, rank: RankTemplate, spec,
                       host_dispatch_ns: int) -> np.ndarray:
        """Vectorized duration of every tape atom under ``spec`` (syncs zeroed).

        Reproduces :class:`~repro.device.timing.KernelTimingModel` exactly:
        ``np.rint`` matches Python's banker's ``round`` on the same float
        expressions, so re-priced durations are bit-identical to what a
        fresh simulation advances the clock by.
        """
        kind = rank.tape_kind
        out = np.zeros(kind.size, dtype=np.int64)

        const_mask = kind == TAPE_CONST
        out[const_mask] = rank.tape_duration_ns[const_mask]

        kernel_mask = kind == TAPE_KERNEL
        if kernel_mask.any():
            flops = rank.tape_flops[kernel_mask]
            moved = rank.tape_bytes_moved[kernel_mask]
            effective_flops = spec.peak_flops * 0.65
            effective_bw = spec.memory_bandwidth * 0.75
            compute_ns = np.where(flops != 0.0, 1e9 * flops / effective_flops, 0.0)
            memory_ns = np.where(moved != 0.0, 1e9 * moved / effective_bw, 0.0)
            busy = np.maximum(compute_ns, memory_ns)
            out[kernel_mask] = (
                np.rint(spec.kernel_launch_overhead_ns + busy).astype(np.int64)
                + host_dispatch_ns)

        for mask_kind, bandwidth in ((TAPE_MEMCPY_H2D, spec.h2d_bandwidth),
                                     (TAPE_MEMCPY_D2H, spec.d2h_bandwidth)):
            copy_mask = kind == mask_kind
            if copy_mask.any():
                nbytes = rank.tape_nbytes[copy_mask]
                transfer = np.where(nbytes != 0, 1e9 * nbytes / bandwidth, 0.0)
                out[copy_mask] = np.rint(
                    spec.memcpy_launch_overhead_ns + transfer).astype(np.int64)

        out[kind == TAPE_ALLOC_OVERHEAD] = spec.allocator_overhead_ns
        out[kind == TAPE_SEGMENT_OVERHEAD] = spec.cuda_malloc_overhead_ns
        # sync atoms stay 0; they are resolved with barrier semantics below
        return out

    def _resolve_times(self, spec, host_dispatch_ns: int,
                       cluster) -> Tuple[List[np.ndarray], List[int]]:
        """Absolute clock time after every atom, with collectives resolved.

        Returns one ``(n_atoms + 1)``-long array per rank — entry ``i`` is
        the clock right after atom ``i - 1`` (entry 0 is the post-preamble
        start time), so an event at tape position ``p`` happened at
        ``times[p]`` — plus the resolved per-sync costs.
        """
        pres: List[np.ndarray] = []
        for rank in self.ranks:
            effective = self._reprice_atoms(rank, spec, host_dispatch_ns)
            pres.append(np.concatenate((np.zeros(1, dtype=np.int64),
                                        np.cumsum(effective))))
        offsets = [int(rank.preamble_segments) * spec.cuda_malloc_overhead_ns
                   for rank in self.ranks]

        n_ranks = len(self.ranks)
        sync_costs: List[int] = []
        # Segment boundaries: each sync splits a rank's timeline; between two
        # syncs the times are offset + prefix-sum (vectorized per segment).
        segment_offsets: List[List[Tuple[int, int]]] = [
            [(0, offsets[r])] for r in range(n_ranks)]
        for j in range(int(self.sync_kinds.size)):
            arrivals = [offsets[r] + int(pres[r][self.sync_pos[r][j]])
                        for r in range(n_ranks)]
            start = max(arrivals)
            if int(self.sync_kinds[j]) == TAPE_ALLREDUCE:
                cost = cluster.allreduce_time_ns(int(self.sync_nbytes[j]))
            else:
                cost = 0
            end = start + cost
            sync_costs.append(cost)
            for r in range(n_ranks):
                position = int(self.sync_pos[r][j])
                offsets[r] = end - int(pres[r][position])
                segment_offsets[r].append((position + 1, offsets[r]))

        times: List[np.ndarray] = []
        for r in range(n_ranks):
            absolute = pres[r].copy()
            boundaries = segment_offsets[r] + [(absolute.size, 0)]
            for (begin, offset), (stop, _) in zip(boundaries, boundaries[1:]):
                absolute[begin:stop] += offset
            times.append(absolute)
        return times, sync_costs

    # -- replay -----------------------------------------------------------------------

    @staticmethod
    def _host_dispatch_ns(config: TrainingRunConfig) -> int:
        if config.host_dispatch_overhead_ns is not None:
            return int(config.host_dispatch_overhead_ns)
        return 6_000  # KernelTimingModel's default

    @staticmethod
    def _scenario_dict(config: TrainingRunConfig,
                       swap_policy: str) -> Dict[str, object]:
        """The identifying fields block of a result (mirrors ``run_scenario``)."""
        return {
            "model": config.model,
            "dataset": config.dataset,
            "batch_size": config.batch_size,
            "iterations": config.iterations,
            "allocator": config.allocator,
            "swap_policy": swap_policy,
            "device_spec": config.device_spec,
            "dtype": config.dtype,
            "n_devices": config.n_devices,
            "interconnect": config.interconnect,
            "swap": config.swap,
            "device_memory_capacity": config.device_memory_capacity,
            "execution_mode": config.execution_mode,
            "seed": config.seed,
        }

    def replay(self, scenario, bandwidths: BandwidthConfig,
               started: float):
        """Price one scenario from this template; returns a ``ScenarioResult``.

        Exactness contract: every field except ``wall_time_s`` equals what
        :func:`~repro.experiments.sweep.run_scenario` produces for the same
        scenario, bit for bit.
        """
        config = scenario.config
        cluster = build_cluster(config)
        spec = cluster.device
        times, sync_costs = self._resolve_times(
            spec, self._host_dispatch_ns(config), cluster)
        stats = self.meta["allocator_stats"]
        peak_reserved = int(stats.get("peak_reserved_bytes",
                                      self.meta["peak_reserved_bytes"]))
        if (self.fast is not None and scenario.swap_policy == "none"
                and peak_reserved > 0):
            return self._fast_result(scenario, bandwidths, times[0], started)
        session = self._rebuild_session(config, cluster, times, sync_costs)
        from .sweep import reduce_session
        return reduce_session(scenario, bandwidths, session, started)

    def _fast_result(self, scenario, bandwidths: BandwidthConfig,
                     absolute: np.ndarray, started: float):
        """Single-rank, policy-free replay: no trace object is ever built."""
        from .sweep import ScenarioResult

        config = scenario.config
        rank = self.ranks[0]
        fast = self.fast
        timestamps = absolute[rank.event_tape_pos]
        gaps = timestamps[fast.ati_end_pos] - timestamps[fast.ati_start_pos]
        arrays = replace(fast.ati, interval_ns=gaps)
        ati_summary = summarize_values_us(arrays.interval_us)

        label = config.label or config.describe()
        peak_time = (int(timestamps[fast.peak_event_pos])
                     if fast.peak_event_pos >= 0 else 0)
        breakdown = replace(fast.breakdown, label=label, peak_time_ns=peak_time)

        spans = rank.mark_spans
        durations_s = [int(end - start) / 1e9
                       for start, end in zip(absolute[spans[:, 0]],
                                             absolute[spans[:, 1]])]
        total_s = float(sum(durations_s))

        stats = {k: int(v) for k, v in self.meta["allocator_stats"].items()}
        peak_reserved = int(stats.get("peak_reserved_bytes",
                                      self.meta["peak_reserved_bytes"]))
        peak_allocated = int(stats.get("peak_allocated_bytes",
                                       self.meta["peak_allocated_bytes"]))
        return ScenarioResult(
            scenario=self._scenario_dict(config, scenario.swap_policy),
            key=scenario.key(bandwidths),
            peak_allocated_bytes=int(self.meta["peak_allocated_bytes"]),
            peak_reserved_bytes=int(self.meta["peak_reserved_bytes"]),
            peak_live_bytes=int(fast.peak_live_bytes),
            parameter_bytes=int(self.meta["parameter_bytes"]),
            parameter_count=int(self.meta["parameter_count"]),
            num_events=int(fast.num_events),
            num_blocks=int(fast.num_blocks),
            step_time_s_mean=total_s / len(durations_s) if durations_s else 0.0,
            step_time_s_total=total_s,
            ati=ati_summary.to_dict(),
            swappable_fraction=swappable_fraction(arrays, bandwidths),
            swap=None,  # the "none" policy evaluates to None by definition
            breakdown=breakdown.to_dict(),
            allocator_stats=stats,
            mean_utilization=float(peak_allocated / peak_reserved),
            wall_time_s=time.perf_counter() - started,
            collective=None,
            swap_execution=None,
        )

    # -- full trace rebuild (multi-rank or policy evaluation) -------------------------

    def _rebuild_session(self, config: TrainingRunConfig, cluster,
                         times: List[np.ndarray],
                         sync_costs: List[int]) -> SessionResult:
        """Reconstruct the session a fresh run would have produced.

        Per-rank traces are rebuilt with replayed timestamps and merged with
        the *real* :func:`~repro.core.trace.merge_rank_traces` (the merged
        event order is timestamp-dependent, so it must be recomputed), and
        the result feeds the real per-scenario reduction unchanged.
        """
        n_ranks = len(self.ranks)
        spec = cluster.device
        base_metadata = {
            "workload": config.describe(),
            "model": config.model,
            "dataset": config.dataset,
            "batch_size": config.batch_size,
            "iterations": config.iterations,
            "n_devices": n_ranks,
        }
        if n_ranks > 1:
            base_metadata["interconnect"] = config.interconnect
            base_metadata["allreduce_algorithm"] = config.allreduce_algorithm

        rank_traces: List[MemoryTrace] = []
        for rank_index, rank in enumerate(self.ranks):
            absolute = times[rank_index]
            timestamps = absolute[rank.event_tape_pos]
            n_events = timestamps.size
            columns = EventColumns(
                event_id=np.arange(n_events, dtype=np.int64),
                kind_code=rank.event_kind,
                timestamp_ns=timestamps.astype(np.int64),
                block_id=rank.event_block,
                size=rank.event_size,
                category_code=rank.event_category,
                iteration=rank.event_iteration,
                device_rank=np.zeros(n_events, dtype=np.int64),
                address=rank.event_address,
            )
            lifetimes = []
            table, tags = rank.lifetimes, rank.lifetime_tags
            for i in range(table.shape[1]):
                free_idx = int(table[_LT_FREE_IDX, i])
                lifetimes.append(BlockLifetime(
                    block_id=int(table[_LT_BLOCK, i]),
                    address=int(table[_LT_ADDRESS, i]),
                    size=int(table[_LT_SIZE, i]),
                    category=CATEGORY_FROM_CODE[int(table[_LT_CATEGORY, i])],
                    tag=tags[i],
                    malloc_ns=int(timestamps[int(table[_LT_MALLOC_IDX, i])]),
                    free_ns=(int(timestamps[free_idx]) if free_idx >= 0 else None),
                    iteration=int(table[_LT_ITERATION, i]),
                    access_count=int(table[_LT_ACCESS, i]),
                ))
            marks = [IterationMark(index=index,
                                   start_ns=int(absolute[span[0]]),
                                   end_ns=int(absolute[span[1]]))
                     for index, span in zip(rank.mark_indices, rank.mark_spans)]
            metadata = {
                "device": spec.to_dict(),
                "allocator": self.meta["allocator_name"],
                "execution_mode": config.execution_mode,
                **base_metadata,
                "device_rank": rank_index,
            }
            rank_traces.append(MemoryTrace(
                columns=columns,
                event_tags=list(rank.event_tags),
                event_ops=list(rank.event_ops),
                lifetimes=lifetimes,
                iteration_marks=marks,
                metadata=metadata,
                end_ns=int(absolute[-1]),
            ))

        merged = merge_rank_traces(rank_traces)

        mark_by_index = {mark.index: mark for mark in merged.iteration_marks}
        iteration_stats = []
        for entry in self.meta["iteration_stats"]:
            mark = mark_by_index[int(entry["index"])]
            iteration_stats.append(IterationStats(
                index=int(entry["index"]),
                loss=entry["loss"],
                start_ns=int(mark.start_ns),
                end_ns=int(mark.end_ns),
                allocated_bytes_end=int(entry["allocated_bytes_end"]),
                peak_allocated_bytes=int(entry["peak_allocated_bytes"]),
                reserved_bytes_end=int(entry["reserved_bytes_end"]),
            ))

        collective = None
        if n_ranks > 1:
            allreduce = self.sync_kinds == TAPE_ALLREDUCE
            count = int(allreduce.sum())
            total_ns = int(sum(cost for cost, kind
                               in zip(sync_costs, self.sync_kinds.tolist())
                               if kind == TAPE_ALLREDUCE))
            collective = {
                "count": count,
                "world_size": n_ranks,
                "algorithm": cluster.allreduce_algorithm,
                "interconnect": cluster.interconnect.name,
                "total_bytes": int(self.sync_nbytes[allreduce].sum()),
                "total_time_ns": total_ns,
                "mean_time_ns": (total_ns / count) if count else 0.0,
            }

        return SessionResult(
            config=config,
            trace=merged,
            iteration_stats=iteration_stats,
            parameter_bytes=int(self.meta["parameter_bytes"]),
            parameter_count=int(self.meta["parameter_count"]),
            peak_allocated_bytes=int(self.meta["peak_allocated_bytes"]),
            peak_reserved_bytes=int(self.meta["peak_reserved_bytes"]),
            allocator_stats={k: int(v)
                             for k, v in self.meta["allocator_stats"].items()},
            n_devices=n_ranks,
            collective=collective,
            rank_traces=(rank_traces if n_ranks > 1 else None),
            swap_execution=None,
        )

    def replay_trace(self, config: TrainingRunConfig) -> MemoryTrace:
        """Rebuild the merged trace under ``config``'s pricing (test helper)."""
        cluster = build_cluster(config)
        times, sync_costs = self._resolve_times(
            cluster.device, self._host_dispatch_ns(config), cluster)
        return self._rebuild_session(config, cluster, times, sync_costs).trace


# -- compilation ----------------------------------------------------------------------


def compile_template(config: TrainingRunConfig) -> Optional[TraceTemplate]:
    """Run the simulation once and capture its structure as a template.

    Returns ``None`` when the configuration is outside the replay envelope
    (swap execution on, a host-latency model attached, eager numerics) or
    when the capture turns out not to be replayable (a timing atom the tape
    could not attribute, ranks disagreeing on the collective sequence) —
    callers fall back to fresh simulation.
    """
    if (config.swap != "off" or config.host_latency is not None
            or config.execution_mode not in ("symbolic", "virtual")):
        return None
    key = template_key(config)
    compile_config = replace(config, execution_mode="symbolic")
    capture = _TemplateCapture()
    try:
        session = run_training_session(compile_config, capture=capture)
    finally:
        capture.detach()

    spec = build_cluster(compile_config).device
    try:
        ranks = []
        for profiler, trace, tape in zip(capture.profilers, capture.rank_traces,
                                         capture.tapes):
            rank = _capture_rank(profiler.recorder, trace, tape)
            preamble = tape.preamble_segments(spec.cuda_malloc_overhead_ns)
            if preamble < 0:
                raise TemplateError("pre-attach clock time is not whole segments")
            rank.preamble_segments = preamble
            ranks.append(rank)
        allocator_stats = {k: int(v) for k, v in session.allocator_stats.items()}
        has_segment_free = (
            allocator_stats.get("segment_frees", 0) > 0
            or any(bool((rank.event_kind == _SEGMENT_FREE_CODE).any())
                   for rank in ranks))
        meta = {
            "schema": TEMPLATE_SCHEMA_VERSION,
            "allocator": config.allocator,
            "allocator_name": session.trace.metadata.get("allocator",
                                                         config.allocator),
            "n_ranks": len(ranks),
            "compile_capacity": int(spec.memory_capacity),
            "has_segment_free": bool(has_segment_free),
            "peak_reserved_validity": int(session.peak_reserved_bytes),
            "peak_allocated_bytes": int(session.peak_allocated_bytes),
            "peak_reserved_bytes": int(session.peak_reserved_bytes),
            "parameter_bytes": int(session.parameter_bytes),
            "parameter_count": int(session.parameter_count),
            "allocator_stats": allocator_stats,
            "iteration_stats": [
                {"index": stats.index, "loss": stats.loss,
                 "allocated_bytes_end": int(stats.allocated_bytes_end),
                 "peak_allocated_bytes": int(stats.peak_allocated_bytes),
                 "reserved_bytes_end": int(stats.reserved_bytes_end)}
                for stats in session.iteration_stats
            ],
        }
        return TraceTemplate(key, meta, ranks)
    except TemplateError:
        return None


# -- persistence ----------------------------------------------------------------------

_RANK_ARRAYS = ("tape_kind", "tape_duration_ns", "tape_nbytes", "tape_flops",
                "tape_bytes_moved", "event_kind", "event_block", "event_address",
                "event_size", "event_category", "event_iteration",
                "event_tape_pos", "mark_spans", "lifetimes")


def save_template(template: TraceTemplate, path: Path) -> None:
    """Persist a template as a single ``.npz`` (numeric arrays + JSON header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    header = {
        "schema": TEMPLATE_SCHEMA_VERSION,
        "key": template.key,
        "meta": template.meta,
        "ranks": [],
    }
    for index, rank in enumerate(template.ranks):
        for name in _RANK_ARRAYS:
            arrays[f"r{index}_{name}"] = getattr(rank, name)
        header["ranks"].append({
            "event_tags": rank.event_tags,
            "event_ops": rank.event_ops,
            "mark_indices": rank.mark_indices,
            "lifetime_tags": rank.lifetime_tags,
            "preamble_segments": rank.preamble_segments,
        })
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    tmp = path.with_name(path.name + ".tmp.npz")
    np.savez(tmp, **arrays)
    tmp.replace(path)


def load_template(path: Path, key: Optional[str] = None) -> Optional[TraceTemplate]:
    """Load a persisted template; ``None`` on any mismatch or corruption."""
    try:
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            if header.get("schema") != TEMPLATE_SCHEMA_VERSION:
                return None
            if key is not None and header.get("key") != key:
                return None
            ranks = []
            for index, info in enumerate(header["ranks"]):
                columns = {name: np.array(data[f"r{index}_{name}"])
                           for name in _RANK_ARRAYS}
                ranks.append(RankTemplate(
                    event_tags=[str(tag) for tag in info["event_tags"]],
                    event_ops=[str(op) for op in info["event_ops"]],
                    mark_indices=[int(i) for i in info["mark_indices"]],
                    lifetime_tags=[str(tag) for tag in info["lifetime_tags"]],
                    preamble_segments=int(info["preamble_segments"]),
                    **columns,
                ))
            return TraceTemplate(header["key"], header["meta"], ranks)
    except Exception:
        return None


# -- the engine -----------------------------------------------------------------------


class ReplayEngine:
    """Compile-once / replay-many scenario pricer.

    Templates are memoized per structural key; when ``template_dir`` is set
    (the sweep runner points it next to its result cache) they are also
    persisted as ``<key>.npz`` so later processes skip compilation entirely.
    A memoized ``None`` marks a structure that failed to compile, so the
    sweep only pays the attempted compilation once.
    """

    def __init__(self, template_dir: Optional[Path] = None):
        self.template_dir = Path(template_dir) if template_dir is not None else None
        self._templates: Dict[str, Optional[TraceTemplate]] = {}
        self.templates_compiled = 0
        self.replayed = 0

    def template_for(self, config: TrainingRunConfig) -> Optional[TraceTemplate]:
        """The (possibly cached) template for ``config``'s structural key."""
        try:
            key = template_key(config)
        except TemplateError:
            return None
        if key in self._templates:
            return self._templates[key]
        template = None
        if self.template_dir is not None:
            path = self.template_dir / f"{key}.npz"
            if path.is_file():
                template = load_template(path, key=key)
        if template is None:
            template = compile_template(config)
            if template is not None:
                self.templates_compiled += 1
                if self.template_dir is not None:
                    save_template(template, self.template_dir / f"{key}.npz")
        self._templates[key] = template
        return template

    def price(self, scenario, bandwidths: BandwidthConfig):
        """Replay-price one sweep scenario; ``None`` means "simulate it fresh"."""
        config = scenario.config
        if (config.swap != "off" or config.host_latency is not None
                or config.execution_mode not in ("symbolic", "virtual")):
            return None
        template = self.template_for(config)
        if template is None or not template.valid_for(config):
            return None
        started = time.perf_counter()
        result = template.replay(scenario, bandwidths, started)
        self.replayed += 1
        return result

    def replay_trace(self, config: TrainingRunConfig) -> Optional[MemoryTrace]:
        """Rebuild the merged trace for ``config`` (test/debug helper)."""
        template = self.template_for(config)
        if template is None or not template.valid_for(config):
            return None
        return template.replay_trace(config)
