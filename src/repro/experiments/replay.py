"""Trace-template replay: compile one structure, re-price thousands of scenarios.

Symbolic execution (PR 4) made a run's *event structure* — which blocks are
allocated, accessed and freed, in which order, at which addresses — a pure
function of the workload (model, batch size, allocator, replica count),
while simulated *time* is that structure priced under the timing axes
(device spec, host dispatch overhead, interconnect).  A sweep over pricing
axes therefore re-simulates the same structure over and over, only to
multiply different constants into the same event stream.

This module splits the two:

* :func:`compile_template` runs the simulation **once** per structure with a
  :class:`~repro.device.tape.TimingTape` attached to every replica clock,
  and captures a :class:`TraceTemplate`: the columnar event log, the timing
  atoms behind every clock advance, the event→atom correspondence, block
  lifetimes, iteration spans, and the structural scalars (peaks, parameter
  bytes, allocator counters).
* :meth:`TraceTemplate.replay` re-derives every timestamp for a *different*
  pricing point as a handful of vectorized NumPy transforms — re-price the
  atoms from the target device spec, resolve cross-rank collectives with
  barrier semantics, gather event times by tape position — and reduces the
  result to the exact :class:`~repro.experiments.sweep.ScenarioResult` a
  fresh simulation would produce.  No kernels run, no allocator decisions
  are replayed; ``tests/test_replay_equivalence.py`` pins bit-identical
  equality against fresh symbolic runs.
* :class:`ReplayEngine` memoizes templates (in memory, and optionally as
  content-hashed ``.npz`` files next to the sweep cache) and prices
  scenarios on demand; :class:`~repro.experiments.sweep.SweepRunner` routes
  ``--execution replay`` scenarios through it, falling back to a fresh
  symbolic run whenever a template is structurally invalid for the target
  (different memory capacity that changed allocator behavior, inconsistent
  capture, swap engine on).

Single-rank swap-off scenarios take an additional fast path: the ATI
pairing, the occupation breakdown's cumulative sums and the live-bytes peak
are *structural* for a single rank (their event order never depends on
timestamps), so they are precomputed at compile time and a replay only
recomputes the interval gaps, the distribution summary and Eq.-1 screening
— microseconds instead of milliseconds per scenario.

Three layers push whole grids through one template:

* **Batched repricing** — :meth:`TraceTemplate.replay_batch` stacks the
  pricing-axis parameters of S scenarios (roofline inputs, bandwidths,
  dispatch overheads) into per-scenario rows and re-derives every duration,
  timestamp, ATI gap and distribution summary for all of them in one
  ``(S × atoms)`` int64 broadcast over the tape — the per-scenario loop
  through ``_reprice_atoms``/``_resolve_times`` survives only as the
  fallback for multi-rank or policy-carrying scenarios.
* **Dtype-generalized templates** — ``dtype`` is a *generalized* axis, not
  a structural one: one :class:`TemplateFamily` (one structural key) holds
  lazily-captured per-dtype :class:`TraceTemplate` variants, because AMP
  master-weight allocations give fp16 a genuinely different event stream
  (a recorded structural delta, captured once, stored against the base
  variant's arrays) rather than a reason to fall back.
* **Template-store index** — :class:`~repro.experiments.template_store.TemplateStore`
  fronts the ``.npz`` files with a JSON manifest (O(1) lookup, LRU bound,
  atomic publish) so parallel sweep workers and persistent pools share
  templates safely.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.ati import (AtiSummary, IntervalArrays, compute_interval_arrays,
                        summarize_values_us)
from ..core.breakdown import occupation_breakdown
from ..core.events import BlockLifetime, IterationMark, MemoryEventKind
from ..core.swap import BandwidthConfig, swappable_fraction
from ..core.trace import CATEGORY_FROM_CODE, KIND_CODES, EventColumns, MemoryTrace, merge_rank_traces
from ..device.spec import get_device_spec
from ..device.tape import (
    SYNC_KINDS,
    atom_index_table,
    TAPE_ALLOC_OVERHEAD,
    TAPE_ALLREDUCE,
    TAPE_CONST,
    TAPE_KERNEL,
    TAPE_MEMCPY_D2H,
    TAPE_MEMCPY_H2D,
    TAPE_SEGMENT_OVERHEAD,
    TimingTape,
)
from ..train.session import (
    SessionResult,
    TrainingRunConfig,
    build_cluster,
    run_training_session,
)
from ..train.trainer import IterationStats

#: Version of the persisted template format; bump to invalidate stored templates.
#: v2: dtype-generalized families — ``dtype`` left the structural fingerprint
#: and one ``.npz`` holds every captured per-dtype variant (shared arrays
#: stored once, dtype-specific deltas stored against the base variant).
TEMPLATE_SCHEMA_VERSION = 2

_SEGMENT_FREE_CODE = KIND_CODES[MemoryEventKind.SEGMENT_FREE]
_MALLOC_CODE = KIND_CODES[MemoryEventKind.MALLOC]
_FREE_CODE = KIND_CODES[MemoryEventKind.FREE]

#: Config fields that price a run without changing its structure.  They are
#: excluded from the template identity, so one compiled structure serves
#: every combination of them.
PRICING_FIELDS = ("label", "device_spec", "host_dispatch_overhead_ns",
                  "interconnect", "allreduce_algorithm", "device_memory_capacity")

#: Config fields that *do* change the event structure but are generalized
#: within one :class:`TemplateFamily` instead of splitting the template key:
#: each value gets its own captured variant under the shared key (for
#: ``dtype``, the AMP master-weight allocations are a structural delta worth
#: one extra capture — not a reason to compile a whole new family).
GENERALIZED_FIELDS = ("dtype",)


class TemplateError(Exception):
    """A capture cannot be turned into (or served as) a replayable template.

    ``reason`` is a stable machine-readable code (``swap_execution``,
    ``host_latency``, ``eager_mode``, ``capture_inconsistent``,
    ``capacity_mismatch``, ``compile_failed``) surfaced by the sweep CLI so
    fallbacks to fresh simulation are explained, not silent.
    """

    def __init__(self, message: str, reason: str = "not_replayable"):
        super().__init__(message)
        self.reason = reason


# -- template identity ----------------------------------------------------------------


def template_fingerprint(config: TrainingRunConfig) -> Dict[str, object]:
    """Canonical JSON-friendly *structural* identity of a training config.

    Everything that shapes the event stream stays; the pricing axes
    (:data:`PRICING_FIELDS`) are dropped, the generalized axes
    (:data:`GENERALIZED_FIELDS` — served by per-value variants within one
    :class:`TemplateFamily`) are dropped, and the legacy ``"virtual"``
    execution mode is normalized to its synonym ``"symbolic"``.
    """
    if config.swap != "off":
        raise TemplateError("swap-execution runs are not replayable",
                            reason="swap_execution")
    structural = config.to_dict()
    for name in PRICING_FIELDS + GENERALIZED_FIELDS:
        structural.pop(name, None)
    structural.pop("host_latency", None)
    if structural.get("execution_mode") == "virtual":
        structural["execution_mode"] = "symbolic"
    return {"template_schema": TEMPLATE_SCHEMA_VERSION, "config": structural}


def template_key(config: TrainingRunConfig) -> str:
    """Content hash of the structural fingerprint (the template file stem)."""
    import hashlib

    canonical = json.dumps(template_fingerprint(config), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# -- capture --------------------------------------------------------------------------


class _TemplateCapture:
    """Session hook that attaches one timing tape per replica clock."""

    def __init__(self) -> None:
        self.tapes: List[TimingTape] = []
        self.profilers = None
        self.rank_traces = None

    def attach(self, group) -> None:
        self.tapes = [TimingTape(device.clock) for device in group]

    def collect(self, group=None, profilers=None, trainer=None,
                rank_traces=None) -> None:
        self.profilers = profilers
        self.rank_traces = rank_traces

    def detach(self) -> None:
        for tape in self.tapes:
            tape.detach()


@dataclass
class RankTemplate:
    """One replica's captured structure: event columns, tape atoms, lifetimes."""

    # timing tape (one entry per clock advance)
    tape_kind: np.ndarray          # int64
    tape_duration_ns: np.ndarray   # int64 (verbatim for CONST; ignored otherwise)
    tape_nbytes: np.ndarray        # int64 (memcpy / allreduce payloads)
    tape_flops: np.ndarray         # float64 (kernel roofline inputs)
    tape_bytes_moved: np.ndarray   # float64
    # event columns (timestamps re-derived at replay)
    event_kind: np.ndarray         # int64
    event_block: np.ndarray        # int64
    event_address: np.ndarray      # int64
    event_size: np.ndarray         # int64
    event_category: np.ndarray     # int64
    event_iteration: np.ndarray    # int64
    event_tape_pos: np.ndarray     # int64: atoms preceding each event
    event_tags: List[str]
    event_ops: List[str]
    # iteration marks: index plus [begin, end] tape positions
    mark_indices: List[int]
    mark_spans: np.ndarray         # int64 (k, 2)
    # block lifetimes: 8 parallel int64 rows (see _LT_* indices) + tags
    lifetimes: np.ndarray          # int64 (8, m)
    lifetime_tags: List[str]
    #: Pre-attach clock time as whole segment reservations (best-fit arena).
    preamble_segments: int


# row indices of RankTemplate.lifetimes
_LT_BLOCK, _LT_ADDRESS, _LT_SIZE, _LT_CATEGORY, _LT_ITERATION, \
    _LT_ACCESS, _LT_MALLOC_IDX, _LT_FREE_IDX = range(8)


def _capture_rank(recorder, trace: MemoryTrace, tape: TimingTape) -> RankTemplate:
    """Freeze one replica's recorder + tape into a :class:`RankTemplate`."""
    if not tape.consistent:
        raise TemplateError("timing tape saw unannotated or mismatched advances",
                            reason="capture_inconsistent")
    cols = trace.columns()
    tags, ops = trace.event_strings()
    positions = np.asarray(recorder.event_tape_positions, dtype=np.int64)
    if positions.size != len(cols):
        raise TemplateError("event/tape correspondence is incomplete",
                            reason="capture_inconsistent")
    spans = recorder.mark_tape_spans
    if len(spans) != len(trace.iteration_marks) or any(e < 0 for _, e in spans):
        raise TemplateError("iteration mark spans are incomplete",
                            reason="capture_inconsistent")

    # Lifetimes: malloc events pair 1:1 with lifetimes in recording order;
    # frees are matched to the most recent open malloc of the same block id
    # (id reuse) with one stable sort instead of a Python open-block walk: a
    # stable sort by block id keeps each block's malloc/free events in stream
    # order, so a free pairs with its malloc exactly when the malloc is its
    # immediate same-block predecessor.
    malloc_positions = np.flatnonzero(cols.kind_code == _MALLOC_CODE)
    if malloc_positions.size != len(trace.lifetimes):
        raise TemplateError("lifetime/malloc correspondence is incomplete",
                            reason="capture_inconsistent")
    m = len(trace.lifetimes)
    lifetimes = np.full((8, m), -1, dtype=np.int64)
    lifetimes[_LT_MALLOC_IDX, :] = malloc_positions
    access_pos = np.flatnonzero((cols.kind_code == _MALLOC_CODE)
                                | (cols.kind_code == _FREE_CODE))
    if access_pos.size:
        order = np.argsort(cols.block_id[access_pos], kind="stable")
        sorted_pos = access_pos[order]
        sorted_block = cols.block_id[access_pos][order]
        sorted_is_malloc = cols.kind_code[sorted_pos] == _MALLOC_CODE
        follows_open_malloc = np.zeros(sorted_pos.size, dtype=bool)
        follows_open_malloc[1:] = (sorted_is_malloc[:-1]
                                   & (sorted_block[1:] == sorted_block[:-1]))
        paired_free = ~sorted_is_malloc & follows_open_malloc
        if paired_free.any():
            free_rows = np.flatnonzero(paired_free)
            matched = np.searchsorted(malloc_positions,
                                      sorted_pos[free_rows - 1])
            lifetimes[_LT_FREE_IDX, matched] = sorted_pos[free_rows]
    lifetime_tags = []
    from ..core.trace import CATEGORY_CODES
    for i, lifetime in enumerate(trace.lifetimes):
        lifetimes[_LT_BLOCK, i] = lifetime.block_id
        lifetimes[_LT_ADDRESS, i] = lifetime.address
        lifetimes[_LT_SIZE, i] = lifetime.size
        lifetimes[_LT_CATEGORY, i] = CATEGORY_CODES[lifetime.category]
        lifetimes[_LT_ITERATION, i] = lifetime.iteration
        lifetimes[_LT_ACCESS, i] = lifetime.access_count
        lifetime_tags.append(lifetime.tag)

    return RankTemplate(
        tape_kind=np.asarray(tape.kind, dtype=np.int64),
        tape_duration_ns=np.asarray(tape.duration_ns, dtype=np.int64),
        tape_nbytes=np.asarray(tape.nbytes, dtype=np.int64),
        tape_flops=np.asarray(tape.flops, dtype=np.float64),
        tape_bytes_moved=np.asarray(tape.bytes_moved, dtype=np.float64),
        event_kind=cols.kind_code.copy(),
        event_block=cols.block_id.copy(),
        event_address=(cols.address.copy() if cols.address is not None
                       else np.zeros(len(cols), dtype=np.int64)),
        event_size=cols.size.copy(),
        event_category=cols.category_code.copy(),
        event_iteration=cols.iteration.copy(),
        event_tape_pos=positions,
        event_tags=list(tags),
        event_ops=list(ops),
        mark_indices=[mark.index for mark in trace.iteration_marks],
        mark_spans=np.asarray(spans, dtype=np.int64).reshape(len(spans), 2),
        lifetimes=lifetimes,
        lifetime_tags=lifetime_tags,
        preamble_segments=-1,  # filled by the caller (needs the compile spec)
    )

# -- the template ---------------------------------------------------------------------


@dataclass
class _FastPath:
    """Single-rank precomputations whose event order is timestamp-free."""

    ati: Optional[IntervalArrays]      # interval_ns holds compile-time gaps (unused)
    ati_start_pos: np.ndarray          # positions into the event stream
    ati_end_pos: np.ndarray
    breakdown: object                  # OccupationBreakdown with peak_time_ns=0
    peak_event_pos: int                # event position of the occupancy peak (-1: none)
    peak_live_bytes: int
    num_events: int
    num_blocks: int


@dataclass
class _BatchArrays:
    """Per-template gather tables for the batched ``(S × atoms)`` repricing.

    Everything here is a pure function of the captured structure: per-kind
    atom positions (so a batch prices each kind with one fancy-indexed
    assignment instead of a boolean mask per scenario), the pre-scaled
    roofline numerators, and the *tape* positions behind the ATI pairs,
    iteration spans and occupancy peak (so timestamps are gathered straight
    from the ``(S, atoms+1)`` prefix-sum matrix, never materializing the
    per-scenario event timestamp vector).
    """

    const_idx: np.ndarray
    const_dur: np.ndarray
    kernel_idx: np.ndarray
    kernel_flops9: np.ndarray      # 1e9 * flops (roofline numerator), float64
    kernel_flops_nz: np.ndarray    # bool: flops != 0
    kernel_moved9: np.ndarray
    kernel_moved_nz: np.ndarray
    h2d_idx: np.ndarray
    h2d_bytes9: np.ndarray
    h2d_nz: np.ndarray
    d2h_idx: np.ndarray
    d2h_bytes9: np.ndarray
    d2h_nz: np.ndarray
    alloc_idx: np.ndarray
    segment_idx: np.ndarray
    ati_start_tape: np.ndarray     # tape positions of each ATI pair's endpoints
    ati_end_tape: np.ndarray
    ati_size: np.ndarray           # block bytes behind each ATI pair (Eq. 1)
    span_begin: np.ndarray         # iteration spans as tape positions
    span_end: np.ndarray
    peak_tape_pos: int             # tape position of the occupancy peak (-1: none)
    breakdown_base: Dict[str, object]
    stats_base: Dict[str, int]
    mean_utilization: float


class TraceTemplate:
    """One compiled structure: everything needed to re-price it in bulk.

    ``meta`` carries the structural scalars (allocator name, capacities,
    peaks, parameter bytes, allocator counters, per-iteration statistics);
    ``ranks`` carries the per-replica arrays.  Construction validates the
    capture (consistent tapes, matching cross-rank sync sequences) and, for
    single-rank templates, precomputes the timestamp-free reductions.
    """

    def __init__(self, key: str, meta: Dict[str, object],
                 ranks: Sequence[RankTemplate]):
        self.key = key
        self.meta = dict(meta)
        self.ranks = list(ranks)
        if not self.ranks:
            raise TemplateError("a template needs at least one rank",
                                reason="capture_inconsistent")
        self._validate_syncs()
        self.fast = self._precompute_fast() if len(self.ranks) == 1 else None
        self._batch: Optional[_BatchArrays] = None  # built on first replay_batch

    @property
    def dtype(self) -> str:
        """Training precision this variant was captured under."""
        return str(self.meta.get("dtype", "float32"))

    # -- validation -------------------------------------------------------------------

    def _validate_syncs(self) -> None:
        """Cross-rank sync atoms must agree in kind and payload, rank by rank."""
        sync_mask = [np.isin(rank.tape_kind, SYNC_KINDS) for rank in self.ranks]
        self.sync_pos = [np.flatnonzero(mask) for mask in sync_mask]
        kinds = [rank.tape_kind[pos] for rank, pos in zip(self.ranks, self.sync_pos)]
        payloads = [rank.tape_nbytes[pos] for rank, pos in zip(self.ranks, self.sync_pos)]
        first_kinds, first_payloads = kinds[0], payloads[0]
        for other_kinds, other_payloads in zip(kinds[1:], payloads[1:]):
            if (other_kinds.size != first_kinds.size
                    or not np.array_equal(other_kinds, first_kinds)
                    or not np.array_equal(other_payloads, first_payloads)):
                raise TemplateError("ranks disagree on the collective sequence",
                                    reason="capture_inconsistent")
        self.sync_kinds = first_kinds
        self.sync_nbytes = first_payloads

    def valid_for(self, config: TrainingRunConfig) -> bool:
        """Whether this structure also holds under ``config``'s memory capacity.

        Capacity is the one pricing axis that can feed back into structure
        (allocator OOM handling, best-fit arena sizing), so a template is
        only served when the target capacity provably cannot have changed
        the capture:

        * ``caching``: same capacity, or the capture never released a
          segment (no cache-flush pressure) and its reserved peak fits;
        * ``bump``: same capacity, or the reserved peak fits (its segments
          mirror allocation sizes, independent of the headroom);
        * ``best_fit`` (and anything unknown): same capacity only — the
          arena layout is itself a function of the capacity.
        """
        spec = get_device_spec(config.device_spec)
        capacity = (config.device_memory_capacity
                    if config.device_memory_capacity is not None
                    else spec.memory_capacity)
        compile_capacity = int(self.meta["compile_capacity"])
        if capacity == compile_capacity:
            return True
        allocator = self.meta["allocator"]
        fits = capacity >= int(self.meta["peak_reserved_validity"])
        if allocator == "caching":
            return fits and not self.meta["has_segment_free"]
        if allocator == "bump":
            return fits
        return False

    # -- timestamp-free precompute (single rank) --------------------------------------

    def _structural_trace(self) -> MemoryTrace:
        """The single rank's trace with zeroed timestamps (structure only)."""
        rank = self.ranks[0]
        n = len(rank.event_kind)
        columns = EventColumns(
            event_id=np.arange(n, dtype=np.int64),
            kind_code=rank.event_kind,
            timestamp_ns=np.zeros(n, dtype=np.int64),
            block_id=rank.event_block,
            size=rank.event_size,
            category_code=rank.event_category,
            iteration=rank.event_iteration,
            device_rank=np.zeros(n, dtype=np.int64),
            address=rank.event_address,
        )
        return MemoryTrace(columns=columns, event_tags=list(rank.event_tags),
                           event_ops=list(rank.event_ops))

    def _precompute_fast(self) -> Optional[_FastPath]:
        trace = self._structural_trace()
        if trace.is_empty:
            return None
        cols = trace.columns()
        arrays = compute_interval_arrays(trace)
        breakdown = occupation_breakdown(trace, label="")
        mask = cols.is_malloc | cols.is_free
        positions = np.flatnonzero(mask)
        if positions.size:
            live = np.cumsum(cols.live_deltas()[mask])
            peak_event_pos = int(positions[int(np.argmax(live))])
            peak_live = int(max(0, live.max()))
        else:
            peak_event_pos, peak_live = -1, 0
        return _FastPath(
            ati=arrays,
            ati_start_pos=arrays.start_index,
            ati_end_pos=arrays.end_index,
            breakdown=breakdown,
            peak_event_pos=peak_event_pos,
            peak_live_bytes=peak_live,
            num_events=len(trace),
            num_blocks=len(trace.block_ids()),
        )

    # -- re-pricing -------------------------------------------------------------------

    def _reprice_atoms(self, rank: RankTemplate, spec,
                       host_dispatch_ns: int) -> np.ndarray:
        """Vectorized duration of every tape atom under ``spec`` (syncs zeroed).

        Reproduces :class:`~repro.device.timing.KernelTimingModel` exactly:
        ``np.rint`` matches Python's banker's ``round`` on the same float
        expressions, so re-priced durations are bit-identical to what a
        fresh simulation advances the clock by.
        """
        kind = rank.tape_kind
        out = np.zeros(kind.size, dtype=np.int64)

        const_mask = kind == TAPE_CONST
        out[const_mask] = rank.tape_duration_ns[const_mask]

        kernel_mask = kind == TAPE_KERNEL
        if kernel_mask.any():
            flops = rank.tape_flops[kernel_mask]
            moved = rank.tape_bytes_moved[kernel_mask]
            effective_flops = spec.peak_flops * 0.65
            effective_bw = spec.memory_bandwidth * 0.75
            compute_ns = np.where(flops != 0.0, 1e9 * flops / effective_flops, 0.0)
            memory_ns = np.where(moved != 0.0, 1e9 * moved / effective_bw, 0.0)
            busy = np.maximum(compute_ns, memory_ns)
            out[kernel_mask] = (
                np.rint(spec.kernel_launch_overhead_ns + busy).astype(np.int64)
                + host_dispatch_ns)

        for mask_kind, bandwidth in ((TAPE_MEMCPY_H2D, spec.h2d_bandwidth),
                                     (TAPE_MEMCPY_D2H, spec.d2h_bandwidth)):
            copy_mask = kind == mask_kind
            if copy_mask.any():
                nbytes = rank.tape_nbytes[copy_mask]
                transfer = np.where(nbytes != 0, 1e9 * nbytes / bandwidth, 0.0)
                out[copy_mask] = np.rint(
                    spec.memcpy_launch_overhead_ns + transfer).astype(np.int64)

        out[kind == TAPE_ALLOC_OVERHEAD] = spec.allocator_overhead_ns
        out[kind == TAPE_SEGMENT_OVERHEAD] = spec.cuda_malloc_overhead_ns
        # sync atoms stay 0; they are resolved with barrier semantics below
        return out

    def _resolve_times(self, spec, host_dispatch_ns: int,
                       cluster) -> Tuple[List[np.ndarray], List[int]]:
        """Absolute clock time after every atom, with collectives resolved.

        Returns one ``(n_atoms + 1)``-long array per rank — entry ``i`` is
        the clock right after atom ``i - 1`` (entry 0 is the post-preamble
        start time), so an event at tape position ``p`` happened at
        ``times[p]`` — plus the resolved per-sync costs.
        """
        pres: List[np.ndarray] = []
        for rank in self.ranks:
            effective = self._reprice_atoms(rank, spec, host_dispatch_ns)
            pres.append(np.concatenate((np.zeros(1, dtype=np.int64),
                                        np.cumsum(effective))))
        offsets = [int(rank.preamble_segments) * spec.cuda_malloc_overhead_ns
                   for rank in self.ranks]

        n_ranks = len(self.ranks)
        sync_costs: List[int] = []
        # Segment boundaries: each sync splits a rank's timeline; between two
        # syncs the times are offset + prefix-sum (vectorized per segment).
        segment_offsets: List[List[Tuple[int, int]]] = [
            [(0, offsets[r])] for r in range(n_ranks)]
        for j in range(int(self.sync_kinds.size)):
            arrivals = [offsets[r] + int(pres[r][self.sync_pos[r][j]])
                        for r in range(n_ranks)]
            start = max(arrivals)
            if int(self.sync_kinds[j]) == TAPE_ALLREDUCE:
                cost = cluster.allreduce_time_ns(int(self.sync_nbytes[j]))
            else:
                cost = 0
            end = start + cost
            sync_costs.append(cost)
            for r in range(n_ranks):
                position = int(self.sync_pos[r][j])
                offsets[r] = end - int(pres[r][position])
                segment_offsets[r].append((position + 1, offsets[r]))

        times: List[np.ndarray] = []
        for r in range(n_ranks):
            absolute = pres[r].copy()
            boundaries = segment_offsets[r] + [(absolute.size, 0)]
            for (begin, offset), (stop, _) in zip(boundaries, boundaries[1:]):
                absolute[begin:stop] += offset
            times.append(absolute)
        return times, sync_costs

    # -- replay -----------------------------------------------------------------------

    @staticmethod
    def _host_dispatch_ns(config: TrainingRunConfig) -> int:
        if config.host_dispatch_overhead_ns is not None:
            return int(config.host_dispatch_overhead_ns)
        return 6_000  # KernelTimingModel's default

    @staticmethod
    def _scenario_dict(config: TrainingRunConfig,
                       swap_policy: str) -> Dict[str, object]:
        """The identifying fields block of a result (mirrors ``run_scenario``)."""
        return {
            "model": config.model,
            "dataset": config.dataset,
            "batch_size": config.batch_size,
            "iterations": config.iterations,
            "allocator": config.allocator,
            "swap_policy": swap_policy,
            "device_spec": config.device_spec,
            "dtype": config.dtype,
            "n_devices": config.n_devices,
            "interconnect": config.interconnect,
            "swap": config.swap,
            "device_memory_capacity": config.device_memory_capacity,
            "execution_mode": config.execution_mode,
            "seed": config.seed,
        }

    def replay(self, scenario, bandwidths: BandwidthConfig,
               started: float):
        """Price one scenario from this template; returns a ``ScenarioResult``.

        Exactness contract: every field except ``wall_time_s`` equals what
        :func:`~repro.experiments.sweep.run_scenario` produces for the same
        scenario, bit for bit.
        """
        config = scenario.config
        cluster = build_cluster(config)
        spec = cluster.device
        times, sync_costs = self._resolve_times(
            spec, self._host_dispatch_ns(config), cluster)
        stats = self.meta["allocator_stats"]
        peak_reserved = int(stats.get("peak_reserved_bytes",
                                      self.meta["peak_reserved_bytes"]))
        if (self.fast is not None and scenario.swap_policy == "none"
                and peak_reserved > 0):
            return self._fast_result(scenario, bandwidths, times[0], started)
        session = self._rebuild_session(config, cluster, times, sync_costs)
        from .sweep import reduce_session
        return reduce_session(scenario, bandwidths, session, started)

    def _fast_result(self, scenario, bandwidths: BandwidthConfig,
                     absolute: np.ndarray, started: float):
        """Single-rank, policy-free replay: no trace object is ever built."""
        from .sweep import ScenarioResult

        config = scenario.config
        rank = self.ranks[0]
        fast = self.fast
        timestamps = absolute[rank.event_tape_pos]
        gaps = timestamps[fast.ati_end_pos] - timestamps[fast.ati_start_pos]
        arrays = replace(fast.ati, interval_ns=gaps)
        ati_summary = summarize_values_us(arrays.interval_us)

        label = config.label or config.describe()
        peak_time = (int(timestamps[fast.peak_event_pos])
                     if fast.peak_event_pos >= 0 else 0)
        breakdown = replace(fast.breakdown, label=label, peak_time_ns=peak_time)

        spans = rank.mark_spans
        durations_s = [int(end - start) / 1e9
                       for start, end in zip(absolute[spans[:, 0]],
                                             absolute[spans[:, 1]])]
        total_s = float(sum(durations_s))

        stats = {k: int(v) for k, v in self.meta["allocator_stats"].items()}
        peak_reserved = int(stats.get("peak_reserved_bytes",
                                      self.meta["peak_reserved_bytes"]))
        peak_allocated = int(stats.get("peak_allocated_bytes",
                                       self.meta["peak_allocated_bytes"]))
        return ScenarioResult(
            scenario=self._scenario_dict(config, scenario.swap_policy),
            key=scenario.key(bandwidths),
            peak_allocated_bytes=int(self.meta["peak_allocated_bytes"]),
            peak_reserved_bytes=int(self.meta["peak_reserved_bytes"]),
            peak_live_bytes=int(fast.peak_live_bytes),
            parameter_bytes=int(self.meta["parameter_bytes"]),
            parameter_count=int(self.meta["parameter_count"]),
            num_events=int(fast.num_events),
            num_blocks=int(fast.num_blocks),
            step_time_s_mean=total_s / len(durations_s) if durations_s else 0.0,
            step_time_s_total=total_s,
            ati=ati_summary.to_dict(),
            swappable_fraction=swappable_fraction(arrays, bandwidths),
            swap=None,  # the "none" policy evaluates to None by definition
            breakdown=breakdown.to_dict(),
            allocator_stats=stats,
            mean_utilization=float(peak_allocated / peak_reserved),
            wall_time_s=time.perf_counter() - started,
            collective=None,
            swap_execution=None,
        )

    # -- batched repricing ------------------------------------------------------------

    def _batch_arrays(self) -> _BatchArrays:
        """Build (once) the gather tables behind :meth:`replay_batch`."""
        if self._batch is None:
            rank = self.ranks[0]
            fast = self.fast
            table = atom_index_table(rank.tape_kind)
            empty = np.empty(0, dtype=np.int64)
            const_idx = table.get(TAPE_CONST, empty)
            kernel_idx = table.get(TAPE_KERNEL, empty)
            h2d_idx = table.get(TAPE_MEMCPY_H2D, empty)
            d2h_idx = table.get(TAPE_MEMCPY_D2H, empty)
            kernel_flops = rank.tape_flops[kernel_idx]
            kernel_moved = rank.tape_bytes_moved[kernel_idx]
            h2d_bytes = rank.tape_nbytes[h2d_idx]
            d2h_bytes = rank.tape_nbytes[d2h_idx]
            event_pos = rank.event_tape_pos
            stats_base = {k: int(v)
                          for k, v in self.meta["allocator_stats"].items()}
            peak_reserved = int(stats_base.get(
                "peak_reserved_bytes", self.meta["peak_reserved_bytes"]))
            peak_allocated = int(stats_base.get(
                "peak_allocated_bytes", self.meta["peak_allocated_bytes"]))
            self._batch = _BatchArrays(
                const_idx=const_idx,
                const_dur=rank.tape_duration_ns[const_idx],
                kernel_idx=kernel_idx,
                kernel_flops9=1e9 * kernel_flops,
                kernel_flops_nz=kernel_flops != 0.0,
                kernel_moved9=1e9 * kernel_moved,
                kernel_moved_nz=kernel_moved != 0.0,
                h2d_idx=h2d_idx,
                h2d_bytes9=1e9 * h2d_bytes,
                h2d_nz=h2d_bytes != 0,
                d2h_idx=d2h_idx,
                d2h_bytes9=1e9 * d2h_bytes,
                d2h_nz=d2h_bytes != 0,
                alloc_idx=table.get(TAPE_ALLOC_OVERHEAD, empty),
                segment_idx=table.get(TAPE_SEGMENT_OVERHEAD, empty),
                ati_start_tape=event_pos[fast.ati_start_pos],
                ati_end_tape=event_pos[fast.ati_end_pos],
                ati_size=fast.ati.size,
                span_begin=rank.mark_spans[:, 0],
                span_end=rank.mark_spans[:, 1],
                peak_tape_pos=(int(event_pos[fast.peak_event_pos])
                               if fast.peak_event_pos >= 0 else -1),
                breakdown_base=fast.breakdown.to_dict(),
                stats_base=stats_base,
                mean_utilization=float(peak_allocated / peak_reserved),
            )
        return self._batch

    def replay_batch(self, scenarios: Sequence[object],
                     bandwidths_list: Sequence[BandwidthConfig],
                     started: Optional[float] = None) -> List[object]:
        """Price a whole grid of scenarios of this structure in one pass.

        Every scenario that qualifies for the single-rank fast path is priced
        through one ``(S × atoms)`` int64 broadcast (durations, prefix-sum
        timestamps, ATI gaps, distribution summaries, Eq.-1 screening all
        batched along axis 0); the rest fall back to the scalar
        :meth:`replay` element by element.  The returned list is parallel to
        ``scenarios`` and element-for-element bit-identical to what scalar
        :meth:`replay` — and therefore a fresh symbolic simulation — would
        produce (``wall_time_s`` aside).
        """
        if started is None:
            started = time.perf_counter()
        results: List[object] = [None] * len(scenarios)
        stats = self.meta["allocator_stats"]
        peak_reserved = int(stats.get("peak_reserved_bytes",
                                      self.meta["peak_reserved_bytes"]))
        batchable = (self.fast is not None and peak_reserved > 0
                     and self.sync_kinds.size == 0)
        rows = []
        for index, scenario in enumerate(scenarios):
            if batchable and scenario.swap_policy == "none":
                rows.append(index)
            else:
                results[index] = self.replay(scenario, bandwidths_list[index],
                                             time.perf_counter())
        if rows:
            self._replay_batch_fast(scenarios, bandwidths_list, rows, results,
                                    started)
        return results

    def _replay_batch_fast(self, scenarios, bandwidths_list, rows, results,
                           started: float) -> None:
        """Vectorized core of :meth:`replay_batch`: one (S × atoms) broadcast."""
        from .sweep import ScenarioResult

        rank = self.ranks[0]
        fast = self.fast
        batch = self._batch_arrays()
        n_scenarios = len(rows)
        n_atoms = rank.tape_kind.size

        # Stack the pricing-axis parameters, one row per scenario.  Device
        # specs repeat across a grid, so the cluster construction (the only
        # Python-object work per pricing point) is memoized per spec.
        eff_flops = np.empty(n_scenarios)
        eff_bw = np.empty(n_scenarios)
        h2d_bw = np.empty(n_scenarios)
        d2h_bw = np.empty(n_scenarios)
        launch = np.empty(n_scenarios, dtype=np.int64)
        dispatch = np.empty(n_scenarios, dtype=np.int64)
        memcpy_launch = np.empty(n_scenarios, dtype=np.int64)
        alloc_overhead = np.empty(n_scenarios, dtype=np.int64)
        segment_overhead = np.empty(n_scenarios, dtype=np.int64)
        offsets = np.empty(n_scenarios, dtype=np.int64)
        round_trip = np.empty(n_scenarios)
        preamble = int(rank.preamble_segments)
        specs: Dict[Tuple[str, Optional[int]], object] = {}
        for j, i in enumerate(rows):
            config = scenarios[i].config
            spec_key = (config.device_spec, config.device_memory_capacity)
            spec = specs.get(spec_key)
            if spec is None:
                spec = specs[spec_key] = build_cluster(config).device
            eff_flops[j] = spec.peak_flops * 0.65
            eff_bw[j] = spec.memory_bandwidth * 0.75
            h2d_bw[j] = spec.h2d_bandwidth
            d2h_bw[j] = spec.d2h_bandwidth
            launch[j] = spec.kernel_launch_overhead_ns
            dispatch[j] = self._host_dispatch_ns(config)
            memcpy_launch[j] = spec.memcpy_launch_overhead_ns
            alloc_overhead[j] = spec.allocator_overhead_ns
            segment_overhead[j] = spec.cuda_malloc_overhead_ns
            offsets[j] = preamble * spec.cuda_malloc_overhead_ns
            round_trip[j] = bandwidths_list[i].round_trip_s_per_byte

        # Duration of every atom under every scenario: same float expressions
        # as _reprice_atoms, broadcast along axis 0 — bit-identical rows.
        durations = np.zeros((n_scenarios, n_atoms), dtype=np.int64)
        if batch.const_idx.size:
            durations[:, batch.const_idx] = batch.const_dur[None, :]
        if batch.kernel_idx.size:
            compute_ns = np.where(batch.kernel_flops_nz[None, :],
                                  batch.kernel_flops9[None, :] / eff_flops[:, None],
                                  0.0)
            memory_ns = np.where(batch.kernel_moved_nz[None, :],
                                 batch.kernel_moved9[None, :] / eff_bw[:, None],
                                 0.0)
            busy = np.maximum(compute_ns, memory_ns)
            durations[:, batch.kernel_idx] = (
                np.rint(launch[:, None] + busy).astype(np.int64)
                + dispatch[:, None])
        for idx, nonzero, bytes9, bandwidth in (
                (batch.h2d_idx, batch.h2d_nz, batch.h2d_bytes9, h2d_bw),
                (batch.d2h_idx, batch.d2h_nz, batch.d2h_bytes9, d2h_bw)):
            if idx.size:
                transfer = np.where(nonzero[None, :],
                                    bytes9[None, :] / bandwidth[:, None], 0.0)
                durations[:, idx] = np.rint(
                    memcpy_launch[:, None] + transfer).astype(np.int64)
        if batch.alloc_idx.size:
            durations[:, batch.alloc_idx] = alloc_overhead[:, None]
        if batch.segment_idx.size:
            durations[:, batch.segment_idx] = segment_overhead[:, None]

        # Absolute clock time after every atom (entry 0: post-preamble start).
        times = np.empty((n_scenarios, n_atoms + 1), dtype=np.int64)
        times[:, 0] = offsets
        np.cumsum(durations, axis=1, out=times[:, 1:])
        times[:, 1:] += offsets[:, None]

        # Batched reductions: ATI gaps/summary/Eq.-1, peaks, iteration spans.
        gaps = times[:, batch.ati_end_tape] - times[:, batch.ati_start_tape]
        n_intervals = gaps.shape[1]
        if n_intervals:
            values = gaps / 1_000.0
            percentiles = np.percentile(values, (50, 90, 99), axis=1)
            # Row-at-a-time mean: the axis reduction pairs the sum with a
            # different blocking than 1-D ``values.mean()`` and can differ in
            # the last ulp, which would break bit-identity with the scalar
            # path's ``summarize_values_us``.
            means = [float(values[j].mean()) for j in range(n_scenarios)]
            mins = np.min(values, axis=1)
            maxs = np.max(values, axis=1)
            limits = np.maximum(gaps, 0) / 1e9 / round_trip[:, None]
            fractions = np.mean(batch.ati_size[None, :] <= limits, axis=1)
        if batch.peak_tape_pos >= 0:
            peak_times = times[:, batch.peak_tape_pos]
        step_ns = (times[:, batch.span_end] - times[:, batch.span_begin]).tolist()

        for j, i in enumerate(rows):
            scenario = scenarios[i]
            config = scenario.config
            if n_intervals:
                summary = AtiSummary(
                    count=n_intervals, mean_us=float(means[j]),
                    p50_us=float(percentiles[0, j]),
                    p90_us=float(percentiles[1, j]),
                    p99_us=float(percentiles[2, j]),
                    min_us=float(mins[j]), max_us=float(maxs[j]))
                swappable = float(fractions[j])
            else:
                summary = AtiSummary(count=0, mean_us=0.0, p50_us=0.0,
                                     p90_us=0.0, p99_us=0.0, min_us=0.0,
                                     max_us=0.0)
                swappable = 0.0
            label = config.label or config.describe()
            breakdown = dict(batch.breakdown_base)
            breakdown["label"] = label
            breakdown["peak_time_ns"] = (int(peak_times[j])
                                         if batch.peak_tape_pos >= 0 else 0)
            durations_s = [ns / 1e9 for ns in step_ns[j]]
            total_s = float(sum(durations_s))
            results[i] = ScenarioResult(
                scenario=self._scenario_dict(config, scenario.swap_policy),
                key=scenario.key(bandwidths_list[i]),
                peak_allocated_bytes=int(self.meta["peak_allocated_bytes"]),
                peak_reserved_bytes=int(self.meta["peak_reserved_bytes"]),
                peak_live_bytes=int(fast.peak_live_bytes),
                parameter_bytes=int(self.meta["parameter_bytes"]),
                parameter_count=int(self.meta["parameter_count"]),
                num_events=int(fast.num_events),
                num_blocks=int(fast.num_blocks),
                step_time_s_mean=(total_s / len(durations_s)
                                  if durations_s else 0.0),
                step_time_s_total=total_s,
                ati=summary.to_dict(),
                swappable_fraction=swappable,
                swap=None,  # the "none" policy evaluates to None by definition
                breakdown=breakdown,
                allocator_stats=dict(batch.stats_base),
                mean_utilization=batch.mean_utilization,
                wall_time_s=time.perf_counter() - started,
                collective=None,
                swap_execution=None,
            )

    # -- full trace rebuild (multi-rank or policy evaluation) -------------------------

    def _rebuild_session(self, config: TrainingRunConfig, cluster,
                         times: List[np.ndarray],
                         sync_costs: List[int]) -> SessionResult:
        """Reconstruct the session a fresh run would have produced.

        Per-rank traces are rebuilt with replayed timestamps and merged with
        the *real* :func:`~repro.core.trace.merge_rank_traces` (the merged
        event order is timestamp-dependent, so it must be recomputed), and
        the result feeds the real per-scenario reduction unchanged.
        """
        n_ranks = len(self.ranks)
        spec = cluster.device
        base_metadata = {
            "workload": config.describe(),
            "model": config.model,
            "dataset": config.dataset,
            "batch_size": config.batch_size,
            "iterations": config.iterations,
            "n_devices": n_ranks,
        }
        if n_ranks > 1:
            base_metadata["interconnect"] = config.interconnect
            base_metadata["allreduce_algorithm"] = config.allreduce_algorithm

        rank_traces: List[MemoryTrace] = []
        for rank_index, rank in enumerate(self.ranks):
            absolute = times[rank_index]
            timestamps = absolute[rank.event_tape_pos]
            n_events = timestamps.size
            columns = EventColumns(
                event_id=np.arange(n_events, dtype=np.int64),
                kind_code=rank.event_kind,
                timestamp_ns=timestamps.astype(np.int64),
                block_id=rank.event_block,
                size=rank.event_size,
                category_code=rank.event_category,
                iteration=rank.event_iteration,
                device_rank=np.zeros(n_events, dtype=np.int64),
                address=rank.event_address,
            )
            lifetimes = []
            table, tags = rank.lifetimes, rank.lifetime_tags
            for i in range(table.shape[1]):
                free_idx = int(table[_LT_FREE_IDX, i])
                lifetimes.append(BlockLifetime(
                    block_id=int(table[_LT_BLOCK, i]),
                    address=int(table[_LT_ADDRESS, i]),
                    size=int(table[_LT_SIZE, i]),
                    category=CATEGORY_FROM_CODE[int(table[_LT_CATEGORY, i])],
                    tag=tags[i],
                    malloc_ns=int(timestamps[int(table[_LT_MALLOC_IDX, i])]),
                    free_ns=(int(timestamps[free_idx]) if free_idx >= 0 else None),
                    iteration=int(table[_LT_ITERATION, i]),
                    access_count=int(table[_LT_ACCESS, i]),
                ))
            marks = [IterationMark(index=index,
                                   start_ns=int(absolute[span[0]]),
                                   end_ns=int(absolute[span[1]]))
                     for index, span in zip(rank.mark_indices, rank.mark_spans)]
            metadata = {
                "device": spec.to_dict(),
                "allocator": self.meta["allocator_name"],
                "execution_mode": config.execution_mode,
                **base_metadata,
                "device_rank": rank_index,
            }
            rank_traces.append(MemoryTrace(
                columns=columns,
                event_tags=list(rank.event_tags),
                event_ops=list(rank.event_ops),
                lifetimes=lifetimes,
                iteration_marks=marks,
                metadata=metadata,
                end_ns=int(absolute[-1]),
            ))

        merged = merge_rank_traces(rank_traces)

        mark_by_index = {mark.index: mark for mark in merged.iteration_marks}
        iteration_stats = []
        for entry in self.meta["iteration_stats"]:
            mark = mark_by_index[int(entry["index"])]
            iteration_stats.append(IterationStats(
                index=int(entry["index"]),
                loss=entry["loss"],
                start_ns=int(mark.start_ns),
                end_ns=int(mark.end_ns),
                allocated_bytes_end=int(entry["allocated_bytes_end"]),
                peak_allocated_bytes=int(entry["peak_allocated_bytes"]),
                reserved_bytes_end=int(entry["reserved_bytes_end"]),
            ))

        collective = None
        if n_ranks > 1:
            allreduce = self.sync_kinds == TAPE_ALLREDUCE
            count = int(allreduce.sum())
            total_ns = int(sum(cost for cost, kind
                               in zip(sync_costs, self.sync_kinds.tolist())
                               if kind == TAPE_ALLREDUCE))
            collective = {
                "count": count,
                "world_size": n_ranks,
                "algorithm": cluster.allreduce_algorithm,
                "interconnect": cluster.interconnect.name,
                "total_bytes": int(self.sync_nbytes[allreduce].sum()),
                "total_time_ns": total_ns,
                "mean_time_ns": (total_ns / count) if count else 0.0,
            }

        return SessionResult(
            config=config,
            trace=merged,
            iteration_stats=iteration_stats,
            parameter_bytes=int(self.meta["parameter_bytes"]),
            parameter_count=int(self.meta["parameter_count"]),
            peak_allocated_bytes=int(self.meta["peak_allocated_bytes"]),
            peak_reserved_bytes=int(self.meta["peak_reserved_bytes"]),
            allocator_stats={k: int(v)
                             for k, v in self.meta["allocator_stats"].items()},
            n_devices=n_ranks,
            collective=collective,
            rank_traces=(rank_traces if n_ranks > 1 else None),
            swap_execution=None,
        )

    def replay_trace(self, config: TrainingRunConfig) -> MemoryTrace:
        """Rebuild the merged trace under ``config``'s pricing (test helper)."""
        cluster = build_cluster(config)
        times, sync_costs = self._resolve_times(
            cluster.device, self._host_dispatch_ns(config), cluster)
        return self._rebuild_session(config, cluster, times, sync_costs).trace


# -- compilation ----------------------------------------------------------------------


def check_replay_envelope(config: TrainingRunConfig) -> None:
    """Raise a reason-coded :class:`TemplateError` for un-replayable configs."""
    if config.swap != "off":
        raise TemplateError("swap-execution runs are not replayable",
                            reason="swap_execution")
    if config.host_latency is not None:
        raise TemplateError("host-latency models are not replayable",
                            reason="host_latency")
    if config.execution_mode not in ("symbolic", "virtual"):
        raise TemplateError("only symbolic runs can be captured",
                            reason="eager_mode")


def _compile_template_checked(config: TrainingRunConfig) -> TraceTemplate:
    """Run the simulation once and capture its structure as a template.

    Raises a reason-coded :class:`TemplateError` when the configuration is
    outside the replay envelope (swap execution on, a host-latency model
    attached, eager numerics) or when the capture turns out not to be
    replayable (a timing atom the tape could not attribute, ranks
    disagreeing on the collective sequence).
    """
    check_replay_envelope(config)
    key = template_key(config)
    compile_config = replace(config, execution_mode="symbolic")
    capture = _TemplateCapture()
    try:
        session = run_training_session(compile_config, capture=capture)
    finally:
        capture.detach()

    spec = build_cluster(compile_config).device
    ranks = []
    for profiler, trace, tape in zip(capture.profilers, capture.rank_traces,
                                     capture.tapes):
        rank = _capture_rank(profiler.recorder, trace, tape)
        preamble = tape.preamble_segments(spec.cuda_malloc_overhead_ns)
        if preamble < 0:
            raise TemplateError("pre-attach clock time is not whole segments",
                                reason="capture_inconsistent")
        rank.preamble_segments = preamble
        ranks.append(rank)
    allocator_stats = {k: int(v) for k, v in session.allocator_stats.items()}
    has_segment_free = (
        allocator_stats.get("segment_frees", 0) > 0
        or any(bool((rank.event_kind == _SEGMENT_FREE_CODE).any())
               for rank in ranks))
    meta = {
        "schema": TEMPLATE_SCHEMA_VERSION,
        "allocator": config.allocator,
        "allocator_name": session.trace.metadata.get("allocator",
                                                     config.allocator),
        "dtype": config.dtype,
        "n_ranks": len(ranks),
        "compile_capacity": int(spec.memory_capacity),
        "has_segment_free": bool(has_segment_free),
        "peak_reserved_validity": int(session.peak_reserved_bytes),
        "peak_allocated_bytes": int(session.peak_allocated_bytes),
        "peak_reserved_bytes": int(session.peak_reserved_bytes),
        "parameter_bytes": int(session.parameter_bytes),
        "parameter_count": int(session.parameter_count),
        "allocator_stats": allocator_stats,
        "iteration_stats": [
            {"index": stats.index, "loss": stats.loss,
             "allocated_bytes_end": int(stats.allocated_bytes_end),
             "peak_allocated_bytes": int(stats.peak_allocated_bytes),
             "reserved_bytes_end": int(stats.reserved_bytes_end)}
            for stats in session.iteration_stats
        ],
    }
    return TraceTemplate(key, meta, ranks)


def compile_template(config: TrainingRunConfig) -> Optional[TraceTemplate]:
    """Capture ``config``'s structure; ``None`` when it is not replayable.

    Thin ``None``-on-failure wrapper over :func:`_compile_template_checked`
    for callers that do not need the failure reason.
    """
    try:
        return _compile_template_checked(config)
    except TemplateError:
        return None


# -- dtype-generalized families -------------------------------------------------------


class TemplateFamily:
    """Per-dtype :class:`TraceTemplate` variants sharing one structural key.

    ``dtype`` changes the event stream (half-precision tensors allocate
    half-width activations and AMP keeps fp32 master weights), so each dtype
    needs its own captured variant — but the *family* identity, the
    persisted ``.npz`` and the compile accounting are shared: a family is
    compiled once, then widened lazily by one extra capture per new dtype,
    and variants whose arrays match the base variant are persisted as
    references rather than copies.

    ``variants`` maps dtype name to the captured :class:`TraceTemplate`, or
    to ``None`` for a dtype whose capture failed (memoized so a sweep pays
    the failed attempt only once).
    """

    def __init__(self, key: str,
                 variants: Optional[Dict[str, Optional[TraceTemplate]]] = None):
        self.key = key
        self.variants: Dict[str, Optional[TraceTemplate]] = dict(variants or {})
        #: Whether this engine/process ran a fresh capture for the family
        #: (as opposed to loading every variant from the store).
        self.compiled_fresh = False

    def get(self, dtype: str) -> Optional[TraceTemplate]:
        """The captured variant for ``dtype`` (``None`` if absent or failed)."""
        return self.variants.get(dtype)

    def captured_dtypes(self) -> List[str]:
        """Dtypes with a successfully captured variant, sorted."""
        return sorted(dtype for dtype, template in self.variants.items()
                      if template is not None)

    def capture(self, config: TrainingRunConfig) -> TraceTemplate:
        """Capture (and memoize) the variant for ``config.dtype``.

        Raises the capture's reason-coded :class:`TemplateError` on failure
        after memoizing the failure, so repeated requests for a broken dtype
        do not re-run the simulation.
        """
        dtype = config.dtype
        try:
            template = _compile_template_checked(config)
        except TemplateError:
            self.variants[dtype] = None
            raise
        self.variants[dtype] = template
        self.compiled_fresh = True
        return template


# -- persistence ----------------------------------------------------------------------

_RANK_ARRAYS = ("tape_kind", "tape_duration_ns", "tape_nbytes", "tape_flops",
                "tape_bytes_moved", "event_kind", "event_block", "event_address",
                "event_size", "event_category", "event_iteration",
                "event_tape_pos", "mark_spans", "lifetimes")

#: (column group, members) pairs that must agree in length for a persisted
#: rank to be loadable — the torn-write / corruption screen on load.
_TAPE_COLUMNS = ("tape_kind", "tape_duration_ns", "tape_nbytes", "tape_flops",
                 "tape_bytes_moved")
_EVENT_COLUMNS = ("event_kind", "event_block", "event_address", "event_size",
                  "event_category", "event_iteration", "event_tape_pos")


def _validate_rank_columns(columns: Dict[str, np.ndarray], info: dict) -> None:
    """Raise when a persisted rank's arrays are mutually inconsistent."""
    tape_len = len(columns["tape_kind"])
    for name in _TAPE_COLUMNS:
        if len(columns[name]) != tape_len:
            raise ValueError(f"tape column {name} length mismatch")
    event_len = len(columns["event_kind"])
    for name in _EVENT_COLUMNS:
        if len(columns[name]) != event_len:
            raise ValueError(f"event column {name} length mismatch")
    if len(info["event_tags"]) != event_len or len(info["event_ops"]) != event_len:
        raise ValueError("event annotation length mismatch")
    tape_pos = columns["event_tape_pos"]
    if event_len and (int(tape_pos.min()) < -1 or int(tape_pos.max()) >= tape_len):
        raise ValueError("event tape position out of range")
    if columns["mark_spans"].ndim != 2 or columns["mark_spans"].shape[1] != 2:
        raise ValueError("mark span table malformed")
    lifetimes = columns["lifetimes"]
    if (lifetimes.ndim != 2 or lifetimes.shape[0] != 8
            or lifetimes.shape[1] != len(info["lifetime_tags"])):
        raise ValueError("lifetime table malformed")


def save_family(family: TemplateFamily, path: Path) -> None:
    """Persist a family atomically as a single ``.npz``.

    Arrays are namespaced ``v{variant}_r{rank}_{column}``; any array of a
    later variant that is byte-identical to the base variant's same-rank
    column is recorded in the header's ``aliased_arrays`` list instead of
    being written again, so a dtype variant costs only its structural delta.
    The file is written to a pid-unique temp name and published with
    ``os.replace`` so a parallel reader never sees a torn template.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    arrays: Dict[str, np.ndarray] = {}
    variant_items = sorted((dtype, template)
                           for dtype, template in family.variants.items()
                           if template is not None)
    base = variant_items[0][1] if variant_items else None
    variants_header = []
    for j, (dtype, template) in enumerate(variant_items):
        ranks_header = []
        for i, rank in enumerate(template.ranks):
            aliased = []
            for name in _RANK_ARRAYS:
                column = np.asarray(getattr(rank, name))
                if j > 0 and i < len(base.ranks):
                    base_column = np.asarray(getattr(base.ranks[i], name))
                    if (column.dtype == base_column.dtype
                            and column.shape == base_column.shape
                            and np.array_equal(column, base_column)):
                        aliased.append(name)
                        continue
                arrays[f"v{j}_r{i}_{name}"] = column
            ranks_header.append({
                "event_tags": rank.event_tags,
                "event_ops": rank.event_ops,
                "mark_indices": rank.mark_indices,
                "lifetime_tags": rank.lifetime_tags,
                "preamble_segments": rank.preamble_segments,
                "aliased_arrays": aliased,
            })
        variants_header.append({"dtype": dtype, "meta": template.meta,
                                "ranks": ranks_header})
    header = {
        "schema": TEMPLATE_SCHEMA_VERSION,
        "key": family.key,
        "variants": variants_header,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.tmp.npz")
    try:
        np.savez(tmp, **arrays)
        os.replace(tmp, path)
    finally:
        if tmp.exists():
            tmp.unlink()


def load_family(path: Path, key: Optional[str] = None) -> Optional[TemplateFamily]:
    """Load a persisted family; ``None`` on any mismatch or corruption.

    Every rank's arrays are cross-validated (column lengths, tape-position
    range, span/lifetime table shapes) so a torn or hand-edited file is
    rejected rather than replayed.
    """
    try:
        with np.load(path, allow_pickle=False) as data:
            header = json.loads(bytes(data["header"]).decode("utf-8"))
            if header.get("schema") != TEMPLATE_SCHEMA_VERSION:
                return None
            if key is not None and header.get("key") != key:
                return None
            family = TemplateFamily(str(header["key"]))
            base_columns: List[Dict[str, np.ndarray]] = []
            for j, variant_info in enumerate(header["variants"]):
                ranks = []
                for i, info in enumerate(variant_info["ranks"]):
                    aliased = set(info.get("aliased_arrays", ()))
                    columns = {}
                    for name in _RANK_ARRAYS:
                        if name in aliased:
                            columns[name] = base_columns[i][name]
                        else:
                            columns[name] = np.array(data[f"v{j}_r{i}_{name}"])
                    _validate_rank_columns(columns, info)
                    ranks.append(RankTemplate(
                        event_tags=[str(tag) for tag in info["event_tags"]],
                        event_ops=[str(op) for op in info["event_ops"]],
                        mark_indices=[int(x) for x in info["mark_indices"]],
                        lifetime_tags=[str(tag) for tag in info["lifetime_tags"]],
                        preamble_segments=int(info["preamble_segments"]),
                        **columns,
                    ))
                    if j == 0:
                        base_columns.append(columns)
                family.variants[str(variant_info["dtype"])] = TraceTemplate(
                    str(header["key"]), variant_info["meta"], ranks)
            return family
    except Exception:
        return None


def save_template(template: TraceTemplate, path: Path) -> None:
    """Persist one template as a single-variant family (compat wrapper)."""
    save_family(TemplateFamily(template.key, {template.dtype: template}), path)


def load_template(path: Path, key: Optional[str] = None,
                  dtype: Optional[str] = None) -> Optional[TraceTemplate]:
    """Load one variant from a persisted family (compat wrapper).

    Without ``dtype``, returns the family's base variant; ``None`` on any
    mismatch, corruption, or absent dtype.
    """
    family = load_family(path, key=key)
    if family is None:
        return None
    if dtype is None:
        captured = family.captured_dtypes()
        dtype = captured[0] if captured else ""
    return family.get(dtype)


# -- the engine -----------------------------------------------------------------------


def _freeze(value):
    """Hashable mirror of a JSON-ish config value (for grouping tokens)."""
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


class ReplayEngine:
    """Compile-once / replay-many scenario pricer.

    Template *families* (one per dtype-free structural key, holding one
    captured variant per dtype) are memoized in memory; when
    ``template_dir`` is set (the sweep runner points it next to its result
    cache) they are also published through a
    :class:`~repro.experiments.template_store.TemplateStore` — a JSON
    manifest over content-addressed ``.npz`` files with an LRU bound — so
    later processes skip compilation entirely.  A memoized ``None`` variant
    marks a dtype whose capture failed, so the sweep only pays the
    attempted compilation once.

    Every scenario that cannot be replay-priced bumps
    ``fallback_reasons[<TemplateError reason>]``; the sweep CLI surfaces the
    tally so fallbacks to fresh simulation are explained, not silent.
    """

    def __init__(self, template_dir: Optional[Path] = None,
                 store: Optional["TemplateStore"] = None,
                 max_stored: Optional[int] = None,
                 fault_plan=None):
        self.template_dir = Path(template_dir) if template_dir is not None else None
        if store is None and self.template_dir is not None:
            from .template_store import TemplateStore
            kwargs = {} if max_stored is None else {"max_entries": max_stored}
            store = TemplateStore(self.template_dir, fault_plan=fault_plan,
                                  **kwargs)
        self.store = store
        self._families: Dict[str, TemplateFamily] = {}
        #: Families that required at least one fresh capture this process
        #: (store hits do not count, matching the pre-family semantics).
        self.templates_compiled = 0
        #: Individual compile simulations run (>= ``templates_compiled``
        #: when families were widened with extra dtypes).
        self.variants_captured = 0
        self.replayed = 0
        self.fallback_reasons: Dict[str, int] = {}

    # -- family/variant resolution ----------------------------------------------

    def _family_for(self, key: str) -> TemplateFamily:
        family = self._families.get(key)
        if family is None:
            if self.store is not None:
                family = self.store.load(key)
            if family is None:
                family = TemplateFamily(key)
            self._families[key] = family
        return family

    def _variant_for(self, config: TrainingRunConfig) -> TraceTemplate:
        """The captured variant serving ``config``; raises on any fallback."""
        check_replay_envelope(config)
        key = template_key(config)
        family = self._family_for(key)
        dtype = config.dtype
        if dtype in family.variants:
            template = family.variants[dtype]
            if template is None:
                raise TemplateError(
                    f"dtype {dtype} previously failed to compile",
                    reason="compile_failed")
            return template
        freshly_compiled_family = not family.compiled_fresh
        template = family.capture(config)
        self.variants_captured += 1
        if freshly_compiled_family:
            self.templates_compiled += 1
        if self.store is not None:
            self.store.publish(family)
        return template

    def template_for(self, config: TrainingRunConfig) -> Optional[TraceTemplate]:
        """The (possibly cached) template variant for ``config`` (or ``None``)."""
        try:
            return self._variant_for(config)
        except TemplateError:
            return None

    # -- pricing -----------------------------------------------------------------

    def _count_fallback(self, reason: str, count: int = 1) -> None:
        self.fallback_reasons[reason] = self.fallback_reasons.get(reason, 0) + count

    @staticmethod
    def _structural_token(config: TrainingRunConfig) -> Tuple:
        """Cheap hashable grouping token: every non-pricing config field.

        Two configs with equal tokens share a :func:`template_key`; the
        token spares the batch dispatcher one sha256+JSON fingerprint per
        scenario (the key is computed once per group instead).
        """
        return (config.model, _freeze(config.model_kwargs), config.dataset,
                _freeze(config.dataset_kwargs), config.batch_size,
                config.iterations, config.learning_rate, config.momentum,
                config.optimizer, config.dtype, config.allocator,
                "symbolic" if config.execution_mode == "virtual"
                else config.execution_mode,
                config.seed, config.n_devices, config.swap,
                config.host_latency is None)

    def price_batch(self, scenarios: Sequence,
                    bandwidths_list: Sequence[BandwidthConfig]) -> List:
        """Replay-price a grid of scenarios, batching within each structure.

        Returns one entry per scenario: the priced
        :class:`~repro.experiments.sweep.ScenarioResult`, or ``None`` for
        scenarios that must be simulated fresh (with the reason tallied in
        ``fallback_reasons``).
        """
        results: List = [None] * len(scenarios)
        groups: Dict[Tuple, List[int]] = {}
        for i, scenario in enumerate(scenarios):
            token = self._structural_token(scenario.config)
            groups.setdefault(token, []).append(i)
        for indices in groups.values():
            try:
                template = self._variant_for(scenarios[indices[0]].config)
            except TemplateError as exc:
                self._count_fallback(exc.reason, len(indices))
                continue
            eligible = []
            for i in indices:
                if template.valid_for(scenarios[i].config):
                    eligible.append(i)
                else:
                    self._count_fallback("capacity_mismatch")
            if not eligible:
                continue
            started = time.perf_counter()
            priced = template.replay_batch(
                [scenarios[i] for i in eligible],
                [bandwidths_list[i] for i in eligible], started)
            for i, result in zip(eligible, priced):
                results[i] = result
                self.replayed += 1
        return results

    def price(self, scenario, bandwidths: BandwidthConfig):
        """Replay-price one sweep scenario; ``None`` means "simulate it fresh"."""
        return self.price_batch([scenario], [bandwidths])[0]

    def replay_trace(self, config: TrainingRunConfig) -> Optional[MemoryTrace]:
        """Rebuild the merged trace for ``config`` (test/debug helper)."""
        template = self.template_for(config)
        if template is None or not template.valid_for(config):
            return None
        return template.replay_trace(config)
