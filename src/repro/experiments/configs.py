"""Shared workload configurations for the paper's experiments.

The MLP trace behind Figures 2, 3 and 4 is produced once by
:func:`paper_mlp_config`; the breakdown figures (5, 6, 7) build their own
per-model configurations.  Everything is expressed as
:class:`~repro.train.session.TrainingRunConfig` so that benchmarks, examples
and tests all exercise the same code path.
"""

from __future__ import annotations

from typing import Optional

from ..data.loader import HostLatencyModel
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from ..units import GIB

#: Batch size used for the paper-MLP trace.  The paper does not state its
#: batch size; this value makes the largest saved activation ~768 MiB, which
#: reproduces the ">600 MB outlier blocks" regime of Figure 4.
PAPER_MLP_BATCH_SIZE = 16_384

#: Number of iterations shown in the paper's Figure 2 Gantt chart.
PAPER_MLP_ITERATIONS = 5

#: Host-side latency model for the MLP workload.  Per-sample preprocessing of
#: ~50 us makes one iteration take ~0.85 s of host time, matching the ~0.84 s
#: outlier access intervals the paper reports.
PAPER_MLP_HOST_LATENCY = HostLatencyModel(
    per_batch_ns=2_000_000,
    per_sample_ns=50_000,
    per_byte_ns=0.05,
)


def paper_mlp_config(batch_size: int = PAPER_MLP_BATCH_SIZE,
                     iterations: int = PAPER_MLP_ITERATIONS,
                     execution_mode: str = "symbolic",
                     seed: int = 0) -> TrainingRunConfig:
    """The workload behind Figures 2-4: the Fig.-1 MLP trained for 5 iterations."""
    return TrainingRunConfig(
        model="paper_mlp",
        dataset="two_cluster",
        batch_size=batch_size,
        iterations=iterations,
        execution_mode=execution_mode,
        host_latency=PAPER_MLP_HOST_LATENCY,
        seed=seed,
        label=f"paper MLP (batch={batch_size})",
    )


def small_mlp_config(batch_size: int = 64, iterations: int = 5,
                     hidden_dim: int = 256, seed: int = 0) -> TrainingRunConfig:
    """A scaled-down eager MLP used by tests and the quickstart example."""
    return TrainingRunConfig(
        model="mlp",
        model_kwargs={"hidden_dim": hidden_dim},
        dataset="two_cluster",
        batch_size=batch_size,
        iterations=iterations,
        execution_mode="eager",
        seed=seed,
        label=f"small MLP (hidden={hidden_dim}, batch={batch_size})",
    )


def breakdown_config(model: str, dataset: str, batch_size: int, iterations: int = 2,
                     input_size: Optional[int] = None, num_classes: Optional[int] = None,
                     device_memory_capacity: int = 48 * GIB,
                     seed: int = 0) -> TrainingRunConfig:
    """A symbolic-execution configuration for the occupation-breakdown figures.

    Two iterations are enough: the footprint peaks during the backward pass
    once gradients and optimizer state exist.  The simulated device capacity
    is raised to 48 GiB so that configurations the paper could not fit on the
    Titan X (e.g. large-batch AlexNet, deep ResNets) still produce a
    breakdown instead of an out-of-memory error; the breakdown itself is
    capacity-independent.
    """
    model_kwargs = {}
    if input_size is not None:
        model_kwargs["input_size"] = input_size
    if num_classes is not None:
        model_kwargs["num_classes"] = num_classes
    return TrainingRunConfig(
        model=model,
        model_kwargs=model_kwargs,
        dataset=dataset,
        batch_size=batch_size,
        iterations=iterations,
        execution_mode="symbolic",
        device_memory_capacity=device_memory_capacity,
        seed=seed,
        label=f"{model}/{dataset}/batch{batch_size}",
    )


def run_config(config: TrainingRunConfig) -> SessionResult:
    """Run a configuration (thin wrapper kept for symmetry and patching in tests)."""
    return run_training_session(config)
