"""Deterministic fault-injection harness for the sweep/replay/cache stack.

The source paper's stance — memory behavior must be *measured*, never
assumed — applies equally to the harness doing the measuring: a sweep
engine whose failure semantics are untested cannot be trusted to produce
numbers under real-world faults (a worker OOM-killed by the OS, a torn
cache file after a power cut, a scenario that wedges).  This module makes
failure a first-class, reproducible input:

* :class:`FaultSpec` names one fault: a ``kind`` (worker crash, injected
  exception, slow scenario, interrupt, cache/template corruption), the
  content-hash ``key`` it targets (a scenario key, or a template-family
  key for ``template_corrupt``) and the number of *attempts* it fires on
  (``times``).
* :class:`FaultPlan` is a set of specs plus a seed.  Execution-side faults
  (``crash``/``error``/``slow``/``interrupt``) are keyed purely on
  ``(key, attempt)``, so the decision is reproducible across processes
  without any shared state — the attempt number travels to the pool worker
  with the scenario, and ``attempt >= times`` simply stops firing.  That is
  what makes the chaos-equivalence pin possible: a faulty run *converges*
  to the fault-free result once every budget is spent.
* Storage-side faults (``cache_corrupt``/``template_corrupt``) fire in the
  parent process right after the artifact is atomically published,
  truncating it to garbage — exactly the torn-file shape the quarantine
  paths (:meth:`~repro.experiments.sweep.SweepRunner.cache_load`,
  :meth:`~repro.experiments.template_store.TemplateStore.load`) must
  absorb.

Hooks
-----
:class:`~repro.experiments.sweep.SweepRunner` accepts a plan directly
(``fault_plan=``) or loads one from the file named by the
:data:`FAULT_PLAN_ENV` environment variable; the CLI exposes
``repro sweep --fault-plan plan.json`` and ``--chaos-seed N`` (a seeded
plan over the expanded grid).  :class:`~repro.experiments.template_store.TemplateStore`
accepts a plan for the ``template_corrupt`` kind.  With no plan configured
every hook is a no-op costing one ``None`` check.
"""

from __future__ import annotations

import json
import os
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigurationError, InjectedFaultError

#: Environment variable naming a JSON fault-plan file picked up by
#: :class:`~repro.experiments.sweep.SweepRunner` when no plan is passed
#: explicitly.
FAULT_PLAN_ENV = "REPRO_FAULT_PLAN"

#: Exit status used by injected worker crashes (recognizable in waitpid logs).
CRASH_EXIT_CODE = 87

#: Faults applied around scenario execution (in the worker, or in-process
#: for serial runs).
EXECUTION_KINDS = ("crash", "error", "slow", "interrupt")

#: Faults applied to persisted artifacts right after publication.
STORAGE_KINDS = ("cache_corrupt", "template_corrupt")

#: Every fault kind a :class:`FaultSpec` may carry.
FAULT_KINDS = EXECUTION_KINDS + STORAGE_KINDS

#: Bytes written over a corrupted artifact (short on purpose: a truncated
#: file is the classic torn-write shape).
_GARBAGE = b"{corrupted-by-faultplan"


@dataclass
class FaultSpec:
    """One deterministic fault: what to inject, where, and how often.

    ``key`` is the sha256 content hash the fault targets — a scenario key
    (:meth:`~repro.experiments.sweep.Scenario.key`) for execution and
    ``cache_corrupt`` faults, a template-family key
    (:func:`~repro.experiments.replay.template_key`) for
    ``template_corrupt``.  ``times`` bounds how many attempts (execution
    faults) or publications (storage faults) the fault fires on.
    """

    kind: str
    key: str
    times: int = 1
    #: Extra wall-clock delay injected by ``slow`` faults (seconds).
    delay_s: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind '{self.kind}'; known kinds: {FAULT_KINDS}")

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form (the fault-plan file format)."""
        return {"kind": self.kind, "key": self.key, "times": self.times,
                "delay_s": self.delay_s}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultSpec":
        """Reconstruct a spec from :meth:`to_dict` output."""
        return FaultSpec(kind=str(data["kind"]), key=str(data["key"]),
                         times=int(data.get("times", 1)),
                         delay_s=float(data.get("delay_s", 0.0)))


@dataclass
class FaultPlan:
    """A seeded, deterministic set of faults threaded through the sweep stack.

    The plan is plain data (it pickles across the pool boundary and
    round-trips through JSON), and every decision is a pure function of
    ``(kind, key, attempt)`` for execution faults or an in-process fire
    counter for storage faults — no randomness at injection time, so two
    runs under the same plan observe byte-identical fault schedules.
    """

    faults: List[FaultSpec] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        #: Storage-side fire counts, keyed by ``(kind, key)``.  Kept out of
        #: the serialized form: counts are per-process bookkeeping.
        self._fired: Dict[tuple, int] = {}

    # -- construction / serialization -------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly form of the whole plan."""
        return {"seed": self.seed,
                "faults": [fault.to_dict() for fault in self.faults]}

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "FaultPlan":
        """Reconstruct a plan from :meth:`to_dict` output."""
        return FaultPlan(
            faults=[FaultSpec.from_dict(f) for f in data.get("faults", ())],
            seed=int(data.get("seed", 0)))

    def save(self, path) -> Path:
        """Write the plan as JSON (the ``--fault-plan`` file format)."""
        path = Path(path)
        path.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True),
                        encoding="utf-8")
        return path

    @staticmethod
    def load(path) -> "FaultPlan":
        """Read a plan saved by :meth:`save`."""
        return FaultPlan.from_dict(
            json.loads(Path(path).read_text(encoding="utf-8")))

    @staticmethod
    def from_env() -> Optional["FaultPlan"]:
        """The plan named by :data:`FAULT_PLAN_ENV`, or ``None`` when unset."""
        path = os.environ.get(FAULT_PLAN_ENV)
        return FaultPlan.load(path) if path else None

    @staticmethod
    def seeded(seed: int, keys: Sequence[str],
               kinds: Sequence[str] = ("crash", "error", "slow"),
               rate: float = 0.34, delay_s: float = 0.2) -> "FaultPlan":
        """A deterministic chaos plan over the given scenario keys.

        Roughly ``rate`` of the keys receive one single-shot fault, with the
        kind drawn round-robin from ``kinds`` — every draw comes from
        ``random.Random(seed)``, so the same ``(seed, keys)`` always yields
        the same plan.  This is the generator behind
        ``repro sweep --chaos-seed`` and the ``make chaos-smoke`` leg.
        """
        rng = random.Random(seed)
        faults: List[FaultSpec] = []
        for index, key in enumerate(keys):
            if rng.random() < rate:
                kind = kinds[len(faults) % len(kinds)]
                faults.append(FaultSpec(kind=kind, key=key, times=1,
                                        delay_s=delay_s if kind == "slow" else 0.0))
        return FaultPlan(faults=faults, seed=seed)

    # -- decision + injection ----------------------------------------------------------

    def spec_for(self, kind: str, key: str) -> Optional[FaultSpec]:
        """The first spec of ``kind`` targeting ``key`` (``None`` when absent)."""
        for fault in self.faults:
            if fault.kind == kind and fault.key == key:
                return fault
        return None

    def should_fire(self, kind: str, key: str, attempt: int) -> Optional[FaultSpec]:
        """Whether an execution fault fires on this attempt (pure function)."""
        spec = self.spec_for(kind, key)
        if spec is not None and attempt < spec.times:
            return spec
        return None

    def fire_execution(self, key: str, attempt: int, in_worker: bool) -> None:
        """Apply any execution-side fault for ``(key, attempt)``.

        ``crash`` hard-kills the current process when running inside a pool
        worker (``os._exit`` — the parent observes a broken pool, exactly
        like an OOM-killed worker); in-process (serial) runs degrade it to a
        transient :class:`~repro.errors.InjectedFaultError` because killing
        the interpreter would take the caller down too.  ``interrupt``
        raises :class:`KeyboardInterrupt` in-process (simulating Ctrl-C for
        resume tests) and degrades to a crash inside a worker.  ``slow``
        sleeps ``delay_s`` before the scenario runs; ``error`` raises the
        transient injected-fault error.
        """
        spec = self.should_fire("slow", key, attempt)
        if spec is not None:
            time.sleep(spec.delay_s)
        if self.should_fire("crash", key, attempt) is not None:
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise InjectedFaultError(key, attempt, kind="crash")
        if self.should_fire("interrupt", key, attempt) is not None:
            if in_worker:
                os._exit(CRASH_EXIT_CODE)
            raise KeyboardInterrupt(f"injected interrupt on {key[:12]}...")
        if self.should_fire("error", key, attempt) is not None:
            raise InjectedFaultError(key, attempt, kind="error")

    def corrupt_artifact(self, kind: str, key: str, path) -> bool:
        """Corrupt a just-published artifact if a storage fault targets it.

        Fires at most ``times`` per process (tracked in ``_fired``), writes
        :data:`_GARBAGE` over the file and reports whether it did — callers
        only use the return value for logging/tests.
        """
        spec = self.spec_for(kind, key)
        if spec is None:
            return False
        fired = self._fired.get((kind, key), 0)
        if fired >= spec.times:
            return False
        self._fired[(kind, key)] = fired + 1
        path = Path(path)
        if path.is_file():
            path.write_bytes(_GARBAGE)
            return True
        return False
