"""Experiment E1/E9 — Figure 2: Gantt chart of the first five MLP iterations.

The paper's observation: "there are obvious iterative memory access patterns
in the first five rounds of MLP training" and "there are fewer memory
fragments during MLP training".  This experiment produces the Gantt-chart
rectangles, the per-iteration pattern-similarity report and the
fragmentation summary from one profiled MLP run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.fragmentation import FragmentationReport, analyze_fragmentation
from ..core.gantt import GanttChart, build_gantt_chart
from ..core.patterns import PatternReport, detect_iterative_pattern
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from .configs import paper_mlp_config


@dataclass
class Fig2Result:
    """Everything needed to redraw Figure 2 and back the iterative-pattern claim."""

    session: SessionResult
    gantt: GanttChart
    patterns: PatternReport
    fragmentation: FragmentationReport

    def iteration_durations_s(self) -> List[float]:
        """Duration of each of the five profiled iterations, in seconds."""
        return [mark.duration_ns() / 1e9 for mark in self.session.trace.iteration_marks
                if mark.end_ns is not None]

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "workload": self.session.label,
            "num_rectangles": len(self.gantt),
            "num_iterations": len(self.session.trace.iteration_marks),
            "mean_sequence_similarity": self.patterns.mean_sequence_similarity,
            "mean_jaccard_similarity": self.patterns.mean_jaccard_similarity,
            "is_iterative": self.patterns.is_iterative,
            "peak_live_bytes": self.session.trace.peak_live_bytes(),
            "mean_allocator_utilization": self.fragmentation.mean_utilization,
            "iteration_durations_s": self.iteration_durations_s(),
        }


def run_fig2(config: Optional[TrainingRunConfig] = None,
             max_iterations: int = 5) -> Fig2Result:
    """Run the Figure-2 experiment (paper MLP, five iterations, Gantt + patterns)."""
    config = config if config is not None else paper_mlp_config()
    session = run_training_session(config)
    gantt = build_gantt_chart(session.trace, max_iterations=max_iterations)
    patterns = detect_iterative_pattern(session.trace, skip_warmup=1)
    fragmentation = analyze_fragmentation(session.trace)
    return Fig2Result(session=session, gantt=gantt, patterns=patterns,
                      fragmentation=fragmentation)
