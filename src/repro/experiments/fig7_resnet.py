"""Experiment E8 — Figure 7: ResNet breakdown versus depth (ImageNet).

The paper repeats the Figure-6 analysis for the non-linear ResNet family
(ResNet-18/34/50/101/152) on ImageNet-sized inputs and finds the same trend:
intermediate results dominate and deepen their dominance with more residual
layer blocks, while the parameter share stays minor.

Like Figure 6, the sweep runs through the scenario-sweep engine so results
are cached and can execute across worker processes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.breakdown import BreakdownSeries
from .configs import breakdown_config
from .sweep import Scenario, SweepRunner

#: ResNet depths the paper sweeps.
DEFAULT_FIG7_DEPTHS = ("resnet18", "resnet34", "resnet50", "resnet101", "resnet152")

#: Default per-GPU batch size for the ImageNet-sized sweep.
DEFAULT_FIG7_BATCH_SIZE = 16


@dataclass
class Fig7Result:
    """Breakdown-vs-depth series for the ResNet family."""

    series: BreakdownSeries
    batch_size: int
    dataset: str
    input_size: int

    def rows(self) -> List[Dict[str, object]]:
        """One row per ResNet depth with the bucket fractions."""
        return self.series.fractions_table()

    def intermediates_dominant_everywhere(self, threshold: float = 0.5) -> bool:
        """Whether intermediates exceed ``threshold`` of the footprint at every depth."""
        return all(fraction >= threshold
                   for fraction in self.series.trend("intermediate results"))

    def parameters_always_minor(self, threshold: float = 0.5) -> bool:
        """Whether parameters stay below ``threshold`` of the footprint at every depth."""
        return all(fraction <= threshold for fraction in self.series.trend("parameters"))

    def total_footprint_grows_with_depth(self) -> bool:
        """Whether the absolute footprint grows with network depth."""
        totals = [breakdown.total_bytes for _, breakdown in self.series.entries]
        return all(b >= a for a, b in zip(totals, totals[1:]))

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "batch_size": self.batch_size,
            "dataset": self.dataset,
            "input_size": self.input_size,
            "intermediates_dominant_everywhere": self.intermediates_dominant_everywhere(),
            "parameters_always_minor": self.parameters_always_minor(),
            "total_footprint_grows_with_depth": self.total_footprint_grows_with_depth(),
            "rows": self.rows(),
        }


def fig7_scenarios(depths: Sequence[str] = DEFAULT_FIG7_DEPTHS,
                   batch_size: int = DEFAULT_FIG7_BATCH_SIZE,
                   dataset: str = "imagenet", input_size: int = 224,
                   num_classes: int = 1000) -> List[Scenario]:
    """The concrete sweep points behind Figure 7 (one per ResNet depth)."""
    scenarios = []
    for depth in depths:
        config = breakdown_config(model=depth, dataset=dataset, batch_size=batch_size,
                                  input_size=input_size, num_classes=num_classes)
        config.label = f"{depth}-batch{batch_size}"
        scenarios.append(Scenario(config=config))
    return scenarios


def run_fig7(depths: Sequence[str] = DEFAULT_FIG7_DEPTHS,
             batch_size: int = DEFAULT_FIG7_BATCH_SIZE,
             dataset: str = "imagenet", input_size: int = 224,
             num_classes: int = 1000,
             runner: "Optional[SweepRunner]" = None) -> Fig7Result:
    """Sweep the ResNet depth at a fixed batch size on ImageNet-sized inputs."""
    runner = runner if runner is not None else SweepRunner()
    sweep = runner.run(fig7_scenarios(depths, batch_size=batch_size, dataset=dataset,
                                      input_size=input_size, num_classes=num_classes))
    series = BreakdownSeries(parameter_name="depth")
    for depth, result in zip(depths, sweep.results):
        series.add(depth, result.occupation())
    return Fig7Result(series=series, batch_size=batch_size, dataset=dataset,
                      input_size=input_size)
