"""One entry point per paper figure/table, plus the ablations of DESIGN.md.

Every experiment reduces to scenarios executed by the sweep engine
(:mod:`repro.experiments.sweep`), which analyzes each recorded trace through
the column store introduced in PR 1 (:meth:`repro.core.trace.MemoryTrace.columns`
and the vectorized ATI/breakdown analyses on top of it) and caches the
reduced :class:`~repro.experiments.sweep.ScenarioResult`s on disk.  The
report generator (:mod:`repro.report`) turns those cached results into
EXPERIMENTS.md and the per-figure docs pages.
"""

from .ablations import (
    AllocatorAblationRow,
    TimingAblationRow,
    run_allocator_ablation,
    run_timing_ablation,
)
from .configs import (
    PAPER_MLP_BATCH_SIZE,
    PAPER_MLP_HOST_LATENCY,
    PAPER_MLP_ITERATIONS,
    breakdown_config,
    paper_mlp_config,
    small_mlp_config,
)
from .eq1_swap import Eq1Result, PAPER_EXPECTED_SWAP_BYTES, PAPER_OPERATING_POINTS_US, run_eq1
from .fig2_gantt import Fig2Result, run_fig2
from .fig3_ati import Fig3Result, run_fig3
from .fig4_outliers import Fig4Result, run_fig4
from .fig5_breakdown import DEFAULT_FIG5_WORKLOADS, Fig5Result, run_fig5
from .fig6_alexnet import DEFAULT_FIG6_BATCH_SIZES, Fig6Result, run_fig6
from .fig7_resnet import DEFAULT_FIG7_BATCH_SIZE, DEFAULT_FIG7_DEPTHS, Fig7Result, run_fig7
from .swap_planner import SwapPlannerResult, run_swap_planner
from .sweep import (
    Scenario,
    ScenarioResult,
    SweepGrid,
    SweepResult,
    SweepRunner,
    run_scenario,
    run_sweep,
)

__all__ = [
    "AllocatorAblationRow",
    "DEFAULT_FIG5_WORKLOADS",
    "DEFAULT_FIG6_BATCH_SIZES",
    "DEFAULT_FIG7_BATCH_SIZE",
    "DEFAULT_FIG7_DEPTHS",
    "Eq1Result",
    "Fig2Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "PAPER_EXPECTED_SWAP_BYTES",
    "PAPER_MLP_BATCH_SIZE",
    "PAPER_MLP_HOST_LATENCY",
    "PAPER_MLP_ITERATIONS",
    "PAPER_OPERATING_POINTS_US",
    "Scenario",
    "ScenarioResult",
    "SwapPlannerResult",
    "SweepGrid",
    "SweepResult",
    "SweepRunner",
    "TimingAblationRow",
    "breakdown_config",
    "paper_mlp_config",
    "run_allocator_ablation",
    "run_eq1",
    "run_fig2",
    "run_fig3",
    "run_fig4",
    "run_fig5",
    "run_fig6",
    "run_fig7",
    "run_scenario",
    "run_swap_planner",
    "run_sweep",
    "run_timing_ablation",
    "small_mlp_config",
]
