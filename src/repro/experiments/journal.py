"""Per-run sweep journal: crash-safe record of completed/failed scenarios.

A sweep interrupted by Ctrl-C, an OOM-killed parent or a machine reboot
should not have to redo finished work.  The content-addressed result cache
already makes *completed* scenarios free to re-serve; what it cannot say is
which scenarios already **failed deterministically** (an infeasible
capacity, a mis-configured model) — re-running those burns the whole retry
budget again on every restart.  The journal records both.

Layout
------
``<cache_dir>/journals/<run_id>.json`` where ``run_id`` is a content hash
of the sorted scenario keys (plus the result-schema version), so the same
grid — however it was expanded, whatever order — resumes from the same
journal, and two different grids never collide.  Every record is flushed
with the same pid-unique-temp + ``os.replace`` discipline as the
:class:`~repro.experiments.template_store.TemplateStore` manifest, so an
interrupt at any instant leaves a valid journal describing a prefix of the
run.

Semantics on ``--resume``
-------------------------
* ``completed`` entries are *advisory*: the scenario is normally served by
  the result cache; if its cache entry is missing or was quarantined, the
  scenario re-runs (data wins over bookkeeping).
* ``failed`` entries with kind ``deterministic`` are skipped outright and
  surfaced again in the failure manifest (marked ``resumed``) — retrying
  them cannot change the outcome.
* ``failed`` entries with kind ``transient`` re-run with a fresh retry
  budget: the fault that killed them (worker crash, timeout) may be gone.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Optional, Sequence

#: Subdirectory of the sweep cache holding run journals.
JOURNALS_DIR = "journals"

#: Version of the journal layout; bump to discard stale journals.
JOURNAL_SCHEMA_VERSION = 1


def run_id_for_keys(keys: Sequence[str], schema_version: int) -> str:
    """Deterministic run identity: a hash of the sorted scenario keys."""
    digest = hashlib.sha256()
    digest.update(f"journal-v{JOURNAL_SCHEMA_VERSION}-r{schema_version}".encode())
    for key in sorted(keys):
        digest.update(key.encode("ascii"))
    return digest.hexdigest()[:16]


class RunJournal:
    """Atomic on-disk record of one grid's per-scenario outcomes."""

    STATUS_COMPLETED = "completed"
    STATUS_FAILED = "failed"

    def __init__(self, path: Path, run_id: str):
        self.path = Path(path)
        self.run_id = run_id
        #: key -> {"status", "attempts", and for failures "reason"/"kind"}.
        self.entries: Dict[str, Dict[str, object]] = {}

    @classmethod
    def for_keys(cls, cache_dir: Path, keys: Sequence[str],
                 schema_version: int) -> "RunJournal":
        """The journal for this grid under ``cache_dir`` (loads prior state)."""
        run_id = run_id_for_keys(keys, schema_version)
        journal = cls(Path(cache_dir) / JOURNALS_DIR / f"{run_id}.json", run_id)
        journal.load()
        return journal

    # -- persistence -------------------------------------------------------------------

    def load(self) -> "RunJournal":
        """Read prior entries (corrupt/stale journals degrade to empty)."""
        try:
            raw = json.loads(self.path.read_text(encoding="utf-8"))
            if raw.get("schema") != JOURNAL_SCHEMA_VERSION:
                raise ValueError("stale journal schema")
            if raw.get("run_id") != self.run_id:
                raise ValueError("journal run-id mismatch")
            entries = raw.get("entries")
            if not isinstance(entries, dict):
                raise ValueError("malformed journal")
            self.entries = {str(k): dict(v) for k, v in entries.items()}
        except Exception:
            self.entries = {}
        return self

    def flush(self) -> None:
        """Atomically publish the journal (pid-unique temp + ``os.replace``)."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".{self.path.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps({
            "schema": JOURNAL_SCHEMA_VERSION,
            "run_id": self.run_id,
            "entries": self.entries,
        }, indent=2, sort_keys=True), encoding="utf-8")
        os.replace(tmp, self.path)

    # -- recording ---------------------------------------------------------------------

    def record_completed(self, key: str, attempts: int) -> None:
        """Mark one scenario finished (flushed immediately for crash safety)."""
        self.entries[key] = {"status": self.STATUS_COMPLETED,
                             "attempts": int(attempts)}
        self.flush()

    def record_failed(self, key: str, reason: str, kind: str,
                      attempts: int) -> None:
        """Mark one scenario failed with its taxonomy verdict (flushed)."""
        self.entries[key] = {"status": self.STATUS_FAILED, "reason": str(reason),
                             "kind": str(kind), "attempts": int(attempts)}
        self.flush()

    # -- queries -----------------------------------------------------------------------

    def completed(self, key: str) -> bool:
        """Whether ``key`` finished successfully in a prior (or this) run."""
        entry = self.entries.get(key)
        return bool(entry) and entry.get("status") == self.STATUS_COMPLETED

    def deterministic_failure(self, key: str) -> Optional[Dict[str, object]]:
        """The prior deterministic-failure entry for ``key``, if any."""
        entry = self.entries.get(key)
        if entry and entry.get("status") == self.STATUS_FAILED \
                and entry.get("kind") == "deterministic":
            return dict(entry)
        return None
