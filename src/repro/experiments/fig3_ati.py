"""Experiment E2/E3 — Figure 3: CDF and violin plot of the MLP's ATIs.

The paper reports that the ATIs of most behaviors are concentrated in the
10-25 us band and that 90% of behaviors have an ATI below 25 us.  This
experiment computes the full CDF (Fig. 3a) and per-behavior-kind violin
statistics (Fig. 3b) from the recorded MLP trace and quantifies the
concentration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.ati import (
    AccessInterval,
    AtiSummary,
    compute_access_intervals,
    fraction_below,
    interval_values_us,
    intervals_by_kind,
    summarize_intervals,
)
from ..core.stats import CdfResult, ViolinStats, empirical_cdf, violin_stats
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from .configs import paper_mlp_config


@dataclass
class Fig3Result:
    """Data behind Figure 3a (CDF) and Figure 3b (violin per behavior kind)."""

    session: SessionResult
    intervals: List[AccessInterval]
    cdf: CdfResult
    violins: Dict[str, ViolinStats]
    summary_stats: AtiSummary
    fraction_below_25us: float
    fraction_below_p90_value: float

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "workload": self.session.label,
            "num_intervals": len(self.intervals),
            "ati": self.summary_stats.to_dict(),
            "fraction_below_25us": self.fraction_below_25us,
            "p90_us": self.summary_stats.p90_us,
            "violin_medians_us": {kind: stats.median
                                  for kind, stats in self.violins.items()},
        }


def run_fig3(config: Optional[TrainingRunConfig] = None,
             session: Optional[SessionResult] = None) -> Fig3Result:
    """Run the Figure-3 experiment (reuses an existing session when provided)."""
    if session is None:
        config = config if config is not None else paper_mlp_config()
        session = run_training_session(config)
    intervals = compute_access_intervals(session.trace)
    values_us = interval_values_us(intervals)
    cdf = empirical_cdf(values_us)
    grouped = intervals_by_kind(intervals)
    violins = {kind: violin_stats([i.interval_us for i in group], label=kind)
               for kind, group in sorted(grouped.items())}
    summary_stats = summarize_intervals(intervals)
    return Fig3Result(
        session=session,
        intervals=intervals,
        cdf=cdf,
        violins=violins,
        summary_stats=summary_stats,
        fraction_below_25us=fraction_below(intervals, 25.0),
        fraction_below_p90_value=0.9,
    )
