"""Experiment E5 — Figure 4: per-behavior ATI and block size, and the outliers.

Figure 4 plots, for every memory behavior, its ATI together with the size of
the block it touches.  Most behaviors have negligible ATIs, but a few have
ATIs above 0.8 s on blocks larger than 600 MB; the paper's red-marked example
is 840 211 us on a 1200 MB block, for which Eq. 1 allows ~2.54 GB of free
swapping — those are the behaviors worth optimizing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.ati import AccessInterval, compute_access_intervals
from ..core.outliers import OutlierReport, find_outliers, pairwise_ati_size, top_swap_candidates
from ..core.swap import BandwidthConfig, max_swap_bytes
from ..train.session import SessionResult, TrainingRunConfig, run_training_session
from ..units import GB
from .configs import paper_mlp_config


@dataclass
class Fig4Result:
    """The Figure-4 series plus the outlier report and their Eq.-1 swap bounds."""

    session: SessionResult
    intervals: List[AccessInterval]
    pairwise: List[Dict[str, object]]
    outliers: OutlierReport
    bandwidths: BandwidthConfig
    top_candidates: List[AccessInterval]

    def largest_outlier_swap_bound_gb(self) -> float:
        """Eq.-1 bound (in decimal GB) for the largest outlier's ATI."""
        largest = self.outliers.largest
        if largest is None:
            return 0.0
        return max_swap_bytes(largest.interval_ns, self.bandwidths) / GB

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        largest = self.outliers.largest
        return {
            "workload": self.session.label,
            "num_behaviors": len(self.intervals),
            "num_outliers": self.outliers.count,
            "outlier_fraction": self.outliers.fraction,
            "largest_outlier_ati_us": None if largest is None else largest.interval_us,
            "largest_outlier_size_bytes": None if largest is None else largest.size,
            "largest_outlier_swap_bound_gb": self.largest_outlier_swap_bound_gb(),
        }


def run_fig4(config: Optional[TrainingRunConfig] = None,
             session: Optional[SessionResult] = None,
             bandwidths: Optional[BandwidthConfig] = None) -> Fig4Result:
    """Run the Figure-4 experiment (reuses an existing session when provided)."""
    if session is None:
        config = config if config is not None else paper_mlp_config()
        session = run_training_session(config)
    bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
    intervals = compute_access_intervals(session.trace)
    return Fig4Result(
        session=session,
        intervals=intervals,
        pairwise=pairwise_ati_size(intervals),
        outliers=find_outliers(intervals),
        bandwidths=bandwidths,
        top_candidates=top_swap_candidates(intervals, top_k=10),
    )
