"""Experiment E4 — Equation 1 and the bandwidthTest measurement.

The paper measures pinned host↔device bandwidths with CUDA's
``bandwidthTest`` (6.3 GB/s h2d, 6.4 GB/s d2h) and applies Eq. 1 to conclude
that a 25 us ATI only hides ~79.37 KB of swapping while a 0.8 s ATI hides
~2.54 GB.  This experiment runs the simulated bandwidth test and evaluates
Eq. 1 at the paper's operating points plus a configurable sweep of ATIs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.swap import BandwidthConfig, max_swap_bytes
from ..device.bandwidth import BandwidthReport, BandwidthTest
from ..device.device import Device
from ..device.spec import titan_x_pascal
from ..units import GB, KB, us_to_ns

#: The two operating points the paper evaluates Eq. 1 at.
PAPER_OPERATING_POINTS_US = (25.0, 800_000.0)

#: The paper's reported answers for those operating points.
PAPER_EXPECTED_SWAP_BYTES = {25.0: 79.37 * KB, 800_000.0: 2.54 * GB}


@dataclass
class Eq1Result:
    """Measured bandwidths plus the Eq.-1 swap bound across a sweep of ATIs."""

    bandwidth_report: BandwidthReport
    bandwidths: BandwidthConfig
    sweep: List[Tuple[float, float]]          # (ati_us, max_swap_bytes)
    paper_points: Dict[float, float]          # ati_us -> max_swap_bytes

    def summary(self) -> Dict[str, object]:
        """Compact summary recorded in EXPERIMENTS.md."""
        return {
            "measured_h2d_gbps": self.bandwidth_report.h2d_gb_per_s,
            "measured_d2h_gbps": self.bandwidth_report.d2h_gb_per_s,
            "swap_bound_at_25us_kb": self.paper_points[25.0] / KB,
            "swap_bound_at_0.8s_gb": self.paper_points[800_000.0] / GB,
        }


def run_eq1(device: Optional[Device] = None,
            ati_sweep_us: Sequence[float] = (1, 5, 10, 25, 50, 100, 1_000, 10_000,
                                             100_000, 800_000, 1_000_000),
            use_measured_bandwidths: bool = False) -> Eq1Result:
    """Measure bandwidths on the simulated device and evaluate Eq. 1.

    By default the Eq.-1 evaluation uses the paper's reported bandwidths so
    the bounds land exactly on the paper's numbers; with
    ``use_measured_bandwidths=True`` the bounds use the bandwidths actually
    achieved by the simulated bandwidth test (slightly lower because each copy
    pays a launch overhead, mirroring the real tool's behavior at small sizes).
    """
    device = device if device is not None else Device(titan_x_pascal(), execution_mode="symbolic")
    report = BandwidthTest(device.dma).run()
    if use_measured_bandwidths:
        bandwidths = BandwidthConfig(
            h2d_bytes_per_s=report.h2d.bandwidth_bytes_per_s,
            d2h_bytes_per_s=report.d2h.bandwidth_bytes_per_s,
        )
    else:
        bandwidths = BandwidthConfig.from_paper()
    sweep = [(float(ati_us), max_swap_bytes(us_to_ns(ati_us), bandwidths))
             for ati_us in ati_sweep_us]
    paper_points = {ati_us: max_swap_bytes(us_to_ns(ati_us), bandwidths)
                    for ati_us in PAPER_OPERATING_POINTS_US}
    return Eq1Result(bandwidth_report=report, bandwidths=bandwidths, sweep=sweep,
                     paper_points=paper_points)
