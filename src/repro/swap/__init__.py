"""Closed-loop swap-execution engine.

The analytic side of the reproduction (:mod:`repro.core.swap`,
:mod:`repro.baselines`) *predicts* what evicting blocks to host memory would
do to the footprint and the step time.  This package *executes* those
decisions inside the simulation: a :class:`SwapExecutor` attaches to a
device as a memory-event listener, watches one warm-up iteration, lets a
:class:`SwapExecutionPolicy` turn the observed behaviors into eviction /
prefetch decisions, schedules the resulting copies on the device's dedicated
copy stream (so they overlap with compute and contend with each other), and
stalls the device clock whenever a prefetch misses its deadline.  Every
eviction and restoration is recorded as a first-class ``swap_out`` /
``swap_in`` trace event, so the *measured* peak-memory reduction and stall
overhead fall out of the trace and can be regressed against the planner's
*predicted* numbers.

Policies (see :data:`EXECUTION_POLICIES`):

``planner``
    The paper's Eq.-1 cost model, executed: swap exactly the candidates the
    :class:`~repro.core.swap.SwapPlanner` selects, prefetching against each
    candidate's measured access-time interval.
``swap_advisor``
    Size-ranked swapping in the spirit of SwapAdvisor: the largest blocks
    are swapped regardless of timing; infeasible intervals surface as
    measured stalls.
``zero_offload``
    Optimizer state and parameter gradients are evicted at the end of every
    iteration and demand-fetched (synchronously, with a stall) on their next
    access — ZeRO-Offload's dataflow without its CPU-compute overlap.
``lru``
    An online budget policy: whenever the resident footprint exceeds a
    budget, the least-recently-accessed blocks are evicted; evicted blocks
    are demand-fetched on access.
``unified``
    Capuchin-style unified eviction: every peak-covering candidate is
    resolved to keep, swap or *recompute* by comparing the Eq.-1 transfer
    round trip against the block's recorded producer compute time.
    Recompute drops emit ``recompute_drop`` / ``recompute`` trace events and
    replay the producer's kernel time on the compute stream.

When the executor is built with ``capacity_bytes`` it also *governs* the
device footprint: any event that would push the resident bytes over the
capacity first force-evicts least-recently-used blocks (stalling the clock
for the transfers), and a working set that cannot fit even with full
eviction raises a structured
:class:`~repro.errors.InfeasibleScenarioError` instead of a raw OOM.
"""

from .executor import SwapExecutor, SwapExecutionSummary
from .policies import (
    EXECUTION_POLICIES,
    EvictDirective,
    LruExecutionPolicy,
    PlannerExecutionPolicy,
    SwapAdvisorExecutionPolicy,
    SwapExecutionPolicy,
    UnifiedExecutionPolicy,
    ZeroOffloadExecutionPolicy,
    available_execution_policies,
    get_execution_policy,
)

__all__ = [
    "EXECUTION_POLICIES",
    "EvictDirective",
    "LruExecutionPolicy",
    "PlannerExecutionPolicy",
    "SwapAdvisorExecutionPolicy",
    "SwapExecutionPolicy",
    "SwapExecutionSummary",
    "SwapExecutor",
    "UnifiedExecutionPolicy",
    "ZeroOffloadExecutionPolicy",
    "available_execution_policies",
    "get_execution_policy",
]
