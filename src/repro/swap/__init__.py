"""Closed-loop swap-execution engine.

The analytic side of the reproduction (:mod:`repro.core.swap`,
:mod:`repro.baselines`) *predicts* what evicting blocks to host memory would
do to the footprint and the step time.  This package *executes* those
decisions inside the simulation: a :class:`SwapExecutor` attaches to a
device as a memory-event listener, watches one warm-up iteration, lets a
:class:`SwapExecutionPolicy` turn the observed behaviors into eviction /
prefetch decisions, schedules the resulting copies on the device's dedicated
copy stream (so they overlap with compute and contend with each other), and
stalls the device clock whenever a prefetch misses its deadline.  Every
eviction and restoration is recorded as a first-class ``swap_out`` /
``swap_in`` trace event, so the *measured* peak-memory reduction and stall
overhead fall out of the trace and can be regressed against the planner's
*predicted* numbers.

Policies (see :data:`EXECUTION_POLICIES`):

``planner``
    The paper's Eq.-1 cost model, executed: swap exactly the candidates the
    :class:`~repro.core.swap.SwapPlanner` selects, prefetching against each
    candidate's measured access-time interval.
``swap_advisor``
    Size-ranked swapping in the spirit of SwapAdvisor: the largest blocks
    are swapped regardless of timing; infeasible intervals surface as
    measured stalls.
``zero_offload``
    Optimizer state and parameter gradients are evicted at the end of every
    iteration and demand-fetched (synchronously, with a stall) on their next
    access — ZeRO-Offload's dataflow without its CPU-compute overlap.
``lru``
    An online budget policy: whenever the resident footprint exceeds a
    budget, the least-recently-accessed blocks are evicted; evicted blocks
    are demand-fetched on access.
"""

from .executor import SwapExecutor, SwapExecutionSummary
from .policies import (
    EXECUTION_POLICIES,
    EvictDirective,
    LruExecutionPolicy,
    PlannerExecutionPolicy,
    SwapAdvisorExecutionPolicy,
    SwapExecutionPolicy,
    ZeroOffloadExecutionPolicy,
    available_execution_policies,
    get_execution_policy,
)

__all__ = [
    "EXECUTION_POLICIES",
    "EvictDirective",
    "LruExecutionPolicy",
    "PlannerExecutionPolicy",
    "SwapAdvisorExecutionPolicy",
    "SwapExecutionPolicy",
    "SwapExecutionSummary",
    "SwapExecutor",
    "ZeroOffloadExecutionPolicy",
    "available_execution_policies",
    "get_execution_policy",
]
