"""Execution policies for the closed-loop swap engine.

A :class:`SwapExecutionPolicy` turns the executor's observations into
eviction/prefetch *directives*.  The executor owns all mechanism — residency
accounting, copy-stream scheduling, stall insertion, trace events — while the
policy owns strategy: *which* blocks leave the device, *when*, and whether a
prefetch is scheduled against a deadline or the block is left to a demand
fetch.

The plan-driven policies (``planner``, ``swap_advisor``) reuse the analytic
machinery of :mod:`repro.core.swap` and :mod:`repro.baselines.swapping` for
their selection, so their *predicted* numbers and the engine's *measured*
numbers come from the same cost model — the predicted-vs-simulated
regression in the test suite pins that agreement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, List, Optional, Tuple

from ..core.ati import AccessInterval
from ..core.events import MemoryCategory, MemoryEventKind
from ..core.swap import BandwidthConfig, SwapPlanner, swap_round_trip_ns
from ..units import MIB

if TYPE_CHECKING:  # pragma: no cover - type-only import, avoids a cycle
    from .executor import BlockState, WarmupObservations


@dataclass(frozen=True)
class EvictDirective:
    """One eviction decision handed from a policy to the executor.

    Attributes
    ----------
    block_id:
        The block to evict.
    prefetch_gap_ns:
        When set, the executor schedules a host→device prefetch aiming to
        complete ``prefetch_gap_ns`` after the block's last access (the
        measured access-time interval).  When ``None`` the block is restored
        by a demand fetch — a full synchronous stall — on its next access.
    copy_bytes:
        Bytes actually transferred per direction (defaults to the block
        size).  ZeRO-style partitioning moves only ``size / world_size`` per
        rank while the whole block still leaves the device footprint.
    recompute:
        When set the block is *dropped* rather than swapped: no transfer in
        either direction, and the next access replays the block's recorded
        producer compute time instead of fetching bytes (``prefetch_gap_ns``
        and ``copy_bytes`` are ignored).
    """

    block_id: int
    prefetch_gap_ns: Optional[int] = None
    copy_bytes: Optional[int] = None
    recompute: bool = False


class SwapExecutionPolicy:
    """Base class: never evicts anything."""

    #: Registry name (subclasses override).
    name: str = "base"

    def __init__(self) -> None:
        #: The policy's predicted effect (a plan/estimator summary), filled by
        #: :meth:`plan`; ``None`` for purely reactive policies such as LRU.
        self.predicted: Optional[Dict[str, object]] = None

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        """Digest the warm-up observations into triggers (called every replan)."""

    def directive_after_access(self, state: "BlockState") -> Optional[EvictDirective]:
        """Eviction decision right after an access to ``state`` completed."""
        return None

    def directives_at_iteration_end(
            self, resident: Iterable["BlockState"]) -> List[EvictDirective]:
        """Evictions to perform at an iteration boundary."""
        return []

    def directives_on_pressure(self, resident: Iterable["BlockState"],
                               resident_bytes: int,
                               just_allocated: "BlockState") -> List[EvictDirective]:
        """Evictions to relieve memory pressure right after an allocation."""
        return []


def _covers_peak(state: "BlockState", peak_phase_ns: Optional[int],
                 iteration_duration_ns: int) -> bool:
    """Whether a block's best idle window covers the warm-up peak instant.

    Phases are within-iteration offsets, so the comparison is invariant to
    which iteration the gap was observed in.  A boundary-crossing window
    covers the tail of its iteration plus (when long enough) the head of the
    next one.
    """
    if peak_phase_ns is None:
        return False
    # Safety margin at the closing edge: a window that closes at (or only a
    # hair before) the peak instant has its block back on the device by then
    # — the swap-in precedes the closing access — so it cannot lower the
    # peak.  Phases from different iterations carry small shape differences
    # (the warm-up iteration lacks e.g. zero-grad writes), so marginal
    # windows are rejected rather than credited with phantom savings.
    margin = iteration_duration_ns // 50
    start = state.best_gap_phase_ns
    end = start + state.best_gap_ns
    if not state.best_gap_crosses:
        return start <= peak_phase_ns < end - margin
    if peak_phase_ns >= start:
        return True
    return (iteration_duration_ns > 0
            and peak_phase_ns < end - iteration_duration_ns - margin)


def _predict_peak_after(windows: List[Tuple[int, int, int]],
                        warmup: "WarmupObservations") -> int:
    """Predicted peak footprint given per-block absence windows.

    ``windows`` are ``(start_phase, end_phase, size)`` with phases measured
    from the iteration start (``end_phase`` may exceed the iteration length
    for boundary-crossing windows).  The prediction replays the warm-up
    live-bytes profile and subtracts every window that covers each sampled
    instant — so a *secondary* peak (e.g. the optimizer step, where every
    swapped block is back on the device) correctly bounds the achievable
    savings instead of the naive Σ-of-sizes estimate.
    """
    series = warmup.live_series or []
    duration = warmup.iteration_duration_ns
    if not series or duration <= 0:
        total = sum(size for _, _, size in windows)
        return max(0, warmup.peak_resident_bytes - total)
    margin = duration // 50
    worst = 0
    for phase, live in series:
        absent = 0
        for start, end, size in windows:
            if (start <= phase < end - margin) or (phase < end - duration - margin):
                absent += size
        if live - absent > worst:
            worst = live - absent
    return worst


@dataclass(frozen=True)
class _Trigger:
    """How one selected block's eviction is fired during execution."""

    gap_ns: int
    ordinal: int          # opening-access ordinal (within-iteration windows)
    at_iteration_end: bool
    recompute: bool = False   # drop for rematerialization instead of swapping


def _build_triggers(chosen: Iterable["BlockState"],
                    recompute_ids: frozenset = frozenset()) -> Dict[int, _Trigger]:
    """Map selected blocks to their eviction triggers.

    Within-iteration windows fire right after the opening access (matched by
    its per-iteration ordinal); boundary-crossing windows fire at
    ``end_iteration``, where no further same-iteration access can misfire.
    Blocks listed in ``recompute_ids`` are dropped for rematerialization
    rather than swapped.
    """
    return {state.block_id: _Trigger(gap_ns=int(state.best_gap_ns),
                                     ordinal=state.best_gap_ordinal,
                                     at_iteration_end=state.best_gap_crosses,
                                     recompute=state.block_id in recompute_ids)
            for state in chosen}


def _directive_for_trigger(trigger: _Trigger, block_id: int) -> EvictDirective:
    """The eviction directive a trigger fires: recompute drop or swap."""
    if trigger.recompute:
        return EvictDirective(block_id=block_id, recompute=True)
    return EvictDirective(block_id=block_id, prefetch_gap_ns=trigger.gap_ns)


def _directive_for_access(triggers: Dict[int, _Trigger],
                          state: "BlockState") -> Optional[EvictDirective]:
    """Ordinal-triggered eviction with a prefetch against the learned gap."""
    trigger = triggers.get(state.block_id)
    if (trigger is None or trigger.at_iteration_end
            or state.iter_access_count != trigger.ordinal):
        return None
    return _directive_for_trigger(trigger, state.block_id)


def _directives_for_iteration_end(triggers: Dict[int, _Trigger],
                                  resident: Iterable["BlockState"]) -> List[EvictDirective]:
    """Boundary-window evictions: fire once the iteration's accesses are done."""
    directives = []
    for state in resident:
        trigger = triggers.get(state.block_id)
        if trigger is None or not trigger.at_iteration_end:
            continue
        directives.append(_directive_for_trigger(trigger, state.block_id))
    return directives


def _interval_from_observation(state: "BlockState") -> AccessInterval:
    """Adapt a warm-up observation to the planner's candidate record.

    Only the fields the cost model reads (size, interval, identity, category,
    tag) are meaningful; the event bookkeeping fields are synthesized.
    """
    return AccessInterval(
        block_id=state.block_id,
        size=state.size,
        category=state.category,
        tag=state.tag,
        interval_ns=int(state.best_gap_ns),
        start_event_id=-1,
        end_event_id=-1,
        start_kind=MemoryEventKind.READ,
        end_kind=MemoryEventKind.READ,
        iteration=0,
    )


class PlannerExecutionPolicy(SwapExecutionPolicy):
    """Execute the Eq.-1 swap planner's selection (the paper's cost model).

    The warm-up intervals are fed through the *same*
    :class:`~repro.core.swap.SwapPlanner` as the offline analysis; each
    selected candidate becomes a trigger (evict after the opening access,
    prefetch back against the measured interval).
    """

    name = "planner"

    def __init__(self, min_candidate_bytes: int = 32 * MIB,
                 allow_overhead_ns: float = 0.0,
                 copy_utilization_cap: float = 0.8):
        super().__init__()
        self.min_candidate_bytes = int(min_candidate_bytes)
        self.allow_overhead_ns = float(allow_overhead_ns)
        self.copy_utilization_cap = float(copy_utilization_cap)
        self._triggers: Dict[int, _Trigger] = {}

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        planner = SwapPlanner(bandwidths=bandwidths,
                              min_candidate_bytes=self.min_candidate_bytes,
                              allow_overhead_ns=self.allow_overhead_ns)
        # Only windows that cover the peak instant can reduce the peak; the
        # filter keeps the plan's predicted savings honest (Σ selected sizes
        # all absent at the peak) instead of summing irrelevant idle time.
        observed = [state for state in warmup.blocks
                    if state.best_gap_ns > 0
                    and _covers_peak(state, warmup.peak_phase_ns,
                                     warmup.iteration_duration_ns)]
        plan = planner.plan_from_intervals(
            [_interval_from_observation(state) for state in observed],
            peak_before=warmup.peak_resident_bytes)
        # Eq. 1 is a per-candidate bound; the copy engine is one in-order
        # stream, so the *aggregate* round-trip traffic per iteration must
        # also fit or prefetches queue behind each other and miss their
        # deadlines.  Accept candidates (best savings first) until the
        # stream-utilization budget is spent.
        budget_ns = self.copy_utilization_cap * warmup.iteration_duration_ns
        kept = []
        spent = 0.0
        for candidate in plan.selected:
            if spent + candidate.round_trip_ns > budget_ns:
                continue
            spent += candidate.round_trip_ns
            kept.append(candidate)
        kept_states = [warmup.by_id[candidate.interval.block_id]
                       for candidate in kept]
        self._triggers = _build_triggers(kept_states)
        peak_after = _predict_peak_after(
            [(state.best_gap_phase_ns,
              state.best_gap_phase_ns + state.best_gap_ns, state.size)
             for state in kept_states], warmup)
        savings = max(0, plan.peak_bytes_before - peak_after)
        self.predicted = {
            "num_candidates": len(plan.candidates),
            "num_selected": len(kept),
            "peak_bytes_before": plan.peak_bytes_before,
            "peak_bytes_after": peak_after,
            "savings_bytes": savings,
            "savings_fraction": (savings / plan.peak_bytes_before
                                 if plan.peak_bytes_before else 0.0),
            "total_overhead_ns": sum(candidate.overhead_ns for candidate in kept),
            "copy_round_trip_ns": spent,
        }

    def directive_after_access(self, state: "BlockState") -> Optional[EvictDirective]:
        return _directive_for_access(self._triggers, state)

    def directives_at_iteration_end(
            self, resident: Iterable["BlockState"]) -> List[EvictDirective]:
        return _directives_for_iteration_end(self._triggers, resident)


class UnifiedExecutionPolicy(SwapExecutionPolicy):
    """Capuchin-style unified eviction: keep, swap or recompute per block.

    Every peak-covering idle window is a candidate.  Per candidate the policy
    compares the Eq.-1 transfer round trip against the block's recorded
    producer compute time (learned during warm-up from the malloc→first-write
    span) and picks the cheaper mechanism:

    * **recompute** when the block is a rematerializable activation and the
      replay cost is at or below the *effective* swap cost — the plain round
      trip when the copy stream can absorb the transfer, unbounded when the
      stream budget is spent or the window cannot hide the transfer (Eq.-1
      infeasible);
    * **swap** otherwise, while the aggregate round-trip traffic fits the
      copy-stream utilization budget;
    * **keep** when neither mechanism applies.

    By construction the covered set is a superset of both single-mechanism
    plans on the same profile — everything the pure-swap planner would move
    is covered (by replay when that is cheaper, by transfer otherwise, using
    the planner's own budget accounting), and every rematerializable
    candidate is covered — so the predicted (and measured) savings dominate
    ``max(pure_swap, pure_recompute)``.

    With ``capacity_bytes`` set, blocks the budget would keep are force-added
    to the swap set (accepting their stall overhead) until the predicted peak
    fits the capacity; whatever still does not fit is left to the executor's
    runtime pressure governor.
    """

    name = "unified"

    #: Only forward activations are rematerializable by producer replay —
    #: gradients would need the backward graph re-run, and parameters /
    #: optimizer state have no producer to replay at all.
    RECOMPUTABLE_CATEGORIES = (MemoryCategory.ACTIVATION,)

    def __init__(self, min_candidate_bytes: int = 32 * MIB,
                 allow_overhead_ns: float = 0.0,
                 copy_utilization_cap: float = 0.8,
                 enable_swap: bool = True,
                 enable_recompute: bool = True,
                 capacity_bytes: Optional[int] = None):
        super().__init__()
        self.min_candidate_bytes = int(min_candidate_bytes)
        self.allow_overhead_ns = float(allow_overhead_ns)
        self.copy_utilization_cap = float(copy_utilization_cap)
        self.enable_swap = bool(enable_swap)
        self.enable_recompute = bool(enable_recompute)
        self.capacity_bytes = (None if capacity_bytes is None
                               else int(capacity_bytes))
        self._triggers: Dict[int, _Trigger] = {}

    def _recompute_cost_ns(self, state: "BlockState") -> Optional[int]:
        """The modeled replay cost, or ``None`` when not rematerializable.

        Boundary-crossing windows are excluded: a block dropped at the end of
        one iteration would have to be recomputed in the next, where its
        producer's inputs are gone.
        """
        if (state.category in self.RECOMPUTABLE_CATEGORIES
                and not state.best_gap_crosses
                and state.compute_ns is not None and state.compute_ns > 0):
            return int(state.compute_ns)
        return None

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        planner = SwapPlanner(bandwidths=bandwidths,
                              min_candidate_bytes=self.min_candidate_bytes,
                              allow_overhead_ns=self.allow_overhead_ns)
        observed = [state for state in warmup.blocks
                    if state.best_gap_ns > 0
                    and state.size >= self.min_candidate_bytes
                    and _covers_peak(state, warmup.peak_phase_ns,
                                     warmup.iteration_duration_ns)]
        plan = planner.plan_from_intervals(
            [_interval_from_observation(state) for state in observed],
            peak_before=warmup.peak_resident_bytes)
        budget_ns = self.copy_utilization_cap * warmup.iteration_duration_ns

        # The pure-swap twin's own selection under the same stream budget:
        # anything it would move, the unified plan also covers — by replay
        # when that is cheaper, by transfer otherwise — which is what makes
        # the unified savings dominate both single-mechanism plans.
        planner_kept_ids = set()
        planner_spent = 0.0
        for candidate in plan.selected:
            if planner_spent + candidate.round_trip_ns > budget_ns:
                continue
            planner_spent += candidate.round_trip_ns
            planner_kept_ids.add(candidate.interval.block_id)

        decisions: List[Dict[str, object]] = []
        swap_states: List["BlockState"] = []
        recompute_states: List["BlockState"] = []
        kept_states: List["BlockState"] = []
        spent = 0.0
        feasible_ids = set()

        def decide(state, swap_cost, swap_fits):
            recompute_cost = (self._recompute_cost_ns(state)
                              if self.enable_recompute else None)
            # A candidate the copy stream cannot absorb (or whose window
            # cannot hide the transfer) has unbounded effective swap cost —
            # its prefetch would cascade deadline misses — so replay wins
            # whenever it is available there.
            effective_swap = swap_cost if swap_fits else math.inf
            if recompute_cost is not None and recompute_cost <= effective_swap:
                recompute_states.append(state)
                mechanism = "recompute"
            elif swap_fits:
                swap_states.append(state)
                mechanism = "swap"
            else:
                kept_states.append(state)
                mechanism = "keep"
            decisions.append({
                "block_id": state.block_id,
                "size": state.size,
                "tag": state.tag,
                "mechanism": mechanism,
                "swap_cost_ns": swap_cost,
                "effective_swap_cost_ns": effective_swap,
                "recompute_cost_ns": recompute_cost,
            })
            return mechanism

        for candidate in plan.selected:
            feasible_ids.add(candidate.interval.block_id)
            state = warmup.by_id[candidate.interval.block_id]
            swap_cost = float(candidate.round_trip_ns)
            in_planner = candidate.interval.block_id in planner_kept_ids
            swap_fits = (self.enable_swap
                         and (in_planner or spent + swap_cost <= budget_ns))
            if decide(state, swap_cost, swap_fits) == "swap":
                spent += swap_cost
        # Eq.-1-infeasible windows (the gap cannot hide the transfer) can
        # still be *recomputed* — the replay cost does not ride the link.
        for state in observed:
            if state.block_id in feasible_ids:
                continue
            decide(state, float(swap_round_trip_ns(state.size, bandwidths)),
                   swap_fits=False)

        def windows(states):
            return [(state.best_gap_phase_ns,
                     state.best_gap_phase_ns + state.best_gap_ns, state.size)
                    for state in states]

        forced_overhead = 0.0
        peak_after = _predict_peak_after(
            windows(swap_states + recompute_states), warmup)
        if self.capacity_bytes is not None and self.enable_swap:
            by_id = {decision["block_id"]: decision for decision in decisions}
            for state in sorted(kept_states, key=lambda s: s.size, reverse=True):
                if peak_after <= self.capacity_bytes:
                    break
                swap_cost = float(swap_round_trip_ns(state.size, bandwidths))
                spent += swap_cost
                forced_overhead += max(0.0, swap_cost - state.best_gap_ns)
                swap_states.append(state)
                by_id[state.block_id]["mechanism"] = "swap"
                by_id[state.block_id]["effective_swap_cost_ns"] = swap_cost
                peak_after = _predict_peak_after(
                    windows(swap_states + recompute_states), warmup)
            swapped_ids = {state.block_id for state in swap_states}
            kept_states = [state for state in kept_states
                           if state.block_id not in swapped_ids]

        self._triggers = _build_triggers(
            swap_states + recompute_states,
            recompute_ids=frozenset(state.block_id
                                    for state in recompute_states))
        savings = max(0, plan.peak_bytes_before - peak_after)
        recompute_overhead = sum(int(state.compute_ns or 0)
                                 for state in recompute_states)
        self.predicted = {
            "num_candidates": len(observed),
            "num_selected": len(swap_states) + len(recompute_states),
            "num_swapped": len(swap_states),
            "num_recomputed": len(recompute_states),
            "num_kept": len(kept_states),
            "peak_bytes_before": plan.peak_bytes_before,
            "peak_bytes_after": peak_after,
            "savings_bytes": savings,
            "savings_fraction": (savings / plan.peak_bytes_before
                                 if plan.peak_bytes_before else 0.0),
            "total_overhead_ns": recompute_overhead + forced_overhead,
            "copy_round_trip_ns": spent,
            "recompute_overhead_ns": recompute_overhead,
            "capacity_bytes": self.capacity_bytes,
            "decisions": decisions,
        }

    def directive_after_access(self, state: "BlockState") -> Optional[EvictDirective]:
        return _directive_for_access(self._triggers, state)

    def directives_at_iteration_end(
            self, resident: Iterable["BlockState"]) -> List[EvictDirective]:
        return _directives_for_iteration_end(self._triggers, resident)


class SwapAdvisorExecutionPolicy(SwapExecutionPolicy):
    """Size-ranked swapping (SwapAdvisor-style): largest blocks, timing-blind.

    The ``top_k`` largest observed blocks are evicted after the access that
    opens their largest idle interval, with a prefetch against that interval
    — whatever transfer time the interval cannot hide becomes a *measured*
    stall, mirroring the analytic estimator's charged overhead.
    """

    name = "swap_advisor"

    def __init__(self, top_k: int = 5, min_block_bytes: int = 32 * MIB):
        super().__init__()
        self.top_k = int(top_k)
        self.min_block_bytes = int(min_block_bytes)
        self._triggers: Dict[int, _Trigger] = {}

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        eligible = [state for state in warmup.blocks
                    if state.size >= self.min_block_bytes and state.best_gap_ns > 0]
        eligible.sort(key=lambda state: state.size, reverse=True)
        chosen = eligible[:self.top_k]
        self._triggers = _build_triggers(chosen)
        overhead = sum(
            max(0.0, swap_round_trip_ns(state.size, bandwidths) - state.best_gap_ns)
            for state in chosen)
        peak_after = _predict_peak_after(
            [(state.best_gap_phase_ns,
              state.best_gap_phase_ns + state.best_gap_ns, state.size)
             for state in chosen], warmup)
        savings = max(0, warmup.peak_resident_bytes - peak_after)
        self.predicted = {
            "num_selected": len(chosen),
            "swapped_bytes": sum(state.size for state in chosen),
            "peak_bytes_before": warmup.peak_resident_bytes,
            "peak_bytes_after": peak_after,
            "savings_bytes": savings,
            "total_overhead_ns": overhead,
        }

    def directive_after_access(self, state: "BlockState") -> Optional[EvictDirective]:
        return _directive_for_access(self._triggers, state)

    def directives_at_iteration_end(
            self, resident: Iterable["BlockState"]) -> List[EvictDirective]:
        return _directives_for_iteration_end(self._triggers, resident)


class ZeroOffloadExecutionPolicy(SwapExecutionPolicy):
    """Offload optimizer state and gradients between iterations (ZeRO-style).

    At the end of every iteration all resident optimizer-state and
    parameter-gradient blocks are evicted; each comes back through a demand
    fetch (a synchronous stall) on its next access.  On a data-parallel run
    each rank only moves its ``1/world_size`` partition per direction while
    the full block still leaves the device footprint — the executable twin
    of the rank-aware analytic estimator.
    """

    name = "zero_offload"

    OFFLOAD_CATEGORIES = (MemoryCategory.OPTIMIZER_STATE,
                          MemoryCategory.PARAMETER_GRADIENT)

    def __init__(self, world_size: int = 1):
        super().__init__()
        self.world_size = max(1, int(world_size))

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        offloadable = [state for state in warmup.blocks
                       if state.category in self.OFFLOAD_CATEGORIES]
        swapped = sum(state.size for state in offloadable)
        partition = -(-swapped // self.world_size) if swapped else 0
        # Each block is absent from the end of the iteration until its first
        # access in the next one (the synchronous demand fetch).
        duration = warmup.iteration_duration_ns
        peak_after = _predict_peak_after(
            [(duration, duration + state.first_access_phase_ns, state.size)
             for state in offloadable if state.first_access_phase_ns > 0],
            warmup)
        self.predicted = {
            "num_selected": len(offloadable),
            "swapped_bytes": swapped,
            "peak_bytes_before": warmup.peak_resident_bytes,
            "peak_bytes_after": peak_after,
            "savings_bytes": max(0, warmup.peak_resident_bytes - peak_after),
            "total_overhead_ns": swap_round_trip_ns(partition, bandwidths),
            "world_size": self.world_size,
            "partition_bytes": partition,
        }

    def directives_at_iteration_end(
            self, resident: Iterable["BlockState"]) -> List[EvictDirective]:
        directives = []
        for state in resident:
            if state.category in self.OFFLOAD_CATEGORIES:
                partition = -(-state.size // self.world_size)
                directives.append(EvictDirective(block_id=state.block_id,
                                                 copy_bytes=partition))
        return directives


class LruExecutionPolicy(SwapExecutionPolicy):
    """Online budget policy: evict least-recently-accessed blocks on pressure.

    The budget defaults to ``budget_fraction`` of the warm-up peak (so the
    policy always has something to do on any workload); an absolute
    ``budget_bytes`` overrides it.  Evicted blocks are demand-fetched on
    access — the stalls measure what a reactive pager costs on this workload.
    """

    name = "lru"

    def __init__(self, budget_bytes: Optional[int] = None,
                 budget_fraction: float = 0.7,
                 min_block_bytes: int = 1 * MIB):
        super().__init__()
        self.budget_bytes = budget_bytes if budget_bytes is None else int(budget_bytes)
        self.budget_fraction = float(budget_fraction)
        self.min_block_bytes = int(min_block_bytes)
        self._resolved_budget: Optional[int] = None

    @property
    def resolved_budget_bytes(self) -> Optional[int]:
        """The budget in force (None before :meth:`plan` ran)."""
        return self._resolved_budget

    def plan(self, warmup: "WarmupObservations", bandwidths: BandwidthConfig) -> None:
        if self.budget_bytes is not None:
            self._resolved_budget = self.budget_bytes
        else:
            self._resolved_budget = int(warmup.peak_resident_bytes
                                        * self.budget_fraction)
        self.predicted = None  # reactive: there is no plan to predict from

    def directives_on_pressure(self, resident: Iterable["BlockState"],
                               resident_bytes: int,
                               just_allocated: "BlockState") -> List[EvictDirective]:
        budget = self._resolved_budget
        if budget is None or resident_bytes <= budget:
            return []
        candidates = [state for state in resident
                      if state.size >= self.min_block_bytes
                      and state.block_id != just_allocated.block_id]
        candidates.sort(key=lambda state: state.last_access_ns)
        directives = []
        excess = resident_bytes - budget
        for state in candidates:
            if excess <= 0:
                break
            directives.append(EvictDirective(block_id=state.block_id))
            excess -= state.size
        return directives


#: Factories for every executable policy, keyed by the ``--swap`` axis value.
EXECUTION_POLICIES: Dict[str, Callable[..., SwapExecutionPolicy]] = {
    PlannerExecutionPolicy.name: PlannerExecutionPolicy,
    SwapAdvisorExecutionPolicy.name: SwapAdvisorExecutionPolicy,
    ZeroOffloadExecutionPolicy.name: ZeroOffloadExecutionPolicy,
    LruExecutionPolicy.name: LruExecutionPolicy,
    UnifiedExecutionPolicy.name: UnifiedExecutionPolicy,
}

#: The value of the ``--swap`` axis that disables the engine entirely.
SWAP_OFF = "off"


def available_execution_policies() -> Tuple[str, ...]:
    """Names of every executable swap policy (``off`` excluded)."""
    return tuple(EXECUTION_POLICIES)


def get_execution_policy(name: str, **kwargs) -> SwapExecutionPolicy:
    """Instantiate an executable policy by registry name.

    Raises ``ValueError`` with the list of known policies when unknown.
    """
    try:
        factory = EXECUTION_POLICIES[name]
    except KeyError:
        known = ", ".join(available_execution_policies())
        raise ValueError(
            f"unknown swap execution policy '{name}'; known policies: {known}"
        ) from None
    return factory(**kwargs)
