"""The swap executor: runs eviction/prefetch decisions inside the simulation.

:class:`SwapExecutor` is a :class:`~repro.device.hooks.MemoryEventListener`
attached to a device *ahead of* the trace recorder, which gives it a
closed loop around the training run:

* during the **warm-up iteration(s)** it only observes: per-block sizes,
  categories, access ordinals and the largest idle gap between adjacent
  accesses (the block's access-time interval), plus the unswapped peak
  footprint and the moment it occurs;
* from the first post-warm-up iteration its
  :class:`~repro.swap.policies.SwapExecutionPolicy` turns those observations
  into eviction directives.  Evictions are scheduled as device→host copies on
  the device's dedicated copy stream (so concurrent swap traffic serializes —
  DMA contention is modelled, not assumed away) and, for deadline-driven
  policies, a host→device prefetch is reserved to complete right when the
  measured interval predicts the next access;
* on an access to a non-resident block the executor *stalls the device
  clock* until the in-flight prefetch (or a freshly issued demand fetch)
  completes.  Stalls therefore lengthen the recorded iterations exactly the
  way a synchronous ``cudaMemcpy`` wait would.

Every eviction/restoration is emitted through the device's listener fan-out
as a first-class ``swap_out``/``swap_in`` event, so the recorded trace
carries the *measured* story: :meth:`~repro.core.trace.MemoryTrace.\
peak_resident_bytes` vs :meth:`~repro.core.trace.MemoryTrace.peak_live_bytes`
is the achieved peak reduction, and the summed stalls are the achieved
overhead — both directly comparable with the policy's *predicted* summary.

Gap learning is iteration-phase aware: only gaps whose opening access
happened inside a training iteration are learned (model-construction
accesses never produce triggers), gaps distorted by the block's own swap
traffic are discarded, and each gap remembers its within-iteration phase and
whether it crosses an iteration boundary — boundary gaps are executed at
``end_iteration`` (where no further same-iteration access can misfire) while
within-iteration gaps trigger on the opening access's ordinal.

Ordering guarantees (they keep the trace's residency accounting exact):

* the stall and the ``swap_in`` event precede the access event that needed
  the block;
* a block freed while swapped out receives a zero-copy ``"discard"``
  ``swap_in`` immediately before its ``free`` event, so every eviction is
  balanced;
* post-access evictions are deferred to the next listener callback, so the
  ``swap_out`` lands *after* the triggering access in the event stream.

Two further mechanisms ride on the same machinery:

* **rematerialization** — a directive flagged ``recompute`` drops the block
  with no transfer at all (``recompute_drop`` event) and the next access
  replays the block's recorded producer compute time on the device's compute
  stream (``recompute`` event) instead of fetching bytes over the link.  The
  producer cost is learned during warm-up: a block's first write after its
  malloc closes its producing kernel, so the elapsed time since the previous
  listener event *is* that kernel's duration;
* **capacity governance** — when the executor is constructed with
  ``capacity_bytes``, every residency increase first force-evicts
  least-recently-accessed blocks until the incoming bytes fit, stalling the
  device until the relieving copy-out completes.  The invariant is enforced
  from the first event (warm-up included), so the measured resident peak can
  never exceed the configured device memory; when even evicting everything
  cannot make room, a structured
  :class:`~repro.errors.InfeasibleScenarioError` is raised instead of a raw
  allocator OOM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Union

from ..core.events import MemoryCategory
from ..core.swap import BandwidthConfig
from ..device.hooks import MemoryEventListener
from ..errors import InfeasibleScenarioError
from .policies import EvictDirective, SwapExecutionPolicy, get_execution_policy


@dataclass
class BlockState:
    """Everything the executor knows about one device memory block."""

    block_id: int
    size: int = 0
    category: MemoryCategory = MemoryCategory.UNKNOWN
    tag: str = ""
    block: object = None            # the live Block (for event emission)
    resident: bool = True
    freed: bool = False
    pending_ready_ns: Optional[int] = None   # in-flight prefetch completion
    swapped_copy_bytes: int = 0              # bytes moved by the last eviction
    last_access_ns: int = 0
    iter_access_count: int = 0               # accesses seen this iteration
    prev_access_ns: Optional[int] = None
    prev_access_ordinal: int = 0
    prev_access_iteration: Optional[int] = None
    prev_access_phase_ns: int = 0
    first_access_phase_ns: int = 0           # first in-iteration access offset
    best_gap_ns: int = 0                     # largest observed idle interval
    best_gap_ordinal: int = 0                # ordinal of its opening access
    best_gap_phase_ns: int = 0               # opening access offset in its iteration
    best_gap_crosses: bool = False           # gap spans an iteration boundary
    gap_tainted: bool = False                # next gap includes swap distortion
    compute_ns: Optional[int] = None         # producer kernel duration (learned)
    pending_first_write: bool = False        # next access may close the producer
    dropped_for_recompute: bool = False      # off-device awaiting rematerialization


@dataclass
class WarmupObservations:
    """The executor's observations handed to a policy at (re)plan time."""

    blocks: List[BlockState]
    by_id: Dict[int, BlockState]
    peak_resident_bytes: int
    peak_phase_ns: Optional[int]      # warm-up peak offset in its iteration
    iteration_duration_ns: int        # warm-up iteration length
    #: ``(phase_ns, live_bytes)`` after every warm-up malloc/free — the
    #: footprint-vs-phase profile policies evaluate predicted peaks against
    #: (a plan's binding constraint is often a *secondary* peak, e.g. the
    #: optimizer step where everything swapped is back on the device).
    live_series: List = None


@dataclass
class SwapExecutionSummary:
    """Measured outcome of one executor's run (plus its policy's prediction)."""

    policy: str
    active_iterations: int
    swap_out_count: int
    swap_in_count: int
    prefetches_scheduled: int
    prefetch_hits: int
    late_prefetches: int
    demand_fetches: int
    discards: int
    shutdown_restores: int
    bytes_swapped_out: int
    bytes_swapped_in: int
    stall_ns_total: int
    copy_busy_ns: int
    peak_resident_bytes: int          # over the active (swapping) iterations
    peak_live_bytes: int              # allocation peak over the same iterations
    warmup_peak_bytes: int            # the unswapped warm-up footprint
    recompute_drop_count: int = 0
    recompute_count: int = 0
    bytes_recompute_dropped: int = 0
    bytes_recomputed: int = 0
    recompute_ns_total: int = 0       # clock time spent replaying producers
    pressure_evictions: int = 0       # forced LRU evictions under capacity
    pressure_stall_ns: int = 0        # waits for forced copy-outs to clear
    capacity_bytes: Optional[int] = None
    predicted: Optional[Dict[str, object]] = None

    @property
    def measured_savings_bytes(self) -> int:
        """Measured peak reduction over the swapping iterations.

        Both peaks cover the *same* iterations: ``peak_live_bytes`` is what
        the footprint would have been (allocation semantics are untouched by
        swapping), ``peak_resident_bytes`` is what actually had to fit.
        """
        return max(0, self.peak_live_bytes - self.peak_resident_bytes)

    @property
    def measured_savings_fraction(self) -> float:
        """Measured peak reduction relative to the unswapped (live) peak."""
        if self.peak_live_bytes == 0:
            return 0.0
        return self.measured_savings_bytes / self.peak_live_bytes

    @property
    def stall_ns_per_iteration(self) -> float:
        """Measured stall overhead normalized per swapping iteration."""
        if self.active_iterations == 0:
            return 0.0
        return self.stall_ns_total / self.active_iterations

    @property
    def recompute_ns_per_iteration(self) -> float:
        """Measured rematerialization time normalized per swapping iteration."""
        if self.active_iterations == 0:
            return 0.0
        return self.recompute_ns_total / self.active_iterations

    def to_dict(self) -> Dict[str, object]:
        """Serialize for scenario results and reports."""
        return {
            "policy": self.policy,
            "active_iterations": self.active_iterations,
            "swap_out_count": self.swap_out_count,
            "swap_in_count": self.swap_in_count,
            "prefetches_scheduled": self.prefetches_scheduled,
            "prefetch_hits": self.prefetch_hits,
            "late_prefetches": self.late_prefetches,
            "demand_fetches": self.demand_fetches,
            "discards": self.discards,
            "shutdown_restores": self.shutdown_restores,
            "bytes_swapped_out": self.bytes_swapped_out,
            "bytes_swapped_in": self.bytes_swapped_in,
            "stall_ns_total": self.stall_ns_total,
            "stall_ns_per_iteration": self.stall_ns_per_iteration,
            "copy_busy_ns": self.copy_busy_ns,
            "peak_resident_bytes": self.peak_resident_bytes,
            "peak_live_bytes": self.peak_live_bytes,
            "warmup_peak_bytes": self.warmup_peak_bytes,
            "measured_savings_bytes": self.measured_savings_bytes,
            "measured_savings_fraction": self.measured_savings_fraction,
            "recompute_drop_count": self.recompute_drop_count,
            "recompute_count": self.recompute_count,
            "bytes_recompute_dropped": self.bytes_recompute_dropped,
            "bytes_recomputed": self.bytes_recomputed,
            "recompute_ns_total": self.recompute_ns_total,
            "recompute_ns_per_iteration": self.recompute_ns_per_iteration,
            "pressure_evictions": self.pressure_evictions,
            "pressure_stall_ns": self.pressure_stall_ns,
            "capacity_bytes": self.capacity_bytes,
            "predicted": self.predicted,
        }


class SwapExecutor(MemoryEventListener):
    """Execute a swap policy against a live simulated device.

    Parameters
    ----------
    device:
        The simulated device; the executor uses its clock, DMA engine (and
        therefore its dedicated copy stream), timing model and listener
        fan-out.
    policy:
        A :class:`~repro.swap.policies.SwapExecutionPolicy` instance or a
        registry name (``planner``, ``swap_advisor``, ``zero_offload``,
        ``lru``).
    warmup_iterations:
        Iterations observed before the policy activates (default 1).  The
        policy replans at every later iteration start from the accumulated
        (swap-undistorted) observations, so cross-iteration idle intervals —
        the paper's large outliers — are picked up as soon as they close.
    prefetch_margin_ns:
        Prefetches aim to complete this much *before* the predicted next
        access (0 = exactly on time; contention can still make them late).
    bandwidths:
        Eq.-1 bandwidths for the policy's predictions; defaults to the
        device spec's (the transfers themselves always use the spec).
    capacity_bytes:
        When set, the executor governs a hard device-memory capacity: any
        residency increase that would exceed it first force-evicts
        least-recently-accessed blocks (with the stall of waiting for the
        copy-out), and :class:`~repro.errors.InfeasibleScenarioError` is
        raised when even full eviction cannot make room.
    """

    def __init__(self, device, policy: Union[str, SwapExecutionPolicy],
                 warmup_iterations: int = 1, prefetch_margin_ns: int = 0,
                 bandwidths: Optional[BandwidthConfig] = None,
                 capacity_bytes: Optional[int] = None):
        self.device = device
        self.policy = (get_execution_policy(policy)
                       if isinstance(policy, str) else policy)
        self.warmup_iterations = max(1, int(warmup_iterations))
        self.prefetch_margin_ns = max(0, int(prefetch_margin_ns))
        self.bandwidths = (bandwidths if bandwidths is not None
                           else BandwidthConfig.from_device_spec(device.spec))
        self.capacity_bytes = (None if capacity_bytes is None
                               else int(capacity_bytes))
        self._states: Dict[int, BlockState] = {}
        self._deferred: List[EvictDirective] = []
        self._active = False
        # iteration bookkeeping
        self._iteration_index: Optional[int] = None
        self._iteration_start_ns = 0
        self._warmup_iter_duration_ns = 0
        # accounting
        self._resident_bytes = 0
        self._live_bytes = 0
        self._peak_resident_active = 0
        self._peak_live_active = 0
        self._peak_resident_overall = 0
        self._learning_frozen = False
        self._plan_frozen = False
        self._steady_started = False
        # committed warm-up profile: the last clean iteration's live-bytes
        # series / peak / duration (refreshed every pre-steady iteration, so
        # lazily allocated state — e.g. momentum buffers — is included)
        self._warmup_peak_bytes = 0
        self._warmup_peak_phase_ns: Optional[int] = None
        self._warmup_live_series: List = []   # (phase_ns, live_bytes) samples
        # in-progress trackers for the iteration being observed
        self._iter_live_series: List = []
        self._iter_peak_live = 0
        self._iter_peak_phase_ns: Optional[int] = None
        # counters
        self.active_iterations = 0
        self.swap_out_count = 0
        self.swap_in_count = 0
        self.prefetches_scheduled = 0
        self.prefetch_hits = 0
        self.late_prefetches = 0
        self.demand_fetches = 0
        self.discards = 0
        self.shutdown_restores = 0
        self.bytes_swapped_out = 0
        self.bytes_swapped_in = 0
        self.stall_ns_total = 0
        self.copy_busy_ns = 0
        self.recompute_drop_count = 0
        self.recompute_count = 0
        self.bytes_recompute_dropped = 0
        self.bytes_recomputed = 0
        self.recompute_ns_total = 0
        self.pressure_evictions = 0
        self.pressure_stall_ns = 0
        # timestamp of the previous listener event: the gap between a block's
        # malloc-adjacent first write and the event before it is exactly its
        # producing kernel's duration (the clock only advances inside the
        # kernel between those two points).
        self._last_event_ns = device.clock.now_ns

    # -- introspection -----------------------------------------------------------------

    @property
    def is_active(self) -> bool:
        """Whether the warm-up is over and the policy is executing."""
        return self._active

    @property
    def resident_bytes(self) -> int:
        """Bytes currently resident on the device (allocated minus swapped out)."""
        return self._resident_bytes

    @property
    def swapped_out_bytes(self) -> int:
        """Bytes of allocated blocks currently evicted to the host."""
        return sum(state.size for state in self._states.values()
                   if not state.freed and not state.resident)

    def observations(self) -> WarmupObservations:
        """Current (swap-undistorted) per-block observations for planning."""
        blocks = [state for state in self._states.values() if state.size > 0]
        return WarmupObservations(blocks=blocks, by_id=self._states,
                                  peak_resident_bytes=self._warmup_peak_bytes,
                                  peak_phase_ns=self._warmup_peak_phase_ns,
                                  iteration_duration_ns=self._warmup_iter_duration_ns,
                                  live_series=self._warmup_live_series)

    def summary(self) -> SwapExecutionSummary:
        """The measured outcome so far (plus the policy's prediction)."""
        if self.capacity_bytes is not None:
            # Under capacity governance the invariant spans the whole run
            # (warm-up included), so the honest measured peak is the overall
            # resident maximum — which the governor kept at or below capacity.
            peak_resident = self._peak_resident_overall
        elif self._active:
            peak_resident = self._peak_resident_active
        else:
            peak_resident = self._warmup_peak_bytes
        return SwapExecutionSummary(
            policy=self.policy.name,
            active_iterations=self.active_iterations,
            swap_out_count=self.swap_out_count,
            swap_in_count=self.swap_in_count,
            prefetches_scheduled=self.prefetches_scheduled,
            prefetch_hits=self.prefetch_hits,
            late_prefetches=self.late_prefetches,
            demand_fetches=self.demand_fetches,
            discards=self.discards,
            shutdown_restores=self.shutdown_restores,
            bytes_swapped_out=self.bytes_swapped_out,
            bytes_swapped_in=self.bytes_swapped_in,
            stall_ns_total=self.stall_ns_total,
            copy_busy_ns=self.copy_busy_ns,
            peak_resident_bytes=peak_resident,
            peak_live_bytes=(self._peak_live_active if self._active
                             else self._warmup_peak_bytes),
            warmup_peak_bytes=self._warmup_peak_bytes,
            recompute_drop_count=self.recompute_drop_count,
            recompute_count=self.recompute_count,
            bytes_recompute_dropped=self.bytes_recompute_dropped,
            bytes_recomputed=self.bytes_recomputed,
            recompute_ns_total=self.recompute_ns_total,
            pressure_evictions=self.pressure_evictions,
            pressure_stall_ns=self.pressure_stall_ns,
            capacity_bytes=self.capacity_bytes,
            predicted=self.policy.predicted,
        )

    # -- iteration hooks (duck-typed like a recorder) ---------------------------------

    def begin_iteration(self, index: int) -> None:
        """Iteration start: reset per-iteration ordinals, (re)plan, activate."""
        self._flush_deferred()
        self._iteration_index = index
        self._iteration_start_ns = self.device.clock.now_ns
        for state in self._states.values():
            state.iter_access_count = 0
        if index > self.warmup_iterations:
            # Observation stops one iteration into execution: the first
            # active iteration still closes the cross-boundary windows and
            # refreshes the live profile (with e.g. the lazily allocated
            # optimizer state included), but later samples would fold the
            # engine's own stalls back into the plan and destabilize it.
            self._learning_frozen = True
        if not self._learning_frozen:
            self._iter_live_series = []
            self._iter_peak_live = self._live_bytes
            self._iter_peak_phase_ns = None
        if index > self.warmup_iterations + 1 and not self._steady_started:
            # Measured peaks restart at the first fully steady iteration:
            # iteration warmup ran unswapped, and iteration warmup+1 still
            # starts with everything resident (the first boundary-window
            # eviction pass only happens at its end), so earlier iterations
            # are not a fair comparison against the plan.
            self._steady_started = True
            self._peak_resident_active = self._resident_bytes
            self._peak_live_active = self._live_bytes
        if index >= self.warmup_iterations:
            if not self._plan_frozen:
                # Replans are only useful while the observations can still
                # change; the first plan after learning froze is final.
                self.policy.plan(self.observations(), self.bandwidths)
                self._plan_frozen = self._learning_frozen
            if not self._active:
                self._active = True
                self._peak_resident_active = self._resident_bytes
                self._peak_live_active = self._live_bytes
            self.active_iterations += 1

    def end_iteration(self, index: int) -> None:
        """Iteration end: flush deferred evictions, apply boundary directives."""
        self._flush_deferred()
        if not self._learning_frozen:
            # Commit this iteration as the reference profile for planning.
            self._warmup_iter_duration_ns = (self.device.clock.now_ns
                                             - self._iteration_start_ns)
            self._warmup_live_series = self._iter_live_series
            self._warmup_peak_bytes = self._iter_peak_live
            self._warmup_peak_phase_ns = self._iter_peak_phase_ns
        if self._active:
            resident = [state for state in self._states.values()
                        if state.resident and not state.freed]
            for directive in self.policy.directives_at_iteration_end(resident):
                self._evict(directive)
        self._iteration_index = None

    def finalize(self) -> None:
        """Balance the books at the end of the run.

        Every block still swapped out gets a zero-copy ``"shutdown"``
        ``swap_in``, so the trace's residency series always sums back to the
        allocation series and peak accounting can never be skewed by
        unmatched evictions at the tail of the run.
        """
        self._flush_deferred()
        for state in self._states.values():
            if state.freed or state.resident:
                continue
            state.resident = True
            state.pending_ready_ns = None
            # Bookkeeping only — nothing actually arrives on the device, so
            # the measured resident peak must not see this restoration.
            self._resident_bytes += state.size
            self.shutdown_restores += 1
            if state.dropped_for_recompute:
                state.dropped_for_recompute = False
                self.recompute_count += 1
                self.device.listeners.on_recompute(state.block, 0, "shutdown")
            else:
                self.swap_in_count += 1
                self.device.listeners.on_swap_in(state.block, 0, "shutdown")

    # -- listener hooks ----------------------------------------------------------------

    def on_malloc(self, block, requested_size: int) -> None:
        self._flush_deferred()
        state = self._states.get(block.block_id)
        if state is None:
            state = BlockState(block_id=block.block_id)
            self._states[block.block_id] = state
        state.size = block.size
        state.category = block.category
        state.tag = block.tag
        state.block = block
        state.freed = False
        state.pending_ready_ns = None
        state.dropped_for_recompute = False
        state.pending_first_write = not self._learning_frozen
        # Relieve pressure *before* the allocation lands — an allocator
        # under pressure frees space first — so the overshoot never shows
        # up in the resident peak (the swap_out events also precede the
        # malloc event in the trace).
        state.resident = False
        if self._active:
            resident = (s for s in self._states.values()
                        if s.resident and not s.freed)
            for directive in self.policy.directives_on_pressure(
                    resident, self._resident_bytes + block.size, state):
                self._evict(directive)
        self._enforce_capacity(block.size)
        state.resident = True
        self._bump_live(block.size)
        self._bump_resident(block.size)
        self._sample_live()
        self._last_event_ns = self.device.clock.now_ns

    def on_free(self, block) -> None:
        self._flush_deferred()
        state = self._states.get(block.block_id)
        if state is None or state.freed:
            return
        if not state.resident:
            # Freed while off-device: nothing comes back over the link (or
            # gets recomputed), but the residency books must balance before
            # the free event lands.  The restoration is bookkeeping only, so
            # it bypasses the peak trackers — a transient that never holds
            # real bytes must not count against the capacity invariant.
            state.resident = True
            state.pending_ready_ns = None
            self._resident_bytes += state.size
            self.discards += 1
            if state.dropped_for_recompute:
                state.dropped_for_recompute = False
                self.recompute_count += 1
                self.device.listeners.on_recompute(state.block, 0, "discard")
            else:
                self.swap_in_count += 1
                self.device.listeners.on_swap_in(state.block, 0, "discard")
        self._resident_bytes -= state.size
        self._live_bytes -= state.size
        self._sample_live()
        state.freed = True
        state.resident = False
        state.gap_tainted = False
        state.pending_first_write = False
        # A gap must never span a free/malloc round trip: once the block is
        # freed its bytes are gone, so there is nothing left to swap during
        # the idle time — unlike the paper's analysis-level ATIs, execution
        # windows are constrained to a single lifetime.
        state.prev_access_ns = None
        state.prev_access_iteration = None
        self._last_event_ns = self.device.clock.now_ns

    def on_read(self, block, nbytes: int, op: str) -> None:
        self._on_access(block, is_write=False)

    def on_write(self, block, nbytes: int, op: str) -> None:
        self._on_access(block, is_write=True)

    # -- core mechanics ----------------------------------------------------------------

    def _on_access(self, block, is_write: bool = False) -> None:
        self._flush_deferred()
        state = self._states.get(block.block_id)
        if state is None:
            # Attached mid-run: adopt the block as a resident unknown.
            state = BlockState(block_id=block.block_id, size=block.size,
                               category=block.category, tag=block.tag,
                               block=block)
            self._states[block.block_id] = state
            self._bump_live(block.size)
            self._bump_resident(block.size)
        was_nonresident = not state.resident and not state.freed
        if was_nonresident:
            self._ensure_resident(state)
        now = self.device.clock.now_ns
        if state.pending_first_write:
            # A lifetime's first access, when it is a write, closes the
            # kernel that produced the block: the clock only advanced inside
            # that kernel since the previous listener event, so the elapsed
            # time is the producer's duration — the recompute cost.  A
            # first *read* means the block was filled some other way (e.g.
            # a host staging copy); it is not rematerializable by replay.
            if is_write and not self._learning_frozen and not was_nonresident:
                state.compute_ns = max(0, now - self._last_event_ns)
            state.pending_first_write = False
        in_iteration = self._iteration_index is not None
        state.iter_access_count += 1
        if (state.iter_access_count == 1 and in_iteration
                and not self._learning_frozen):
            state.first_access_phase_ns = now - self._iteration_start_ns
        if state.prev_access_ns is not None:
            if state.gap_tainted:
                # The gap includes this block's own eviction/stall timeline;
                # learning from it would feed distortion back into the plan.
                state.gap_tainted = False
            elif (not self._learning_frozen
                  and state.prev_access_iteration is not None):
                gap = now - state.prev_access_ns
                if gap > state.best_gap_ns:
                    state.best_gap_ns = gap
                    state.best_gap_ordinal = state.prev_access_ordinal
                    state.best_gap_phase_ns = state.prev_access_phase_ns
                    state.best_gap_crosses = (
                        not in_iteration
                        or state.prev_access_iteration != self._iteration_index)
        state.prev_access_ns = now
        state.prev_access_ordinal = state.iter_access_count
        state.prev_access_iteration = self._iteration_index
        state.prev_access_phase_ns = (now - self._iteration_start_ns
                                      if in_iteration else 0)
        state.last_access_ns = now
        self._last_event_ns = now
        if self._active:
            directive = self.policy.directive_after_access(state)
            if directive is not None:
                self._deferred.append(directive)

    def _ensure_resident(self, state: BlockState) -> None:
        """Restore an off-device block before the access that needs it."""
        if state.dropped_for_recompute:
            self._rematerialize(state)
            return
        now = self.device.clock.now_ns
        nbytes = state.swapped_copy_bytes or state.size
        if state.pending_ready_ns is not None:
            ready = state.pending_ready_ns
            op = "prefetch"
        else:
            record = self.device.dma.async_host_to_device_at(
                nbytes, now, tag=f"swap_in:{state.tag}")
            self.copy_busy_ns += record.duration_ns
            ready = record.end_ns
            op = "demand"
            self.demand_fetches += 1
        stall = max(0, ready - now)
        if stall > 0:
            self.device.clock.advance(stall)
            self.stall_ns_total += stall
            if op == "prefetch":
                self.late_prefetches += 1
        elif op == "prefetch":
            self.prefetch_hits += 1
        if self._active:
            # A restoration raises residency just like an allocation does, so
            # budget policies (LRU) get the same pressure hook — and like the
            # on_malloc path it runs *before* the bump, so a demand-fetch
            # burst (the optimizer step pulling every buffer back) neither
            # blows through the budget nor leaks overshoot into the measured
            # resident peak (the relieving swap_outs also precede the
            # swap_in event in the trace).
            resident = (s for s in self._states.values()
                        if s.resident and not s.freed)
            for directive in self.policy.directives_on_pressure(
                    resident, self._resident_bytes + state.size, state):
                self._evict(directive)
        self._enforce_capacity(state.size)
        state.pending_ready_ns = None
        state.resident = True
        self._bump_resident(state.size)
        self.swap_in_count += 1
        self.bytes_swapped_in += nbytes
        self.device.listeners.on_swap_in(state.block, nbytes, op)

    def _rematerialize(self, state: BlockState) -> None:
        """Replay a dropped block's producer before the access that needs it.

        No bytes cross the link: the device spends the recorded producer
        duration on its compute stream (a synchronous replay — the access
        cannot proceed without the data), the clock advances by exactly that
        cost, and the block is resident again.  First-order model: the
        producer's own inputs are assumed reachable (checkpointing always
        keeps enough upstream state for a single replay).
        """
        cost = int(state.compute_ns or 0)
        if cost > 0:
            self.device.compute_stream.schedule(
                cost, name=f"recompute:{state.tag}")
            self.device.clock.advance(cost)
            self.recompute_ns_total += cost
        if self._active:
            resident = (s for s in self._states.values()
                        if s.resident and not s.freed)
            for directive in self.policy.directives_on_pressure(
                    resident, self._resident_bytes + state.size, state):
                self._evict(directive)
        self._enforce_capacity(state.size)
        state.dropped_for_recompute = False
        state.resident = True
        self._bump_resident(state.size)
        self.recompute_count += 1
        self.bytes_recomputed += state.size
        self.device.listeners.on_recompute(state.block, state.size, "demand")

    def _evict(self, directive: EvictDirective):
        """Execute one eviction directive (no-op if the block moved on).

        Returns the device→host copy record for swap evictions (so capacity
        governance can stall until the bytes actually left), ``None`` for
        recompute drops and no-ops.
        """
        state = self._states.get(directive.block_id)
        if state is None or state.freed or not state.resident:
            return None
        if directive.recompute:
            # Rematerialization drop: the bytes simply vanish — no transfer,
            # no prefetch; the block's next access replays its producer.
            state.resident = False
            state.dropped_for_recompute = True
            state.gap_tainted = True
            state.pending_ready_ns = None
            self._resident_bytes -= state.size
            self.recompute_drop_count += 1
            self.bytes_recompute_dropped += state.size
            self.device.listeners.on_recompute_drop(state.block, state.size,
                                                    self.policy.name)
            return None
        now = self.device.clock.now_ns
        copy_bytes = (directive.copy_bytes if directive.copy_bytes is not None
                      else state.size)
        out = self.device.dma.async_device_to_host_at(
            copy_bytes, now, tag=f"swap_out:{state.tag}")
        self.copy_busy_ns += out.duration_ns
        state.resident = False
        state.swapped_copy_bytes = copy_bytes
        state.gap_tainted = True
        self._resident_bytes -= state.size
        self.swap_out_count += 1
        self.bytes_swapped_out += copy_bytes
        if directive.prefetch_gap_ns is not None:
            deadline = (state.last_access_ns + int(directive.prefetch_gap_ns)
                        - self.prefetch_margin_ns)
            # The copy-back can start no earlier than its own eviction copy
            # finished (the host does not have the bytes before that).
            back = self.device.dma.async_host_to_device_by(
                copy_bytes, deadline, earliest_start_ns=max(now, out.end_ns),
                tag=f"swap_prefetch:{state.tag}")
            self.copy_busy_ns += back.duration_ns
            state.pending_ready_ns = back.end_ns
            self.prefetches_scheduled += 1
        self.device.listeners.on_swap_out(state.block, copy_bytes,
                                          self.policy.name)
        return out

    def _enforce_capacity(self, incoming: int) -> None:
        """Make room for ``incoming`` bytes under the capacity invariant.

        Force-evicts resident blocks in least-recently-accessed order (the
        caller has already marked the incoming block non-resident, so it can
        never evict itself) until ``resident + incoming <= capacity``, then
        stalls the device until the relieving copy-outs complete — memory is
        not reusable before the bytes have left.  Raises
        :class:`~repro.errors.InfeasibleScenarioError` up-front when even
        evicting every resident block cannot make room.
        """
        capacity = self.capacity_bytes
        if capacity is None:
            return
        excess = self._resident_bytes + incoming - capacity
        if excess <= 0:
            return
        candidates = [state for state in self._states.values()
                      if state.resident and not state.freed]
        evictable = sum(state.size for state in candidates)
        if excess > evictable:
            raise InfeasibleScenarioError(
                requested=incoming, resident=self._resident_bytes,
                evictable=evictable, capacity=capacity)
        candidates.sort(key=lambda state: state.last_access_ns)
        now = self.device.clock.now_ns
        wait_until = now
        for state in candidates:
            if excess <= 0:
                break
            out = self._evict(EvictDirective(block_id=state.block_id))
            if state.resident:
                continue
            self.pressure_evictions += 1
            excess -= state.size
            if out is not None and out.end_ns > wait_until:
                wait_until = out.end_ns
        stall = wait_until - now
        if stall > 0:
            self.device.clock.advance(stall)
            self.stall_ns_total += stall
            self.pressure_stall_ns += stall

    def _flush_deferred(self) -> None:
        """Run post-access evictions queued by the previous event."""
        if not self._deferred:
            return
        pending, self._deferred = self._deferred, []
        for directive in pending:
            self._evict(directive)

    def _bump_resident(self, size: int) -> None:
        self._resident_bytes += size
        if self._active and self._resident_bytes > self._peak_resident_active:
            self._peak_resident_active = self._resident_bytes
        if self._resident_bytes > self._peak_resident_overall:
            self._peak_resident_overall = self._resident_bytes

    def _bump_live(self, size: int) -> None:
        self._live_bytes += size
        if self._active and self._live_bytes > self._peak_live_active:
            self._peak_live_active = self._live_bytes

    def _sample_live(self) -> None:
        """Record a (phase, live bytes) sample for the warm-up footprint profile."""
        if self._learning_frozen or self._iteration_index is None:
            return
        phase = self.device.clock.now_ns - self._iteration_start_ns
        self._iter_live_series.append((phase, self._live_bytes))
        if self._live_bytes > self._iter_peak_live:
            self._iter_peak_live = self._live_bytes
            self._iter_peak_phase_ns = phase
