"""Training loop and profiled training sessions."""

from .session import SessionResult, TrainingRunConfig, build_device, run_training_session
from .trainer import IterationStats, Trainer

__all__ = [
    "IterationStats",
    "SessionResult",
    "Trainer",
    "TrainingRunConfig",
    "build_device",
    "run_training_session",
]
