"""Training loop (single-device and data-parallel) and profiled sessions."""

from .session import (
    SessionResult,
    TrainingRunConfig,
    build_cluster,
    build_device,
    build_device_group,
    run_training_session,
)
from .trainer import DataParallelTrainer, IterationStats, Trainer, shard_batch

__all__ = [
    "DataParallelTrainer",
    "IterationStats",
    "SessionResult",
    "Trainer",
    "TrainingRunConfig",
    "build_cluster",
    "build_device",
    "build_device_group",
    "run_training_session",
    "shard_batch",
]
