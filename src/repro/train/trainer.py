"""The training loop.

One iteration reproduces the dataflow of an eager PyTorch training step:

1. host-side data loading / preprocessing (device idle — the source of the
   paper's large outlier access intervals),
2. pinned H2D staging of the input and label batches,
3. forward pass (activations allocated and saved for backward),
4. loss computation,
5. ``zero_grad`` + backward pass (activations consumed and freed, parameter
   gradients accumulated into persistent buffers),
6. optimizer step (parameters and optimizer state read/written),
7. loss readback (D2H) and bookkeeping.

An optional recorder (duck-typed: ``begin_iteration`` / ``end_iteration``)
receives iteration boundaries so that the analyses can segment the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..core.events import MemoryCategory
from ..device.device import Device
from ..errors import ConfigurationError
from ..data.loader import DataLoader
from ..nn.module import Module
from ..nn.optim import Optimizer
from ..tensor.tensor import Tensor, from_numpy


@dataclass
class IterationStats:
    """Per-iteration measurements reported by the trainer."""

    index: int
    loss: Optional[float]
    start_ns: int
    end_ns: int
    allocated_bytes_end: int
    peak_allocated_bytes: int
    reserved_bytes_end: int

    @property
    def duration_ns(self) -> int:
        """Wall (simulated) duration of the iteration."""
        return self.end_ns - self.start_ns


class Trainer:
    """Drives training of a model on a simulated device."""

    def __init__(self, model: Module, loader: DataLoader, optimizer: Optimizer,
                 loss_fn: Module, device: Device, recorder=None,
                 post_iteration_host_ns: int = 1_000_000):
        self.model = model
        self.loader = loader
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.device = device
        self.recorder = recorder
        self.post_iteration_host_ns = int(post_iteration_host_ns)
        self.history: List[IterationStats] = []

    # -- single iteration ------------------------------------------------------------

    def train_iteration(self, index: int) -> IterationStats:
        """Run one full training iteration and return its statistics."""
        if self.recorder is not None:
            self.recorder.begin_iteration(index)
        start_ns = self.device.clock.now_ns

        # 1. Host-side data loading, then H2D staging of the batch.
        inputs_np, labels_np = self.loader.next_batch()
        self.device.host_pause(self.loader.host_time_ns())
        inputs = from_numpy(self.device, inputs_np, category=MemoryCategory.INPUT,
                            tag="input_batch", stage_h2d=True)
        labels = from_numpy(self.device, labels_np, category=MemoryCategory.LABEL,
                            tag="label_batch", stage_h2d=True)

        # 2. Forward pass and loss.
        logits = self.model(inputs)
        loss = self.loss_fn(logits, labels)
        logits.release()

        # 3. Backward pass.
        self.optimizer.zero_grad()
        grad_logits = self.loss_fn.backward()
        grad_inputs = self.model.backward(grad_logits)
        grad_logits.release()
        grad_inputs.release()

        # 4. Optimizer step.
        self.optimizer.step()

        # 5. Loss readback (D2H) and host-side bookkeeping.
        loss_values = loss.copy_to_host(tag="loss_readback")
        loss_value = float(loss_values[0]) if loss_values is not None else None
        loss.release()
        inputs.release()
        labels.release()
        self.device.host_pause(self.post_iteration_host_ns)

        stats = IterationStats(
            index=index,
            loss=loss_value,
            start_ns=start_ns,
            end_ns=self.device.clock.now_ns,
            allocated_bytes_end=self.device.allocated_bytes,
            peak_allocated_bytes=self.device.peak_allocated_bytes,
            reserved_bytes_end=self.device.reserved_bytes,
        )
        self.history.append(stats)
        if self.recorder is not None:
            self.recorder.end_iteration(index)
        return stats

    # -- multiple iterations ------------------------------------------------------------

    def train(self, num_iterations: int) -> List[IterationStats]:
        """Run ``num_iterations`` training iterations."""
        if num_iterations <= 0:
            raise ConfigurationError(f"num_iterations must be positive, got {num_iterations}")
        start_index = len(self.history)
        return [self.train_iteration(start_index + offset)
                for offset in range(num_iterations)]

    # -- reporting ---------------------------------------------------------------------

    def losses(self) -> List[Optional[float]]:
        """Loss of every completed iteration (``None`` in virtual mode)."""
        return [stats.loss for stats in self.history]

    def mean_iteration_time_ns(self) -> float:
        """Average simulated iteration time over the recorded history."""
        if not self.history:
            return 0.0
        return sum(stats.duration_ns for stats in self.history) / len(self.history)
