"""The training loop (single-device and data-parallel).

One iteration reproduces the dataflow of an eager PyTorch training step:

1. host-side data loading / preprocessing (device idle — the source of the
   paper's large outlier access intervals),
2. pinned H2D staging of the input and label batches,
3. forward pass (activations allocated and saved for backward),
4. loss computation,
5. ``zero_grad`` + backward pass (activations consumed and freed, parameter
   gradients accumulated into persistent buffers),
6. optimizer step (parameters and optimizer state read/written),
7. loss readback (D2H) and bookkeeping.

:class:`Trainer` drives the single-device loop.  :class:`DataParallelTrainer`
generalizes it to a :class:`~repro.device.cluster.DeviceGroup`: every global
batch is sharded across the replicas, each replica runs the per-shard
forward/backward against its own model copy and recorder, a gradient
allreduce on the group's :class:`~repro.device.collective.CollectiveEngine`
synchronizes the replica clocks (and emits the gradient read/write behaviors)
*before* the per-replica optimizer step — exactly PyTorch DDP's dataflow.
With one replica the allreduce is skipped entirely, so the data-parallel loop
degenerates to the single-device loop event for event.

An optional recorder (duck-typed: ``begin_iteration`` / ``end_iteration``)
receives iteration boundaries so that the analyses can segment the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..core.events import MemoryCategory
from ..device.cluster import DeviceGroup
from ..device.collective import CollectiveRecord
from ..device.device import Device
from ..errors import ConfigurationError
from ..data.loader import DataLoader
from ..nn.module import Module
from ..nn.optim import Optimizer
from ..tensor.tensor import Tensor, from_numpy


@dataclass
class IterationStats:
    """Per-iteration measurements reported by the trainer."""

    index: int
    loss: Optional[float]
    start_ns: int
    end_ns: int
    allocated_bytes_end: int
    peak_allocated_bytes: int
    reserved_bytes_end: int

    @property
    def duration_ns(self) -> int:
        """Wall (simulated) duration of the iteration."""
        return self.end_ns - self.start_ns


def _replica_forward_backward(device: Device, model: Module, loss_fn: Module,
                              optimizer: Optimizer, inputs_np, labels_np,
                              host_ns: int):
    """One replica's host wait, H2D staging, forward and backward pass.

    Shared verbatim by :class:`Trainer` and :class:`DataParallelTrainer` so
    the single-device loop and the one-replica data-parallel loop emit
    identical event streams by construction.  Returns the staged
    ``(inputs, labels, loss)`` tensors still holding device memory.
    """
    device.host_pause(host_ns)
    inputs = from_numpy(device, inputs_np, category=MemoryCategory.INPUT,
                        tag="input_batch", stage_h2d=True)
    labels = from_numpy(device, labels_np, category=MemoryCategory.LABEL,
                        tag="label_batch", stage_h2d=True)
    logits = model(inputs)
    loss = loss_fn(logits, labels)
    logits.release()
    optimizer.zero_grad()
    grad_logits = loss_fn.backward()
    grad_inputs = model.backward(grad_logits)
    grad_logits.release()
    grad_inputs.release()
    return inputs, labels, loss


def _replica_readback_release(device: Device, loss: Tensor, inputs: Tensor,
                              labels: Tensor, post_iteration_host_ns: int):
    """One replica's loss readback (D2H), tensor releases and host bookkeeping.

    Returns the host-side loss value (``None`` in symbolic execution).
    """
    loss_values = loss.copy_to_host(tag="loss_readback")
    loss_value = float(loss_values[0]) if loss_values is not None else None
    loss.release()
    inputs.release()
    labels.release()
    device.host_pause(post_iteration_host_ns)
    return loss_value


class Trainer:
    """Drives training of a model on a simulated device."""

    def __init__(self, model: Module, loader: DataLoader, optimizer: Optimizer,
                 loss_fn: Module, device: Device, recorder=None,
                 post_iteration_host_ns: int = 1_000_000):
        self.model = model
        self.loader = loader
        self.optimizer = optimizer
        self.loss_fn = loss_fn
        self.device = device
        self.recorder = recorder
        self.post_iteration_host_ns = int(post_iteration_host_ns)
        self.history: List[IterationStats] = []

    # -- single iteration ------------------------------------------------------------

    def train_iteration(self, index: int) -> IterationStats:
        """Run one full training iteration and return its statistics."""
        if self.recorder is not None:
            self.recorder.begin_iteration(index)
        start_ns = self.device.clock.now_ns

        # 1-3. Host-side data loading, H2D staging, forward and backward.
        inputs_np, labels_np = self.loader.next_batch()
        inputs, labels, loss = _replica_forward_backward(
            self.device, self.model, self.loss_fn, self.optimizer,
            inputs_np, labels_np, self.loader.host_time_ns())

        # 4. Optimizer step.
        self.optimizer.step()

        # 5. Loss readback (D2H) and host-side bookkeeping.
        loss_value = _replica_readback_release(
            self.device, loss, inputs, labels, self.post_iteration_host_ns)

        stats = IterationStats(
            index=index,
            loss=loss_value,
            start_ns=start_ns,
            end_ns=self.device.clock.now_ns,
            allocated_bytes_end=self.device.allocated_bytes,
            peak_allocated_bytes=self.device.peak_allocated_bytes,
            reserved_bytes_end=self.device.reserved_bytes,
        )
        self.history.append(stats)
        if self.recorder is not None:
            self.recorder.end_iteration(index)
        return stats

    # -- multiple iterations ------------------------------------------------------------

    def train(self, num_iterations: int) -> List[IterationStats]:
        """Run ``num_iterations`` training iterations."""
        if num_iterations <= 0:
            raise ConfigurationError(f"num_iterations must be positive, got {num_iterations}")
        start_index = len(self.history)
        return [self.train_iteration(start_index + offset)
                for offset in range(num_iterations)]

    # -- reporting ---------------------------------------------------------------------

    def losses(self) -> List[Optional[float]]:
        """Loss of every completed iteration (``None`` in symbolic mode)."""
        return [stats.loss for stats in self.history]

    def mean_iteration_time_ns(self) -> float:
        """Average simulated iteration time over the recorded history."""
        if not self.history:
            return 0.0
        return sum(stats.duration_ns for stats in self.history) / len(self.history)


# -- data-parallel training ----------------------------------------------------------


def shard_batch(array: np.ndarray, n_shards: int) -> List[np.ndarray]:
    """Split one global batch along the sample axis into ``n_shards`` shards.

    The batch must provide at least one sample per shard; with one shard the
    (single) shard is the batch itself.
    """
    if n_shards == 1:
        return [array]
    if array.shape[0] < n_shards:
        raise ConfigurationError(
            f"cannot shard a batch of {array.shape[0]} samples across "
            f"{n_shards} devices")
    return np.array_split(array, n_shards)


class DataParallelTrainer:
    """Drives synchronous data-parallel training on a :class:`DeviceGroup`.

    Parameters
    ----------
    group:
        The replica devices plus their collective engine.
    models / optimizers / loss_fns:
        One replica copy per rank, in rank order; replicas are assumed to
        start from identical weights (the session factory seeds every
        replica's initializer identically).
    loader:
        The single host-side loader producing *global* batches; every
        iteration the batch is sharded across the replicas.
    recorders:
        Optional per-rank recorders (duck-typed ``begin_iteration`` /
        ``end_iteration``), e.g. one
        :class:`~repro.core.profiler.MemoryProfiler` per replica.
    swap_executors:
        Optional per-rank closed-loop swap engines
        (:class:`~repro.swap.SwapExecutor`).  They receive the same iteration
        boundaries as the recorders — begin *after* them (so replan-time
        evictions are stamped with the new iteration) and end *before* them
        (so boundary-window evictions land inside the closing iteration).
    """

    def __init__(self, group: DeviceGroup, models: Sequence[Module],
                 loader: DataLoader, optimizers: Sequence[Optimizer],
                 loss_fns: Sequence[Module], recorders: Optional[Sequence] = None,
                 swap_executors: Optional[Sequence] = None,
                 post_iteration_host_ns: int = 1_000_000):
        n = len(group)
        if not (len(models) == len(optimizers) == len(loss_fns) == n):
            raise ConfigurationError(
                f"need one model/optimizer/loss per replica: got {len(models)}/"
                f"{len(optimizers)}/{len(loss_fns)} for {n} device(s)")
        if recorders is not None and len(recorders) != n:
            raise ConfigurationError(
                f"need one recorder per replica, got {len(recorders)} for {n}")
        if swap_executors is not None and len(swap_executors) != n:
            raise ConfigurationError(
                f"need one swap executor per replica, got {len(swap_executors)} "
                f"for {n}")
        self.group = group
        self.models = list(models)
        self.loader = loader
        self.optimizers = list(optimizers)
        self.loss_fns = list(loss_fns)
        self.recorders = list(recorders) if recorders is not None else []
        self.swap_executors = (list(swap_executors)
                               if swap_executors is not None else [])
        self.post_iteration_host_ns = int(post_iteration_host_ns)
        self.history: List[IterationStats] = []
        self.collective_records: List[CollectiveRecord] = []

    @property
    def n_devices(self) -> int:
        """Number of data-parallel replicas."""
        return len(self.group)

    # -- gradient allreduce ------------------------------------------------------------

    def _allreduce_gradients(self) -> Optional[CollectiveRecord]:
        """Average the replica gradients (barrier + collective cost + behaviors).

        Emits one ``read`` per gradient buffer per rank when the collective
        starts (the send), advances every replica clock through the
        cluster's allreduce cost model, averages the values in eager mode,
        and emits one ``write`` per buffer per rank at completion (the
        reduced result landing back in place).  Skipped entirely for a
        single replica.
        """
        if self.n_devices == 1:
            return None
        grads_per_rank = [[parameter.grad for parameter in model.parameters()
                           if parameter.grad is not None]
                          for model in self.models]
        nbytes = sum(grad.nbytes for grad in grads_per_rank[0])
        for grads in grads_per_rank:
            for grad in grads:
                grad.storage.record_read("grad_allreduce")
        record = self.group.collective.allreduce(nbytes, tag="grad_allreduce")
        if self.group.primary.is_eager:
            for buffers in zip(*grads_per_rank):
                mean = np.mean([grad.numpy() for grad in buffers], axis=0)
                for grad in buffers:
                    grad.storage.set_buffer(mean.reshape(-1))
        for grads in grads_per_rank:
            for grad in grads:
                grad.storage.record_write("grad_allreduce")
        self.collective_records.append(record)
        return record

    # -- single iteration --------------------------------------------------------------

    def train_iteration(self, index: int) -> IterationStats:
        """Run one data-parallel iteration; returns the aggregated statistics."""
        for recorder in self.recorders:
            recorder.begin_iteration(index)
        for executor in self.swap_executors:
            executor.begin_iteration(index)
        start_ns = min(device.clock.now_ns for device in self.group)

        # 1. One global host-side batch, sharded across the replicas.  Every
        # replica waits out the same host-side preparation time.
        inputs_np, labels_np = self.loader.next_batch()
        input_shards = shard_batch(inputs_np, self.n_devices)
        label_shards = shard_batch(labels_np, self.n_devices)
        host_ns = self.loader.host_time_ns()

        inputs: List[Tensor] = []
        labels: List[Tensor] = []
        losses: List[Tensor] = []
        # 2. Per-replica stage + forward + backward on the local shard
        # (the exact single-device phases, applied rank by rank).
        for rank, device in enumerate(self.group):
            rank_inputs, rank_labels, loss = _replica_forward_backward(
                device, self.models[rank], self.loss_fns[rank],
                self.optimizers[rank], input_shards[rank], label_shards[rank],
                host_ns)
            inputs.append(rank_inputs)
            labels.append(rank_labels)
            losses.append(loss)

        # 3. Gradient allreduce (no-op for one replica), then the optimizer
        # step every replica applies to its identical weights.
        self._allreduce_gradients()
        for optimizer in self.optimizers:
            optimizer.step()

        # 4. Per-replica loss readback (D2H) and host-side bookkeeping.
        loss_values: List[float] = []
        for rank, device in enumerate(self.group):
            value = _replica_readback_release(device, losses[rank], inputs[rank],
                                              labels[rank],
                                              self.post_iteration_host_ns)
            if value is not None:
                loss_values.append(value)

        stats = IterationStats(
            index=index,
            loss=sum(loss_values) / len(loss_values) if loss_values else None,
            start_ns=start_ns,
            end_ns=max(device.clock.now_ns for device in self.group),
            allocated_bytes_end=max(device.allocated_bytes for device in self.group),
            peak_allocated_bytes=max(device.peak_allocated_bytes
                                     for device in self.group),
            reserved_bytes_end=max(device.reserved_bytes for device in self.group),
        )
        self.history.append(stats)
        for executor in self.swap_executors:
            executor.end_iteration(index)
        for recorder in self.recorders:
            recorder.end_iteration(index)
        return stats

    # -- multiple iterations -----------------------------------------------------------

    def train(self, num_iterations: int) -> List[IterationStats]:
        """Run ``num_iterations`` data-parallel training iterations."""
        if num_iterations <= 0:
            raise ConfigurationError(f"num_iterations must be positive, got {num_iterations}")
        start_index = len(self.history)
        return [self.train_iteration(start_index + offset)
                for offset in range(num_iterations)]

    # -- reporting ---------------------------------------------------------------------

    def losses(self) -> List[Optional[float]]:
        """Mean replica loss of every completed iteration (None in symbolic mode)."""
        return [stats.loss for stats in self.history]

    def mean_iteration_time_ns(self) -> float:
        """Average simulated iteration time over the recorded history."""
        if not self.history:
            return 0.0
        return sum(stats.duration_ns for stats in self.history) / len(self.history)

    def collective_summary(self) -> dict:
        """Aggregate allreduce statistics of the run (engine summary passthrough)."""
        return self.group.collective.summary()
