"""Profiled training sessions.

A :class:`TrainingRunConfig` declaratively describes one training workload
(model, dataset, batch size, device, allocator, execution mode, host latency)
and :func:`run_training_session` builds every piece, attaches the memory
profiler, trains for the requested number of iterations and returns the
recorded trace together with the per-iteration statistics.

This is the single entry point used by the figure experiments, the examples
and the benchmark harness, so every reported number flows through the exact
same code path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.profiler import MemoryProfiler
from ..core.trace import MemoryTrace
from ..data.datasets import build_dataset
from ..data.loader import DataLoader, HostLatencyModel
from ..device.device import Device
from ..device.spec import DeviceSpec, get_device_spec
from ..errors import ConfigurationError
from ..models.registry import build_model
from ..nn.loss import CrossEntropyLoss
from ..nn.optim import SGD, Adam
from .trainer import IterationStats, Trainer


@dataclass
class TrainingRunConfig:
    """Declarative description of one profiled training run."""

    model: str = "paper_mlp"
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    dataset: str = "two_cluster"
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    batch_size: int = 64
    iterations: int = 5
    learning_rate: float = 0.01
    momentum: float = 0.9
    optimizer: str = "sgd"
    device_spec: str = "titan_x_pascal"
    dtype: str = "float32"
    allocator: str = "caching"
    execution_mode: str = "eager"
    seed: int = 0
    host_latency: Optional[HostLatencyModel] = None
    device_memory_capacity: Optional[int] = None
    host_dispatch_overhead_ns: Optional[int] = None
    label: str = ""

    def describe(self) -> str:
        """Short human-readable description used as a default label."""
        return (f"{self.model} on {self.dataset} "
                f"(batch={self.batch_size}, iters={self.iterations}, "
                f"mode={self.execution_mode})")


@dataclass
class SessionResult:
    """Everything produced by one profiled training run."""

    config: TrainingRunConfig
    trace: MemoryTrace
    iteration_stats: List[IterationStats]
    parameter_bytes: int
    parameter_count: int
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    allocator_stats: Dict[str, int]

    @property
    def label(self) -> str:
        """Label for reports (falls back to the config description)."""
        return self.config.label or self.config.describe()

    def losses(self) -> List[Optional[float]]:
        """Loss per iteration (``None`` entries in virtual execution)."""
        return [stats.loss for stats in self.iteration_stats]


def build_device(config: TrainingRunConfig) -> Device:
    """Construct the simulated device described by a run configuration."""
    spec: DeviceSpec = get_device_spec(config.device_spec)
    if config.device_memory_capacity is not None:
        spec = spec.with_memory_capacity(config.device_memory_capacity)
    device_kwargs = {}
    if config.host_dispatch_overhead_ns is not None:
        device_kwargs["host_dispatch_overhead_ns"] = int(config.host_dispatch_overhead_ns)
    return Device(spec, allocator=config.allocator, execution_mode=config.execution_mode,
                  default_dtype=config.dtype, **device_kwargs)


def run_training_session(config: TrainingRunConfig) -> SessionResult:
    """Run one profiled training session and return its trace and statistics."""
    if config.iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    device = build_device(config)
    rng = np.random.default_rng(config.seed)

    profiler = MemoryProfiler(device, metadata={
        "workload": config.describe(),
        "model": config.model,
        "dataset": config.dataset,
        "batch_size": config.batch_size,
        "iterations": config.iterations,
    })
    # The paper instruments the allocator for the whole run, so model and
    # optimizer construction (parameter allocation + initialization) is
    # profiled too — it is what puts the "parameters" bytes in the breakdown.
    with profiler:
        model = build_model(config.model, device, rng=rng, **dict(config.model_kwargs))
        dataset = build_dataset(config.dataset, seed=config.seed,
                                **dict(config.dataset_kwargs))
        loader = DataLoader(dataset, batch_size=config.batch_size,
                            host_latency=config.host_latency)
        loss_fn = CrossEntropyLoss(device, name="loss")

        if config.optimizer == "sgd":
            optimizer = SGD(model.parameters(), lr=config.learning_rate,
                            momentum=config.momentum)
        elif config.optimizer == "adam":
            optimizer = Adam(model.parameters(), lr=config.learning_rate)
        else:
            raise ConfigurationError(f"unknown optimizer '{config.optimizer}'")

        trainer = Trainer(model, loader, optimizer, loss_fn, device, recorder=profiler)
        iteration_stats = trainer.train(config.iterations)
    trace = profiler.trace()

    return SessionResult(
        config=config,
        trace=trace,
        iteration_stats=iteration_stats,
        parameter_bytes=model.parameter_bytes(),
        parameter_count=model.parameter_count(),
        peak_allocated_bytes=device.peak_allocated_bytes,
        peak_reserved_bytes=device.peak_reserved_bytes,
        allocator_stats=device.memory_stats(),
    )
