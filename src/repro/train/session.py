"""Profiled training sessions.

A :class:`TrainingRunConfig` declaratively describes one training workload
(model, dataset, batch size, device, allocator, execution mode, host latency,
replica count) and :func:`run_training_session` builds every piece, attaches
the memory profiler, trains for the requested number of iterations and
returns the recorded trace together with the per-iteration statistics.

This is the single entry point used by the figure experiments, the examples
and the benchmark harness, so every reported number flows through the exact
same code path.

Every session runs on a :class:`~repro.device.cluster.DeviceGroup`:
``n_devices=1`` (the default, and the paper's setting) degenerates to one
replica whose event stream is byte-identical to the historical single-device
path — the golden-figure tests pin that equivalence.  With ``n_devices>1``
the session becomes synchronous data-parallel training: one model/optimizer
replica per device (identically seeded), the global batch sharded across
ranks, a gradient allreduce on the configured interconnect before every
optimizer step, and one memory profiler per replica whose traces are merged
(with a ``device_rank`` dimension) into the session trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..core.profiler import MemoryProfiler
from ..core.trace import MemoryTrace, merge_rank_traces
from ..data.datasets import build_dataset
from ..data.loader import DataLoader, HostLatencyModel
from ..device.cluster import ClusterSpec, DeviceGroup, get_interconnect
from ..device.device import Device
from ..device.spec import DeviceSpec, get_device_spec
from ..errors import ConfigurationError
from ..models.registry import build_model
from ..nn.loss import CrossEntropyLoss
from ..nn.optim import SGD, Adam, Optimizer
from .trainer import DataParallelTrainer, IterationStats


@dataclass
class TrainingRunConfig:
    """Declarative description of one profiled training run."""

    model: str = "paper_mlp"
    model_kwargs: Dict[str, object] = field(default_factory=dict)
    dataset: str = "two_cluster"
    dataset_kwargs: Dict[str, object] = field(default_factory=dict)
    batch_size: int = 64
    iterations: int = 5
    learning_rate: float = 0.01
    momentum: float = 0.9
    optimizer: str = "sgd"
    device_spec: str = "titan_x_pascal"
    dtype: str = "float32"
    allocator: str = "caching"
    execution_mode: str = "eager"
    seed: int = 0
    host_latency: Optional[HostLatencyModel] = None
    device_memory_capacity: Optional[int] = None
    host_dispatch_overhead_ns: Optional[int] = None
    n_devices: int = 1
    interconnect: str = "pcie_gen3"
    allreduce_algorithm: str = "ring"
    swap: str = "off"
    label: str = ""

    def describe(self) -> str:
        """Short human-readable description used as a default label."""
        devices = f", n_devices={self.n_devices}" if self.n_devices > 1 else ""
        swap = f", swap={self.swap}" if self.swap != "off" else ""
        return (f"{self.model} on {self.dataset} "
                f"(batch={self.batch_size}, iters={self.iterations}, "
                f"mode={self.execution_mode}{devices}{swap})")

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form of this config, equal to ``dataclasses.asdict``.

        ``asdict`` walks every field through generic recursive introspection
        and dominates the cost of hashing a scenario fingerprint once the
        replay engine prices thousands of scenarios per second; this
        hand-rolled equivalent produces the identical dictionary an order of
        magnitude faster (``tests/test_sweep.py`` pins the equality).
        """
        from dataclasses import asdict, is_dataclass

        host_latency = (asdict(self.host_latency)
                        if is_dataclass(self.host_latency) else self.host_latency)
        return {
            "model": self.model,
            "model_kwargs": dict(self.model_kwargs),
            "dataset": self.dataset,
            "dataset_kwargs": dict(self.dataset_kwargs),
            "batch_size": self.batch_size,
            "iterations": self.iterations,
            "learning_rate": self.learning_rate,
            "momentum": self.momentum,
            "optimizer": self.optimizer,
            "device_spec": self.device_spec,
            "dtype": self.dtype,
            "allocator": self.allocator,
            "execution_mode": self.execution_mode,
            "seed": self.seed,
            "host_latency": host_latency,
            "device_memory_capacity": self.device_memory_capacity,
            "host_dispatch_overhead_ns": self.host_dispatch_overhead_ns,
            "n_devices": self.n_devices,
            "interconnect": self.interconnect,
            "allreduce_algorithm": self.allreduce_algorithm,
            "swap": self.swap,
            "label": self.label,
        }


@dataclass
class SessionResult:
    """Everything produced by one profiled training run.

    For multi-device sessions ``trace`` is the rank-merged trace (every event
    carries its ``device_rank``), the peak byte counts are *per-replica*
    peaks (max across ranks — the number that must fit each device), and
    ``collective`` summarizes the gradient allreduces.
    """

    config: TrainingRunConfig
    trace: MemoryTrace
    iteration_stats: List[IterationStats]
    parameter_bytes: int
    parameter_count: int
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    allocator_stats: Dict[str, int]
    n_devices: int = 1
    collective: Optional[Dict[str, object]] = None
    rank_traces: Optional[List[MemoryTrace]] = None
    #: Swap-execution outcome (rank-0 replica's summary dict plus the rank
    #: count; replicas are symmetric) — ``None`` when ``config.swap`` is off.
    swap_execution: Optional[Dict[str, object]] = None

    @property
    def label(self) -> str:
        """Label for reports (falls back to the config description)."""
        return self.config.label or self.config.describe()

    def losses(self) -> List[Optional[float]]:
        """Loss per iteration (``None`` entries in symbolic execution)."""
        return [stats.loss for stats in self.iteration_stats]


def build_cluster(config: TrainingRunConfig) -> ClusterSpec:
    """Construct the cluster specification described by a run configuration.

    With the swap engine on, ``device_memory_capacity`` is enforced by the
    executor's capacity governor (forced eviction with stall accounting, a
    structured :class:`~repro.errors.InfeasibleScenarioError` when even full
    eviction cannot fit) rather than by shrinking the allocator — the
    allocator keeps its native capacity so blocks that are merely *swapped
    out* do not trip a raw OOM while their bytes are on the host.
    """
    spec: DeviceSpec = get_device_spec(config.device_spec)
    if config.device_memory_capacity is not None and config.swap == "off":
        spec = spec.with_memory_capacity(config.device_memory_capacity)
    return ClusterSpec(
        device=spec,
        n_devices=int(config.n_devices),
        interconnect=get_interconnect(config.interconnect),
        allreduce_algorithm=config.allreduce_algorithm,
    )


def _device_kwargs(config: TrainingRunConfig) -> Dict[str, object]:
    kwargs: Dict[str, object] = dict(
        allocator=config.allocator,
        execution_mode=config.execution_mode,
        default_dtype=config.dtype,
    )
    if config.host_dispatch_overhead_ns is not None:
        kwargs["host_dispatch_overhead_ns"] = int(config.host_dispatch_overhead_ns)
    return kwargs


def build_device_group(config: TrainingRunConfig) -> DeviceGroup:
    """Construct the replica device group described by a run configuration."""
    return DeviceGroup(build_cluster(config), **_device_kwargs(config))


def build_device(config: TrainingRunConfig) -> Device:
    """Construct one simulated device described by a run configuration."""
    return Device(build_cluster(config).device, **_device_kwargs(config))


def _build_optimizer(config: TrainingRunConfig, model) -> Optimizer:
    """Construct one replica's optimizer."""
    if config.optimizer == "sgd":
        return SGD(model.parameters(), lr=config.learning_rate,
                   momentum=config.momentum)
    if config.optimizer == "adam":
        return Adam(model.parameters(), lr=config.learning_rate)
    raise ConfigurationError(f"unknown optimizer '{config.optimizer}'")


def _build_swap_executors(config: TrainingRunConfig, group: DeviceGroup):
    """One closed-loop swap executor per replica device (empty list when off).

    Executors are attached *before* the profilers so that the stalls they
    insert and the ``swap_in`` events they emit land ahead of the accesses
    that needed them (see :mod:`repro.swap`).
    """
    if config.swap == "off":
        return []
    from ..swap import EXECUTION_POLICIES, SwapExecutor, get_execution_policy
    if config.swap not in EXECUTION_POLICIES:
        known = ", ".join(("off",) + tuple(EXECUTION_POLICIES))
        raise ConfigurationError(
            f"unknown swap mode '{config.swap}'; known modes: {known}")
    kwargs: Dict[str, object] = {}
    if config.swap == "zero_offload":
        kwargs["world_size"] = len(group)
    if config.swap == "unified" and config.device_memory_capacity is not None:
        kwargs["capacity_bytes"] = int(config.device_memory_capacity)
    executors = []
    for device in group:
        executor = SwapExecutor(device, get_execution_policy(config.swap, **kwargs),
                                capacity_bytes=config.device_memory_capacity)
        device.attach_swap_executor(executor)
        executors.append(executor)
    return executors


def run_training_session(config: TrainingRunConfig, capture=None) -> SessionResult:
    """Run one profiled training session and return its trace and statistics.

    ``capture`` is an optional instrumentation hook used by the replay engine
    (:mod:`repro.experiments.replay`): an object with ``attach(group)`` —
    called right after device construction, before any profiled work — and
    ``collect(...)`` — called once the session is complete.  Ordinary callers
    leave it ``None`` and pay nothing.
    """
    if config.iterations <= 0:
        raise ConfigurationError("iterations must be positive")
    if config.n_devices < 1:
        raise ConfigurationError("n_devices must be at least 1")
    if config.batch_size < config.n_devices:
        raise ConfigurationError(
            f"batch_size ({config.batch_size}) must provide at least one sample "
            f"per device ({config.n_devices})")
    group = build_device_group(config)
    if capture is not None:
        capture.attach(group)
    n_devices = len(group)
    swap_executors = _build_swap_executors(config, group)

    base_metadata = {
        "workload": config.describe(),
        "model": config.model,
        "dataset": config.dataset,
        "batch_size": config.batch_size,
        "iterations": config.iterations,
        "n_devices": n_devices,
    }
    if n_devices > 1:
        base_metadata["interconnect"] = config.interconnect
        base_metadata["allreduce_algorithm"] = config.allreduce_algorithm
    if config.swap != "off":
        base_metadata["swap"] = config.swap
    profilers = [
        MemoryProfiler(device, metadata={**base_metadata, "device_rank": rank})
        for rank, device in enumerate(group)
    ]

    # The paper instruments the allocator for the whole run, so model and
    # optimizer construction (parameter allocation + initialization) is
    # profiled too — it is what puts the "parameters" bytes in the breakdown.
    # Every replica initializes from an identically seeded generator, so all
    # ranks start (and, after each allreduce, stay) with the same weights.
    for profiler in profilers:
        profiler.start()
    try:
        models = [build_model(config.model, device,
                              rng=np.random.default_rng(config.seed),
                              **dict(config.model_kwargs))
                  for device in group]
        dataset = build_dataset(config.dataset, seed=config.seed,
                                **dict(config.dataset_kwargs))
        loader = DataLoader(dataset, batch_size=config.batch_size,
                            host_latency=config.host_latency)
        loss_fns = [CrossEntropyLoss(device, name="loss") for device in group]
        optimizers = [_build_optimizer(config, model) for model in models]

        trainer = DataParallelTrainer(group, models, loader, optimizers, loss_fns,
                                      recorders=profilers,
                                      swap_executors=swap_executors or None)
        iteration_stats = trainer.train(config.iterations)
        for executor in swap_executors:
            executor.finalize()
    finally:
        for profiler in profilers:
            profiler.stop()
    rank_traces = [profiler.trace() for profiler in profilers]
    trace = merge_rank_traces(rank_traces)

    swap_execution: Optional[Dict[str, object]] = None
    if swap_executors:
        swap_execution = swap_executors[0].summary().to_dict()
        swap_execution["n_ranks"] = n_devices

    if capture is not None:
        capture.collect(group=group, profilers=profilers, trainer=trainer,
                        rank_traces=rank_traces)

    return SessionResult(
        config=config,
        trace=trace,
        iteration_stats=iteration_stats,
        parameter_bytes=models[0].parameter_bytes(),
        parameter_count=models[0].parameter_count(),
        peak_allocated_bytes=max(device.peak_allocated_bytes for device in group),
        peak_reserved_bytes=max(device.peak_reserved_bytes for device in group),
        allocator_stats=group.primary.memory_stats(),
        n_devices=n_devices,
        collective=(trainer.collective_summary() if n_devices > 1 else None),
        rank_traces=(rank_traces if n_devices > 1 else None),
        swap_execution=swap_execution,
    )
