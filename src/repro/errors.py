"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch a single base class.  The subclasses mirror the major
subsystems: the simulated device, the tensor library, the neural-network
framework and the memory-behavior analyses.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class DeviceError(ReproError):
    """Base class for errors raised by the simulated device."""


class OutOfMemoryError(DeviceError):
    """Raised when a device allocation cannot be satisfied.

    Mirrors CUDA's ``cudaErrorMemoryAllocation`` / PyTorch's
    ``torch.cuda.OutOfMemoryError``: the message records how much was
    requested, how much is free and how much is cached.
    """

    def __init__(self, requested: int, free: int, reserved: int, capacity: int):
        self.requested = int(requested)
        self.free = int(free)
        self.reserved = int(reserved)
        self.capacity = int(capacity)
        super().__init__(
            f"Device out of memory: tried to allocate {requested} bytes "
            f"(capacity {capacity} bytes, reserved {reserved} bytes, "
            f"free {free} bytes)"
        )

    def __reduce__(self):
        """Pickle via the keyword fields (sweep workers ship OOMs in-band)."""
        return (OutOfMemoryError,
                (self.requested, self.free, self.reserved, self.capacity))


class InfeasibleScenarioError(DeviceError):
    """Raised when even full eviction cannot fit the working set.

    The capacity-governed swap executor degrades gracefully under pressure
    (forced LRU eviction with stall accounting), so a scenario whose peak
    merely exceeds ``device_memory_capacity`` still completes.  This error is
    the structured end of that road: the bytes that must be simultaneously
    resident (the incoming block plus everything pinned by the current
    access) exceed the capacity, so no eviction schedule can make the
    scenario feasible.
    """

    def __init__(self, requested: int, resident: int, evictable: int,
                 capacity: int):
        self.requested = int(requested)
        self.resident = int(resident)
        self.evictable = int(evictable)
        self.capacity = int(capacity)
        super().__init__(
            f"Scenario infeasible at capacity {capacity} bytes: the working "
            f"set needs {requested} incoming bytes on top of {resident} "
            f"resident bytes of which only {evictable} are evictable"
        )

    def __reduce__(self):
        """Pickle via the keyword fields (sweep workers ship these in-band)."""
        return (InfeasibleScenarioError,
                (self.requested, self.resident, self.evictable, self.capacity))


class SweepFaultError(ReproError):
    """Base class for *transient* sweep-infrastructure failures.

    Errors in this family describe the harness (a worker died, a deadline
    expired, a fault was injected) rather than the scenario itself, so the
    fault-tolerant :class:`~repro.experiments.sweep.SweepRunner` classifies
    them as retryable: the scenario is re-submitted under its retry budget
    instead of being recorded as a deterministic failure.
    """


class InjectedFaultError(SweepFaultError):
    """Raised by the deterministic fault-injection harness.

    Carries the scenario key and the zero-based attempt the fault fired on,
    so chaos tests can assert exactly *which* execution was disturbed.  The
    error is transient by construction: a :class:`~repro.experiments.faults.FaultPlan`
    stops firing once a fault's ``times`` budget is spent, so a retried
    scenario converges to the fault-free result.
    """

    def __init__(self, key: str, attempt: int = 0, kind: str = "error"):
        self.key = str(key)
        self.attempt = int(attempt)
        self.kind = str(kind)
        super().__init__(
            f"injected {self.kind} fault on scenario {self.key[:12]}... "
            f"(attempt {self.attempt})"
        )

    def __reduce__(self):
        """Pickle via the keyword fields (these cross the pool boundary)."""
        return (InjectedFaultError, (self.key, self.attempt, self.kind))


class ScenarioTimeoutError(SweepFaultError):
    """Raised when a scenario exceeds its wall-clock deadline.

    The fault-tolerant sweep runner kills the hung worker processes, rebuilds
    the pool and records (or retries) the scenario with this structured
    error; ``elapsed_s`` is the observed wall time, ``timeout_s`` the
    configured per-scenario deadline.
    """

    def __init__(self, key: str, elapsed_s: float, timeout_s: float):
        self.key = str(key)
        self.elapsed_s = float(elapsed_s)
        self.timeout_s = float(timeout_s)
        super().__init__(
            f"scenario {self.key[:12]}... exceeded its {timeout_s:.3f}s "
            f"deadline ({elapsed_s:.3f}s elapsed)"
        )

    def __reduce__(self):
        """Pickle via the keyword fields (these cross the pool boundary)."""
        return (ScenarioTimeoutError, (self.key, self.elapsed_s, self.timeout_s))


class InvalidFreeError(DeviceError):
    """Raised when freeing a pointer the allocator does not own."""


class AllocatorStateError(DeviceError):
    """Raised when the allocator's internal invariants are violated."""


class ClockError(DeviceError):
    """Raised when the simulated clock would move backwards."""


class TensorError(ReproError):
    """Base class for tensor-library errors."""


class ShapeError(TensorError):
    """Raised when tensor shapes are incompatible for an operation."""


class DTypeError(TensorError):
    """Raised when an unsupported or mismatched dtype is used."""


class MaterializationError(TensorError):
    """Raised when numeric data is requested from a virtual (shape-only) tensor."""


class ModuleError(ReproError):
    """Base class for neural-network module errors."""


class BackwardBeforeForwardError(ModuleError):
    """Raised when ``backward`` is called before ``forward`` on a module."""


class ConfigurationError(ReproError):
    """Raised when an experiment or component is mis-configured."""


class TraceError(ReproError):
    """Base class for memory-trace recording/analysis errors."""


class EmptyTraceError(TraceError):
    """Raised when an analysis requires events but the trace is empty."""


class TraceFormatError(TraceError):
    """Raised when a serialized trace cannot be parsed."""
