"""Unit helpers used throughout the package.

All device times are integer **nanoseconds** and all sizes are integer
**bytes**.  These helpers convert to and from human-friendly units and
format quantities for reports.
"""

from __future__ import annotations

# --- size units -------------------------------------------------------------

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

# The paper (and CUDA's bandwidthTest) reports bandwidth in GB/s using the
# decimal gigabyte, so keep both conventions available.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# --- time units (nanoseconds are the base unit) ------------------------------

NS = 1
US = 1_000
MS = 1_000_000
SECOND = 1_000_000_000


def us_to_ns(us: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(us * US))


def ms_to_ns(ms: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(ms * MS))


def s_to_ns(seconds: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(seconds * SECOND))


def ns_to_us(ns: int) -> float:
    """Convert nanoseconds to microseconds (float)."""
    return ns / US


def ns_to_ms(ns: int) -> float:
    """Convert nanoseconds to milliseconds (float)."""
    return ns / MS


def ns_to_s(ns: int) -> float:
    """Convert nanoseconds to seconds (float)."""
    return ns / SECOND


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert a decimal GB/s bandwidth to bytes per nanosecond."""
    return gbps * GB / SECOND


def bytes_per_ns_to_gbps(bpn: float) -> float:
    """Convert bytes per nanosecond back to decimal GB/s."""
    return bpn * SECOND / GB


def format_bytes(nbytes: float) -> str:
    """Format a byte count with a binary-unit suffix (e.g. ``1.50 MiB``)."""
    nbytes = float(nbytes)
    sign = "-" if nbytes < 0 else ""
    nbytes = abs(nbytes)
    if nbytes >= GIB:
        return f"{sign}{nbytes / GIB:.2f} GiB"
    if nbytes >= MIB:
        return f"{sign}{nbytes / MIB:.2f} MiB"
    if nbytes >= KIB:
        return f"{sign}{nbytes / KIB:.2f} KiB"
    return f"{sign}{nbytes:.0f} B"


def format_duration(ns: float) -> str:
    """Format a duration in nanoseconds with an adaptive unit (e.g. ``12.3 us``)."""
    ns = float(ns)
    sign = "-" if ns < 0 else ""
    ns = abs(ns)
    if ns >= SECOND:
        return f"{sign}{ns / SECOND:.3f} s"
    if ns >= MS:
        return f"{sign}{ns / MS:.3f} ms"
    if ns >= US:
        return f"{sign}{ns / US:.3f} us"
    return f"{sign}{ns:.0f} ns"
