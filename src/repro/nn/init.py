"""Weight initialization schemes.

Initializers write values into parameter tensors on the device, so every
initialization shows up in the memory trace as a write to a parameter block
before training starts (just like the randomized init kernels PyTorch runs).
All initializers are deterministic given the supplied NumPy generator.
"""

from __future__ import annotations

import math
from typing import Iterable, Tuple

import numpy as np

from .parameter import Parameter


def _fan_in_fan_out(shape: Tuple[int, ...]) -> Tuple[int, int]:
    """Compute fan-in/fan-out for linear ``(in, out)`` and conv ``(O, C, kh, kw)`` weights."""
    if len(shape) == 2:
        fan_in, fan_out = shape[0], shape[1]
    elif len(shape) == 4:
        receptive = shape[2] * shape[3]
        fan_in = shape[1] * receptive
        fan_out = shape[0] * receptive
    else:
        fan_in = fan_out = int(np.prod(shape)) if shape else 1
    return max(1, fan_in), max(1, fan_out)


def kaiming_normal_(param: Parameter, rng: np.random.Generator) -> None:
    """He-normal initialization (suited to ReLU networks)."""
    fan_in, _ = _fan_in_fan_out(param.shape)
    std = math.sqrt(2.0 / fan_in)
    if param.data.storage.is_materialized:
        values = rng.standard_normal(param.numel).astype(np.float32) * std
        param.set_values(values)
    else:
        param.data.storage.record_write("param_init")


def kaiming_uniform_(param: Parameter, rng: np.random.Generator) -> None:
    """He-uniform initialization (PyTorch's default for conv/linear weights)."""
    fan_in, _ = _fan_in_fan_out(param.shape)
    bound = math.sqrt(6.0 / fan_in)
    if param.data.storage.is_materialized:
        values = rng.uniform(-bound, bound, size=param.numel).astype(np.float32)
        param.set_values(values)
    else:
        param.data.storage.record_write("param_init")


def xavier_uniform_(param: Parameter, rng: np.random.Generator) -> None:
    """Glorot-uniform initialization (suited to tanh/sigmoid networks)."""
    fan_in, fan_out = _fan_in_fan_out(param.shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    if param.data.storage.is_materialized:
        values = rng.uniform(-bound, bound, size=param.numel).astype(np.float32)
        param.set_values(values)
    else:
        param.data.storage.record_write("param_init")


def constant_(param: Parameter, value: float) -> None:
    """Fill a parameter with a constant (used for biases and BN gamma/beta)."""
    if param.data.storage.is_materialized:
        param.set_values(np.full(param.numel, value, dtype=np.float32))
    else:
        param.data.storage.record_write("param_init")


def zeros_(param: Parameter) -> None:
    """Fill a parameter with zeros."""
    constant_(param, 0.0)


def ones_(param: Parameter) -> None:
    """Fill a parameter with ones."""
    constant_(param, 1.0)
