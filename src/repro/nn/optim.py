"""Optimizers.

Optimizer state (momentum buffers, Adam moments) is allocated lazily on the
first step and then persists for the rest of training, just like in PyTorch.
In the paper's three-way breakdown this state is grouped with the parameters.

Mixed-precision realism: when a parameter is stored in a reduced-precision
dtype (``float16`` training), the optimizer follows the standard AMP recipe
instead of letting everything shadow the training dtype — it keeps a
*float32 master copy* of the weights plus float32 optimizer state, updates
the master, and writes the half-precision parameter back as a downcast.
Both the master copies and the state buffers live in the
``optimizer_state`` memory category, so half-precision runs show the
realistic footprint: half-size parameters/gradients/activations but
full-size optimizer state.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.events import MemoryCategory
from ..errors import ConfigurationError
from ..tensor import functional as F
from ..tensor.dtype import DType, float32
from ..tensor.tensor import Tensor, empty
from .parameter import Parameter


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0
        self._master_weights: Dict[int, Tensor] = {}

    def zero_grad(self) -> None:
        """Zero every existing parameter gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        raise NotImplementedError

    # -- mixed-precision support -------------------------------------------------------

    @staticmethod
    def _needs_master(parameter: Parameter) -> bool:
        """Whether the parameter's dtype is a reduced-precision float (AMP)."""
        dtype = parameter.data.dtype
        return dtype.numpy_dtype.kind == "f" and dtype.itemsize < float32.itemsize

    @classmethod
    def state_dtype(cls, parameter: Parameter) -> DType:
        """Dtype of this parameter's optimizer state (fp32 under half precision)."""
        return float32 if cls._needs_master(parameter) else parameter.data.dtype

    def master_weight(self, index: int, parameter: Parameter) -> Optional[Tensor]:
        """The fp32 master copy of a reduced-precision parameter (lazy; else None).

        Allocation reads the half-precision weights and writes the upcast
        master copy, exactly the memory behaviors of AMP's master-weight
        initialization.
        """
        if not self._needs_master(parameter):
            return None
        if index not in self._master_weights:
            master = empty(parameter.device, parameter.shape, dtype=float32,
                           category=MemoryCategory.OPTIMIZER_STATE,
                           tag=f"{parameter.name}.master")
            if master.storage.is_materialized:
                master.storage.set_buffer(
                    parameter.data.numpy().reshape(-1).astype(np.float32))
            parameter.data.storage.record_read("master_init")
            master.storage.record_write("master_init")
            self._master_weights[index] = master
        return self._master_weights[index]

    def _writeback_master(self, master: Tensor, parameter: Parameter) -> None:
        """Downcast the updated fp32 master back into the half-precision parameter."""
        if parameter.data.storage.is_materialized:
            parameter.data.storage.set_buffer(
                master.numpy().reshape(-1)
                .astype(parameter.data.dtype.numpy_dtype))
        master.storage.record_read("master_downcast")
        parameter.data.storage.record_write("master_downcast")

    def master_weight_bytes(self) -> int:
        """Total device bytes of fp32 master weight copies (0 in fp32 training)."""
        return sum(master.nbytes for master in self._master_weights.values())

    def state_bytes(self) -> int:
        """Total device bytes of optimizer state (master copies included)."""
        return self.master_weight_bytes()


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if momentum < 0.0:
            raise ConfigurationError(f"momentum must be non-negative, got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._momentum_buffers: Dict[int, Tensor] = {}

    def _momentum_buffer(self, index: int, parameter: Parameter) -> Optional[Tensor]:
        if self.momentum == 0.0:
            return None
        if index not in self._momentum_buffers:
            buffer = empty(parameter.device, parameter.shape,
                           dtype=self.state_dtype(parameter),
                           category=MemoryCategory.OPTIMIZER_STATE,
                           tag=f"{parameter.name}.momentum")
            F.zero_(buffer)
            self._momentum_buffers[index] = buffer
        return self._momentum_buffers[index]

    def step(self) -> None:
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            buffer = self._momentum_buffer(index, parameter)
            master = self.master_weight(index, parameter)
            target = master if master is not None else parameter.data
            F.sgd_step(target, parameter.grad, buffer, lr=self.lr,
                       momentum=self.momentum, weight_decay=self.weight_decay)
            if master is not None:
                self._writeback_master(master, parameter)

    def state_bytes(self) -> int:
        return (super().state_bytes()
                + sum(buffer.nbytes for buffer in self._momentum_buffers.values()))


class Adam(Optimizer):
    """Adam optimizer with per-parameter first/second moment buffers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._exp_avg: Dict[int, Tensor] = {}
        self._exp_avg_sq: Dict[int, Tensor] = {}

    def _moments(self, index: int, parameter: Parameter) -> tuple:
        if index not in self._exp_avg:
            for store, suffix in ((self._exp_avg, "exp_avg"), (self._exp_avg_sq, "exp_avg_sq")):
                buffer = empty(parameter.device, parameter.shape,
                               dtype=self.state_dtype(parameter),
                               category=MemoryCategory.OPTIMIZER_STATE,
                               tag=f"{parameter.name}.{suffix}")
                F.zero_(buffer)
                store[index] = buffer
        return self._exp_avg[index], self._exp_avg_sq[index]

    def step(self) -> None:
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            exp_avg, exp_avg_sq = self._moments(index, parameter)
            master = self.master_weight(index, parameter)
            target = master if master is not None else parameter.data
            F.adam_step(target, parameter.grad, exp_avg, exp_avg_sq, lr=self.lr,
                        beta1=self.beta1, beta2=self.beta2, eps=self.eps,
                        step=self.step_count, weight_decay=self.weight_decay)
            if master is not None:
                self._writeback_master(master, parameter)

    def state_bytes(self) -> int:
        moments = list(self._exp_avg.values()) + list(self._exp_avg_sq.values())
        return super().state_bytes() + sum(buffer.nbytes for buffer in moments)
