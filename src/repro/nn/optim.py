"""Optimizers.

Optimizer state (momentum buffers, Adam moments) is allocated lazily on the
first step and then persists for the rest of training, just like in PyTorch.
In the paper's three-way breakdown this state is grouped with the parameters.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..core.events import MemoryCategory
from ..errors import ConfigurationError
from ..tensor import functional as F
from ..tensor.tensor import Tensor, empty
from .parameter import Parameter


class Optimizer:
    """Base class holding the parameter list and shared bookkeeping."""

    def __init__(self, parameters: Iterable[Parameter], lr: float):
        self.parameters: List[Parameter] = list(parameters)
        if not self.parameters:
            raise ConfigurationError("optimizer needs at least one parameter")
        if lr <= 0:
            raise ConfigurationError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.step_count = 0

    def zero_grad(self) -> None:
        """Zero every existing parameter gradient."""
        for parameter in self.parameters:
            parameter.zero_grad()

    def step(self) -> None:
        """Apply one update to every parameter that has a gradient."""
        raise NotImplementedError

    def state_bytes(self) -> int:
        """Total device bytes of optimizer state."""
        return 0


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters: Iterable[Parameter], lr: float, momentum: float = 0.0,
                 weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        if momentum < 0.0:
            raise ConfigurationError(f"momentum must be non-negative, got {momentum}")
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._momentum_buffers: Dict[int, Tensor] = {}

    def _momentum_buffer(self, index: int, parameter: Parameter) -> Optional[Tensor]:
        if self.momentum == 0.0:
            return None
        if index not in self._momentum_buffers:
            buffer = empty(parameter.device, parameter.shape, dtype=parameter.data.dtype,
                           category=MemoryCategory.OPTIMIZER_STATE,
                           tag=f"{parameter.name}.momentum")
            F.zero_(buffer)
            self._momentum_buffers[index] = buffer
        return self._momentum_buffers[index]

    def step(self) -> None:
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            buffer = self._momentum_buffer(index, parameter)
            F.sgd_step(parameter.data, parameter.grad, buffer, lr=self.lr,
                       momentum=self.momentum, weight_decay=self.weight_decay)

    def state_bytes(self) -> int:
        return sum(buffer.nbytes for buffer in self._momentum_buffers.values())


class Adam(Optimizer):
    """Adam optimizer with per-parameter first/second moment buffers."""

    def __init__(self, parameters: Iterable[Parameter], lr: float = 1e-3,
                 betas: tuple = (0.9, 0.999), eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = float(betas[0]), float(betas[1])
        self.eps = float(eps)
        self.weight_decay = float(weight_decay)
        self._exp_avg: Dict[int, Tensor] = {}
        self._exp_avg_sq: Dict[int, Tensor] = {}

    def _moments(self, index: int, parameter: Parameter) -> tuple:
        if index not in self._exp_avg:
            for store, suffix in ((self._exp_avg, "exp_avg"), (self._exp_avg_sq, "exp_avg_sq")):
                buffer = empty(parameter.device, parameter.shape, dtype=parameter.data.dtype,
                               category=MemoryCategory.OPTIMIZER_STATE,
                               tag=f"{parameter.name}.{suffix}")
                F.zero_(buffer)
                store[index] = buffer
        return self._exp_avg[index], self._exp_avg_sq[index]

    def step(self) -> None:
        self.step_count += 1
        for index, parameter in enumerate(self.parameters):
            if parameter.grad is None:
                continue
            exp_avg, exp_avg_sq = self._moments(index, parameter)
            F.adam_step(parameter.data, parameter.grad, exp_avg, exp_avg_sq, lr=self.lr,
                        beta1=self.beta1, beta2=self.beta2, eps=self.eps,
                        step=self.step_count, weight_decay=self.weight_decay)

    def state_bytes(self) -> int:
        moments = list(self._exp_avg.values()) + list(self._exp_avg_sq.values())
        return sum(buffer.nbytes for buffer in moments)
