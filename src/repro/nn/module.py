"""Module base class: the building block of the DNN framework.

Unlike PyTorch, this framework uses *module-level* backward instead of a
taped autograd: each module's ``forward`` saves exactly the tensors its
``backward`` will need (via :meth:`Module.save_for_backward`) and ``backward``
releases them once consumed.  This reproduces the memory behavior the paper
characterizes — activations written in the forward pass stay resident until
their backward consumer runs, then are freed and their blocks return to the
caching allocator for reuse in the next iteration.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..device.device import Device
from ..errors import BackwardBeforeForwardError, ModuleError
from ..tensor.tensor import Tensor
from .parameter import Parameter


class Module:
    """Base class for all neural-network modules."""

    def __init__(self, device: Device, name: str = ""):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "_saved", OrderedDict())
        self.device = device
        self.name = name or self.__class__.__name__
        self.training = True

    # -- registration ----------------------------------------------------------------

    def __setattr__(self, key: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[key] = value
        elif isinstance(value, Module):
            self._modules[key] = value
        object.__setattr__(self, key, value)

    def register_parameter(self, key: str, parameter: Parameter) -> Parameter:
        """Explicitly register a parameter under ``key``."""
        self._parameters[key] = parameter
        object.__setattr__(self, key, parameter)
        return parameter

    def register_buffer(self, key: str, tensor: Tensor) -> Tensor:
        """Register a persistent, non-trainable tensor (e.g. BN running stats)."""
        self._buffers[key] = tensor
        object.__setattr__(self, key, tensor)
        return tensor

    def register_module(self, key: str, module: "Module") -> "Module":
        """Explicitly register a child module under ``key``."""
        self._modules[key] = module
        object.__setattr__(self, key, module)
        return module

    # -- traversal -------------------------------------------------------------------

    def named_parameters(self, prefix: str = "") -> Iterator[Tuple[str, Parameter]]:
        """Yield ``(qualified_name, parameter)`` for this module and its children."""
        for key, parameter in self._parameters.items():
            yield (f"{prefix}{key}", parameter)
        for key, module in self._modules.items():
            yield from module.named_parameters(prefix=f"{prefix}{key}.")

    def parameters(self) -> List[Parameter]:
        """All parameters of this module and its children."""
        return [parameter for _, parameter in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[Tuple[str, Tensor]]:
        """Yield ``(qualified_name, buffer)`` for this module and its children."""
        for key, buffer in self._buffers.items():
            yield (f"{prefix}{key}", buffer)
        for key, module in self._modules.items():
            yield from module.named_buffers(prefix=f"{prefix}{key}.")

    def buffers(self) -> List[Tensor]:
        """All buffers of this module and its children."""
        return [buffer for _, buffer in self.named_buffers()]

    def named_modules(self, prefix: str = "") -> Iterator[Tuple[str, "Module"]]:
        """Yield ``(qualified_name, module)`` for this module and all descendants."""
        yield (prefix.rstrip("."), self)
        for key, module in self._modules.items():
            yield from module.named_modules(prefix=f"{prefix}{key}.")

    def modules(self) -> List["Module"]:
        """This module and all descendants."""
        return [module for _, module in self.named_modules()]

    def children(self) -> List["Module"]:
        """Direct child modules."""
        return list(self._modules.values())

    # -- train / eval ------------------------------------------------------------------

    def train(self, mode: bool = True) -> "Module":
        """Set training mode recursively."""
        self.training = mode
        for module in self._modules.values():
            module.train(mode)
        return self

    def eval(self) -> "Module":
        """Set evaluation mode recursively."""
        return self.train(False)

    # -- gradient helpers ---------------------------------------------------------------

    def zero_grad(self) -> None:
        """Zero every existing parameter gradient (records device writes)."""
        for parameter in self.parameters():
            parameter.zero_grad()

    def parameter_bytes(self) -> int:
        """Total bytes of parameters (excluding gradients and buffers)."""
        return sum(parameter.nbytes for parameter in self.parameters())

    def parameter_count(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(parameter.numel for parameter in self.parameters())

    def buffer_bytes(self) -> int:
        """Total bytes of registered buffers."""
        return sum(buffer.nbytes for buffer in self.buffers())

    # -- saved-tensor management ----------------------------------------------------------

    def save_for_backward(self, **tensors: Tensor) -> None:
        """Retain tensors needed by ``backward`` (they stay live until consumed)."""
        for key, tensor in tensors.items():
            if key in self._saved:
                # Overwriting a stale saved tensor releases the old reference.
                self._saved[key].release()
            self._saved[key] = tensor.retain()

    def saved(self, key: str) -> Tensor:
        """Fetch a tensor saved by the forward pass."""
        try:
            return self._saved[key]
        except KeyError:
            raise BackwardBeforeForwardError(
                f"{self.name}: backward requested saved tensor {key!r} but forward "
                "has not run (or already consumed it)"
            ) from None

    def has_saved(self, key: str) -> bool:
        """Whether a tensor is currently saved under ``key``."""
        return key in self._saved

    def release_saved(self) -> None:
        """Release every saved tensor (end of this module's backward)."""
        for tensor in self._saved.values():
            tensor.release()
        self._saved.clear()

    # -- forward / backward ------------------------------------------------------------------

    def forward(self, x: Tensor) -> Tensor:
        """Compute the module output; subclasses must override."""
        raise NotImplementedError(f"{self.__class__.__name__} does not implement forward")

    def backward(self, grad_output: Tensor) -> Tensor:
        """Propagate gradients; subclasses that train must override."""
        raise NotImplementedError(f"{self.__class__.__name__} does not implement backward")

    def __call__(self, x: Tensor) -> Tensor:
        return self.forward(x)

    # -- cleanup ----------------------------------------------------------------------------

    def free(self) -> None:
        """Release all device memory owned by this module (params, buffers, saved)."""
        self.release_saved()
        for parameter in self._parameters.values():
            parameter.free()
        for buffer in self._buffers.values():
            buffer.free()
        for module in self._modules.values():
            module.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        children = ", ".join(self._modules)
        return f"{self.__class__.__name__}(name={self.name!r}, children=[{children}])"


class Identity(Module):
    """A module that returns its input unchanged (useful as a placeholder)."""

    def forward(self, x: Tensor) -> Tensor:
        return x.retain()

    def backward(self, grad_output: Tensor) -> Tensor:
        return grad_output.retain()


class Sequential(Module):
    """A chain of modules executed in order.

    ``forward`` releases each intermediate activation as soon as the next
    layer has consumed it (layers that need it for backward retain their own
    reference), and ``backward`` walks the chain in reverse, releasing each
    intermediate gradient once the previous layer has produced its own.
    """

    def __init__(self, device: Device, modules: List[Module], name: str = "Sequential"):
        super().__init__(device, name=name)
        self.layers: List[Module] = []
        for index, module in enumerate(modules):
            self.register_module(f"layer{index}", module)
            self.layers.append(module)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]

    def forward(self, x: Tensor) -> Tensor:
        current = x
        for layer in self.layers:
            output = layer(current)
            if current is not x:
                current.release()
            current = output
        if current is x:
            # An empty Sequential must still transfer ownership of a reference.
            return x.retain()
        return current

    def backward(self, grad_output: Tensor) -> Tensor:
        grad = grad_output
        for layer in reversed(self.layers):
            next_grad = layer.backward(grad)
            if grad is not grad_output:
                grad.release()
            grad = next_grad
        if grad is grad_output:
            return grad_output.retain()
        return grad
