"""Neural-network layers."""

from .activation import ReLU, Sigmoid, Tanh
from .conv import Conv2d
from .dropout import Dropout
from .flatten import Flatten
from .linear import Linear
from .normalization import BatchNorm2d
from .pooling import AvgPool2d, GlobalAvgPool2d, MaxPool2d

__all__ = [
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Linear",
    "MaxPool2d",
    "ReLU",
    "Sigmoid",
    "Tanh",
]
