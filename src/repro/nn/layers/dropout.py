"""Dropout layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...device.device import Device
from ...tensor import functional as F
from ...tensor.tensor import Tensor
from ..module import Module


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode.

    The dropout mask is an extra intermediate tensor that lives from forward
    to backward, which is why dropout-heavy classifiers (e.g. AlexNet's head)
    contribute noticeably to the intermediate-results footprint.
    """

    def __init__(self, device: Device, p: float = 0.5, name: str = "dropout",
                 seed: Optional[int] = None):
        super().__init__(device, name=name)
        self.p = float(p)
        self._rng = np.random.default_rng(seed if seed is not None else 0)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x.retain()
        output, mask = F.dropout_forward(x, self.p, self._rng, tag=f"{self.name}.out")
        self.save_for_backward(mask=mask)
        mask.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        if not self.has_saved("mask"):
            return grad_output.retain()
        mask = self.saved("mask")
        grad_input = F.dropout_backward(grad_output, mask, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input
