"""Fully connected layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...device.device import Device
from ...tensor import functional as F
from ...tensor.tensor import Tensor
from .. import init
from ..module import Module
from ..parameter import Parameter


class Linear(Module):
    """``y = x @ W + b`` with ``W`` of shape ``(in_features, out_features)``.

    The forward pass saves the input activation, which stays resident on the
    device until this layer's backward pass consumes it — the dominant source
    of "intermediate results" in the paper's occupation breakdown.
    """

    def __init__(self, device: Device, in_features: int, out_features: int,
                 bias: bool = True, name: str = "linear",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(device, name=name)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.weight = Parameter(device, (self.in_features, self.out_features),
                                name=f"{name}.weight")
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(device, (self.out_features,), name=f"{name}.bias")
        generator = rng if rng is not None else np.random.default_rng(0)
        init.kaiming_uniform_(self.weight, generator)
        if self.bias is not None:
            init.zeros_(self.bias)

    def forward(self, x: Tensor) -> Tensor:
        self.save_for_backward(input=x)
        bias_tensor = self.bias.data if self.bias is not None else None
        return F.linear_forward(x, self.weight.data, bias_tensor, tag=f"{self.name}.out")

    def backward(self, grad_output: Tensor) -> Tensor:
        x = self.saved("input")
        grad_weight = self.weight.ensure_grad()
        grad_bias = self.bias.ensure_grad() if self.bias is not None else None
        F.linear_backward_params(x, grad_output, grad_weight, grad_bias)
        grad_input = F.linear_backward_input(grad_output, self.weight.data,
                                             tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input
