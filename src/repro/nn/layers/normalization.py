"""Batch normalization."""

from __future__ import annotations

from ...core.events import MemoryCategory
from ...device.device import Device
from ...tensor import conv_ops as C
from ...tensor.tensor import Tensor, empty, full, zeros
from .. import init
from ..module import Module
from ..parameter import Parameter


class BatchNorm2d(Module):
    """Per-channel batch normalization over ``(N, H, W)``.

    Gamma/beta are trainable parameters; the running mean/variance are
    persistent buffers (model state, counted with "parameters" in the paper's
    breakdown).  The forward pass saves the input plus the batch statistics
    for backward, adding to the intermediate-results footprint.
    """

    def __init__(self, device: Device, num_features: int, eps: float = 1e-5,
                 momentum: float = 0.1, name: str = "bn"):
        super().__init__(device, name=name)
        self.num_features = int(num_features)
        self.eps = float(eps)
        self.momentum = float(momentum)
        self.weight = Parameter(device, (self.num_features,), name=f"{name}.weight")
        self.bias = Parameter(device, (self.num_features,), name=f"{name}.bias")
        init.ones_(self.weight)
        init.zeros_(self.bias)
        self.register_buffer(
            "running_mean",
            zeros(device, (self.num_features,), category=MemoryCategory.PARAMETER,
                  tag=f"{name}.running_mean"),
        )
        self.register_buffer(
            "running_var",
            full(device, (self.num_features,), 1.0, category=MemoryCategory.PARAMETER,
                 tag=f"{name}.running_var"),
        )

    def forward(self, x: Tensor) -> Tensor:
        output, save_mean, save_invstd = C.batchnorm2d_forward(
            x, self.weight.data, self.bias.data, self.running_mean, self.running_var,
            momentum=self.momentum, eps=self.eps, training=self.training,
            tag=f"{self.name}.out",
        )
        self.save_for_backward(input=x, save_mean=save_mean, save_invstd=save_invstd)
        # The statistics tensors were created inside the op with refcount 1;
        # drop that creation reference so backward's release frees them.
        save_mean.release()
        save_invstd.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        x = self.saved("input")
        save_mean = self.saved("save_mean")
        save_invstd = self.saved("save_invstd")
        grad_gamma = self.weight.ensure_grad()
        grad_beta = self.bias.ensure_grad()
        grad_input = C.batchnorm2d_backward(grad_output, x, self.weight.data, save_mean,
                                            save_invstd, grad_gamma, grad_beta,
                                            tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input
