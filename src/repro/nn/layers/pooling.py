"""Pooling layers (max, average and global average pooling)."""

from __future__ import annotations

from ...tensor import conv_ops as C
from ...tensor.tensor import Tensor
from ..module import Module


class MaxPool2d(Module):
    """Max pooling over square windows; saves argmax indices for backward."""

    def __init__(self, device, kernel_size: int, stride: int = None, padding: int = 0,
                 name: str = "maxpool"):
        super().__init__(device, name=name)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self.padding = int(padding)
        self._input_shape = None

    def forward(self, x: Tensor) -> Tensor:
        output, indices = C.maxpool2d_forward(x, kernel=self.kernel_size, stride=self.stride,
                                              padding=self.padding, tag=f"{self.name}.out")
        self._input_shape = x.shape
        self.save_for_backward(indices=indices)
        # The indices tensor was created inside the op with refcount 1 and is
        # retained by save_for_backward; drop the creation reference so it is
        # freed right after backward consumes it.
        indices.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        indices = self.saved("indices")
        grad_input = C.maxpool2d_backward(grad_output, indices, self._input_shape,
                                          kernel=self.kernel_size, stride=self.stride,
                                          padding=self.padding, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input


class AvgPool2d(Module):
    """Average pooling over square windows."""

    def __init__(self, device, kernel_size: int, stride: int = None, padding: int = 0,
                 name: str = "avgpool"):
        super().__init__(device, name=name)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride) if stride is not None else self.kernel_size
        self.padding = int(padding)
        self._input_shape = None

    def forward(self, x: Tensor) -> Tensor:
        self._input_shape = x.shape
        return C.avgpool2d_forward(x, kernel=self.kernel_size, stride=self.stride,
                                   padding=self.padding, tag=f"{self.name}.out")

    def backward(self, grad_output: Tensor) -> Tensor:
        return C.avgpool2d_backward(grad_output, self._input_shape, kernel=self.kernel_size,
                                    stride=self.stride, padding=self.padding,
                                    tag=f"{self.name}.grad_in")


class GlobalAvgPool2d(Module):
    """Adaptive average pooling to a single spatial location (ResNet head)."""

    def __init__(self, device, name: str = "global_avgpool"):
        super().__init__(device, name=name)
        self._input_shape = None

    def forward(self, x: Tensor) -> Tensor:
        self._input_shape = x.shape
        return C.global_avg_pool_forward(x, tag=f"{self.name}.out")

    def backward(self, grad_output: Tensor) -> Tensor:
        return C.global_avg_pool_backward(grad_output, self._input_shape,
                                          tag=f"{self.name}.grad_in")
