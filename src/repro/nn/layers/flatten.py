"""Flatten layer: reshapes feature maps for a classifier head."""

from __future__ import annotations

from ...tensor.tensor import Tensor
from ..module import Module


class Flatten(Module):
    """View a ``(N, C, H, W)`` tensor as ``(N, C*H*W)`` without moving data.

    Reshaping shares the underlying storage, so no memory behavior is
    produced — exactly like ``torch.flatten`` on a contiguous tensor.
    """

    def __init__(self, device, name: str = "flatten"):
        super().__init__(device, name=name)
        self._input_shape = None

    def forward(self, x: Tensor) -> Tensor:
        self._input_shape = x.shape
        return x.flatten_batch()

    def backward(self, grad_output: Tensor) -> Tensor:
        if self._input_shape is None:
            return grad_output.retain()
        return grad_output.reshape(self._input_shape)
