"""2-D convolution layer."""

from __future__ import annotations

from typing import Optional

import numpy as np

from ...device.device import Device
from ...tensor import conv_ops as C
from ...tensor.tensor import Tensor
from .. import init
from ..module import Module
from ..parameter import Parameter


class Conv2d(Module):
    """2-D convolution with square kernels, stride and zero padding."""

    def __init__(self, device: Device, in_channels: int, out_channels: int,
                 kernel_size: int, stride: int = 1, padding: int = 0,
                 bias: bool = True, name: str = "conv",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(device, name=name)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.weight = Parameter(
            device,
            (self.out_channels, self.in_channels, self.kernel_size, self.kernel_size),
            name=f"{name}.weight",
        )
        self.bias: Optional[Parameter] = None
        if bias:
            self.bias = Parameter(device, (self.out_channels,), name=f"{name}.bias")
        generator = rng if rng is not None else np.random.default_rng(0)
        init.kaiming_uniform_(self.weight, generator)
        if self.bias is not None:
            init.zeros_(self.bias)

    def forward(self, x: Tensor) -> Tensor:
        self.save_for_backward(input=x)
        bias_tensor = self.bias.data if self.bias is not None else None
        return C.conv2d_forward(x, self.weight.data, bias_tensor, stride=self.stride,
                                padding=self.padding, tag=f"{self.name}.out")

    def backward(self, grad_output: Tensor) -> Tensor:
        x = self.saved("input")
        grad_weight = self.weight.ensure_grad()
        grad_bias = self.bias.ensure_grad() if self.bias is not None else None
        C.conv2d_backward_params(x, grad_output, grad_weight, grad_bias,
                                 stride=self.stride, padding=self.padding)
        grad_input = C.conv2d_backward_input(grad_output, self.weight.data, x.shape,
                                             stride=self.stride, padding=self.padding,
                                             tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input
