"""Activation layers (ReLU, Sigmoid, Tanh)."""

from __future__ import annotations

from ...tensor import functional as F
from ...tensor.tensor import Tensor
from ..module import Module


class ReLU(Module):
    """Rectified linear unit; saves its output as the backward mask."""

    def forward(self, x: Tensor) -> Tensor:
        output = F.relu_forward(x, tag=f"{self.name}.out")
        self.save_for_backward(output=output)
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        output = self.saved("output")
        grad_input = F.relu_backward(grad_output, output, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input


class Sigmoid(Module):
    """Logistic sigmoid; saves its output for the backward pass."""

    def forward(self, x: Tensor) -> Tensor:
        output = F.sigmoid_forward(x, tag=f"{self.name}.out")
        self.save_for_backward(output=output)
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        output = self.saved("output")
        grad_input = F.sigmoid_backward(grad_output, output, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input


class Tanh(Module):
    """Hyperbolic tangent; saves its output for the backward pass."""

    def forward(self, x: Tensor) -> Tensor:
        output = F.tanh_forward(x, tag=f"{self.name}.out")
        self.save_for_backward(output=output)
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        output = self.saved("output")
        grad_input = F.tanh_backward(grad_output, output, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input
