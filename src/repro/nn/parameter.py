"""Trainable parameters.

A :class:`Parameter` owns a persistent device tensor (category ``parameter``)
and, once the first backward pass has run, a persistent gradient tensor
(category ``parameter_gradient``).  Both stay allocated for the whole
training run — in the paper's traces they are the long-lived blocks whose
access-time intervals span entire iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..core.events import MemoryCategory
from ..device.device import Device
from ..tensor.dtype import DType
from ..tensor.functional import zero_
from ..tensor.tensor import Tensor, empty


class Parameter:
    """A named, trainable tensor with a lazily allocated gradient buffer."""

    def __init__(self, device: Device, shape, name: str = "param",
                 dtype: Optional[DType] = None):
        self.device = device
        self.name = name
        self.data = empty(device, shape, dtype=dtype,
                          category=MemoryCategory.PARAMETER, tag=name)
        self.grad: Optional[Tensor] = None

    @property
    def shape(self):
        """Shape of the parameter tensor."""
        return self.data.shape

    @property
    def numel(self) -> int:
        """Number of elements of the parameter tensor."""
        return self.data.numel

    @property
    def nbytes(self) -> int:
        """Size of the parameter tensor in bytes."""
        return self.data.nbytes

    def ensure_grad(self) -> Tensor:
        """Return the gradient buffer, allocating (and zeroing) it on first use.

        Mirrors PyTorch, where ``param.grad`` is allocated lazily during the
        first backward pass and then persists and accumulates.
        """
        if self.grad is None:
            self.grad = empty(self.device, self.data.shape, dtype=self.data.dtype,
                              category=MemoryCategory.PARAMETER_GRADIENT,
                              tag=f"{self.name}.grad")
            zero_(self.grad)
        return self.grad

    def zero_grad(self) -> None:
        """Zero the gradient buffer if it exists (records a device write)."""
        if self.grad is not None:
            zero_(self.grad)

    def set_values(self, values: np.ndarray) -> None:
        """Initialize the parameter values on-device (records a write behavior)."""
        self.data.set_data(values, op="param_init")

    def values(self) -> np.ndarray:
        """Host copy of the parameter values (eager mode only)."""
        return self.data.numpy()

    def free(self) -> None:
        """Release the parameter (and gradient) device memory."""
        self.data.free()
        if self.grad is not None:
            self.grad.free()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Parameter(name={self.name!r}, shape={self.data.shape})"
