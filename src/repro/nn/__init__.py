"""Minimal neural-network framework with explicit module-level backward."""

from . import init
from .layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sigmoid,
    Tanh,
)
from .loss import CrossEntropyLoss, MSELoss
from .module import Identity, Module, Sequential
from .optim import SGD, Adam, Optimizer
from .parameter import Parameter

__all__ = [
    "Adam",
    "AvgPool2d",
    "BatchNorm2d",
    "Conv2d",
    "CrossEntropyLoss",
    "Dropout",
    "Flatten",
    "GlobalAvgPool2d",
    "Identity",
    "Linear",
    "MSELoss",
    "MaxPool2d",
    "Module",
    "Optimizer",
    "Parameter",
    "ReLU",
    "SGD",
    "Sequential",
    "Sigmoid",
    "Tanh",
    "init",
]
