"""Loss functions.

Loss modules start the backward chain: ``forward(prediction, target)``
returns a scalar loss tensor and ``backward()`` (no argument) returns the
gradient with respect to the prediction.
"""

from __future__ import annotations

from ..device.device import Device
from ..tensor import functional as F
from ..tensor.tensor import Tensor
from .module import Module


class CrossEntropyLoss(Module):
    """Softmax cross-entropy over integer class labels."""

    def forward(self, logits: Tensor, labels: Tensor) -> Tensor:  # type: ignore[override]
        loss, probs = F.cross_entropy_forward(logits, labels)
        self.save_for_backward(probs=probs, labels=labels)
        probs.release()
        return loss

    def __call__(self, logits: Tensor, labels: Tensor) -> Tensor:  # type: ignore[override]
        return self.forward(logits, labels)

    def backward(self, grad_output: Tensor = None) -> Tensor:  # type: ignore[override]
        probs = self.saved("probs")
        labels = self.saved("labels")
        grad_logits = F.cross_entropy_backward(probs, labels)
        self.release_saved()
        return grad_logits


class MSELoss(Module):
    """Mean squared error between a prediction and a same-shape target."""

    def forward(self, prediction: Tensor, target: Tensor) -> Tensor:  # type: ignore[override]
        self.save_for_backward(prediction=prediction, target=target)
        return F.mse_forward(prediction, target)

    def __call__(self, prediction: Tensor, target: Tensor) -> Tensor:  # type: ignore[override]
        return self.forward(prediction, target)

    def backward(self, grad_output: Tensor = None) -> Tensor:  # type: ignore[override]
        prediction = self.saved("prediction")
        target = self.saved("target")
        grad = F.mse_backward(prediction, target)
        self.release_saved()
        return grad
