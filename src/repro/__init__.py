"""repro — reproduction of "Pinpointing the Memory Behaviors of DNN Training" (ISPASS 2021).

The package is organised as the paper's system is:

* :mod:`repro.device` — a simulated GPU (Titan X Pascal by default) with an
  instrumented, PyTorch-style caching allocator, DMA engine and timing model;
* :mod:`repro.tensor`, :mod:`repro.nn`, :mod:`repro.models`, :mod:`repro.data`,
  :mod:`repro.train` — the DNN training stack that generates memory behaviors;
* :mod:`repro.core` — the paper's contribution: block-level memory-behavior
  recording (malloc/free/read/write) and the analyses behind every figure
  (Gantt charts, ATI distributions, outliers, Eq. 1 swap bounds, occupation
  breakdowns, and the future-work swap planner);
* :mod:`repro.experiments` — one entry point per paper figure/table, all
  backed by the scenario-sweep engine and its on-disk result cache;
* :mod:`repro.viz` — ASCII/SVG renderings and CSV/JSON export of figure data;
* :mod:`repro.baselines` — swapping/recomputation/compression baselines
  behind the pluggable :class:`~repro.baselines.policy.MemoryPolicy`
  registry (the sweep's policy axis);
* :mod:`repro.swap` — the closed-loop swap-execution engine: runs
  eviction/prefetch plans on the device's copy stream during simulation,
  emits ``swap_out``/``swap_in`` trace events and measures real stalls
  (the sweep's ``--swap`` axis);
* :mod:`repro.report` — regenerates EXPERIMENTS.md and the ``docs/figures/``
  pages from cached sweep results (``repro report`` / ``repro report
  --check``).

Quickstart
----------
>>> from repro import TrainingRunConfig, run_training_session
>>> from repro.core import compute_access_intervals, summarize_intervals
>>> result = run_training_session(TrainingRunConfig(batch_size=256, iterations=5))
>>> summary = summarize_intervals(compute_access_intervals(result.trace))
>>> summary.p90_us  # doctest: +SKIP
"""

from .core import (
    MemoryCategory,
    MemoryEvent,
    MemoryEventKind,
    MemoryProfiler,
    MemoryTrace,
    SwapPlanner,
    TraceRecorder,
)
from .device import Device, DeviceSpec, get_device_spec, titan_x_pascal
from .errors import ReproError
from .swap import SwapExecutor
from .train import SessionResult, Trainer, TrainingRunConfig, run_training_session
from .version import __version__

__all__ = [
    "Device",
    "DeviceSpec",
    "MemoryCategory",
    "MemoryEvent",
    "MemoryEventKind",
    "MemoryProfiler",
    "MemoryTrace",
    "ReproError",
    "SessionResult",
    "SwapExecutor",
    "SwapPlanner",
    "TraceRecorder",
    "Trainer",
    "TrainingRunConfig",
    "__version__",
    "get_device_spec",
    "run_training_session",
    "titan_x_pascal",
]
