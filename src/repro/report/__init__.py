"""Reporting subsystem: regenerate EXPERIMENTS.md and the per-figure docs.

The repo's results documentation is a *build artifact*: ``repro report``
loads cached :class:`~repro.experiments.sweep.ScenarioResult`s (running any
missing scenarios through the sweep engine), renders comparison tables and
ASCII/SVG charts via :mod:`repro.viz`, and deterministically regenerates
``EXPERIMENTS.md`` plus one ``docs/figures/<slug>.md`` page per paper
figure.  ``repro report --check`` verifies the committed docs match a fresh
regeneration byte-for-byte, so the documentation can never drift from the
code.
"""

from .figures import (
    FIGURE_BUILDERS,
    FULL_PROFILE,
    FigurePage,
    PROFILES,
    ReportProfile,
    SMOKE_PROFILE,
    comparison_grid,
    comparison_rows,
    eq1_rows,
)
from .generate import check_report, generate_report, write_report

__all__ = [
    "FIGURE_BUILDERS",
    "FULL_PROFILE",
    "FigurePage",
    "PROFILES",
    "ReportProfile",
    "SMOKE_PROFILE",
    "check_report",
    "comparison_grid",
    "comparison_rows",
    "eq1_rows",
    "generate_report",
    "write_report",
]
