"""Declarative figure specifications for the report generator.

One builder per paper figure (fig2-fig7) plus the ablations: each consumes
cached :class:`~repro.experiments.sweep.ScenarioResult`s from a shared
:class:`~repro.experiments.sweep.SweepRunner` (missing scenarios are executed
on demand by the PR-1 engine) and renders a self-contained Markdown page with
the comparison table, an ASCII chart, an SVG chart where the figure is a
breakdown, the paper's claims checked against the reproduced numbers, and
the exact command to reproduce the figure.

Two :class:`ReportProfile`\\ s size the underlying grids: ``full`` is the
committed docs tree, ``smoke`` is a miniature used by the golden-file tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..core.events import PAPER_BUCKETS
from ..core.swap import BandwidthConfig, max_swap_bytes
from ..experiments.ablations import run_allocator_ablation, run_timing_ablation
from ..experiments.configs import PAPER_MLP_HOST_LATENCY, paper_mlp_config
from ..experiments.eq1_swap import PAPER_EXPECTED_SWAP_BYTES, PAPER_OPERATING_POINTS_US
from ..experiments.fig6_alexnet import DEFAULT_FIG6_BATCH_SIZES, fig6_scenarios
from ..experiments.fig7_resnet import DEFAULT_FIG7_DEPTHS, fig7_scenarios
from ..experiments.fig5_breakdown import DEFAULT_FIG5_WORKLOADS, fig5_scenarios
from ..experiments.sweep import Scenario, ScenarioResult, SweepGrid, SweepRunner
from ..core.breakdown import BreakdownSeries
from ..units import GB, GIB, KB, MIB, us_to_ns
from ..viz import render_stacked_bars, render_svg_bars, render_svg_stacked_bars
from .markdown import (
    GENERATED_BANNER,
    code_block,
    fmt_mib,
    join_page,
    markdown_table,
    section,
)


@dataclass(frozen=True)
class ReportProfile:
    """Grid sizes behind one report flavor (``full`` docs vs ``smoke`` tests)."""

    name: str
    paper_mlp_batch_size: int
    paper_mlp_iterations: int
    fig5_workloads: Tuple[Tuple[str, str, str, int, int], ...]
    fig6_batch_sizes: Tuple[int, ...]
    fig7_depths: Tuple[str, ...]
    fig7_batch_size: int
    comparison_model: str
    comparison_model_kwargs: Dict[str, object]
    comparison_batch_size: int
    comparison_dtypes: Tuple[str, ...]
    comparison_devices: Tuple[str, ...]
    comparison_policies: Tuple[str, ...]
    ablation_batch_size: int
    ablation_iterations: int
    ablation_hidden_dim: int
    timing_overheads_us: Tuple[float, ...]
    scaling_batch_size: int = 4096
    scaling_iterations: int = 3
    scaling_n_devices: Tuple[int, ...] = (1, 2, 4, 8)
    scaling_interconnects: Tuple[str, ...] = ("pcie_gen3", "nvlink2")
    # closed-loop swap-execution page (a deep MLP whose long activation /
    # state idle windows give the planner something to hide transfers behind)
    swap_hidden_dim: int = 8192
    swap_num_layers: int = 6
    swap_batch_size: int = 2048
    swap_iterations: int = 7
    swap_modes: Tuple[str, ...] = ("off", "planner", "swap_advisor",
                                   "zero_offload", "lru", "unified")
    # feasibility-frontier page: the swap workload run under a ladder of hard
    # device-memory capacities (bytes), per execution mode
    frontier_capacities: Tuple[int, ...] = (256 * MIB, 1 * GIB, 2 * GIB,
                                            3 * GIB, 4 * GIB,
                                            int(4.75 * GIB))
    frontier_modes: Tuple[str, ...] = ("off", "lru", "unified")


#: The committed docs tree: the paper's grids.
FULL_PROFILE = ReportProfile(
    name="full",
    paper_mlp_batch_size=16_384,
    paper_mlp_iterations=5,
    fig5_workloads=DEFAULT_FIG5_WORKLOADS,
    fig6_batch_sizes=DEFAULT_FIG6_BATCH_SIZES,
    fig7_depths=DEFAULT_FIG7_DEPTHS,
    fig7_batch_size=16,
    comparison_model="paper_mlp",
    comparison_model_kwargs={},
    comparison_batch_size=4096,
    comparison_dtypes=("float32", "float16"),
    comparison_devices=("titan_x_pascal", "v100_sxm2_16gb", "rtx_3090_24gb"),
    comparison_policies=("none", "planner", "swap_advisor", "zero_offload",
                         "recompute", "pruning", "quantization"),
    ablation_batch_size=1024,
    ablation_iterations=4,
    ablation_hidden_dim=2048,
    timing_overheads_us=(1.0, 6.0, 20.0, 50.0),
    scaling_batch_size=4096,
    scaling_iterations=3,
    scaling_n_devices=(1, 2, 4, 8),
    scaling_interconnects=("pcie_gen3", "nvlink2"),
)

#: Miniature grids for the golden-file tests (same page structure, seconds).
SMOKE_PROFILE = ReportProfile(
    name="smoke",
    paper_mlp_batch_size=512,
    paper_mlp_iterations=3,
    fig5_workloads=(("mlp", "mlp", "two_cluster", 256, 0),
                    ("lenet5", "lenet5", "mnist", 64, 28)),
    fig6_batch_sizes=(32, 64),
    fig7_depths=("resnet18",),
    fig7_batch_size=4,
    comparison_model="paper_mlp",
    comparison_model_kwargs={},
    comparison_batch_size=256,
    comparison_dtypes=("float32", "float16"),
    comparison_devices=("titan_x_pascal",),
    comparison_policies=("none", "planner", "recompute"),
    ablation_batch_size=256,
    ablation_iterations=2,
    ablation_hidden_dim=512,
    timing_overheads_us=(1.0, 20.0),
    scaling_batch_size=256,
    scaling_iterations=2,
    scaling_n_devices=(1, 2),
    scaling_interconnects=("pcie_gen3",),
    swap_hidden_dim=1024,
    swap_num_layers=3,
    swap_batch_size=256,
    swap_iterations=5,
    swap_modes=("off", "planner", "zero_offload", "unified"),
    frontier_capacities=(2 * MIB, 8 * MIB, 16 * MIB, 48 * MIB),
    frontier_modes=("off", "unified"),
)

PROFILES = {profile.name: profile for profile in (FULL_PROFILE, SMOKE_PROFILE)}


@dataclass
class FigurePage:
    """One generated ``docs/figures/<slug>.md`` page."""

    slug: str                              # file stem, e.g. "fig6_alexnet"
    fig_id: str                            # "fig6"
    title: str
    finding: str                           # one-line reproduced result
    checks: List[Tuple[str, bool]] = field(default_factory=list)
    body: str = ""                         # full page content (banner included)
    svgs: Dict[str, str] = field(default_factory=dict)   # filename -> svg text
    reproduce: str = ""                    # shell command

    @property
    def path(self) -> str:
        """Repo-relative path of the page."""
        return f"docs/figures/{self.slug}.md"


def _checks_list(checks: Sequence[Tuple[str, bool]]) -> str:
    """Render claim checks as a Markdown task list."""
    return "\n".join(f"- [{'x' if ok else ' '}] {claim}" for claim, ok in checks)


def _page(page: FigurePage, *chunks: str) -> FigurePage:
    """Assemble the page body from the standard header plus ``chunks``."""
    header = [GENERATED_BANNER, f"# {page.title}",
              f"**Reproduce:** `{page.reproduce}`"]
    tail = []
    if page.checks:
        tail.append(section("Paper claims", _checks_list(page.checks)))
    page.body = join_page(*header, *chunks, *tail)
    return page


def _paper_mlp_scenario(profile: ReportProfile, swap_policy: str = "none") -> Scenario:
    """The shared workload behind Figures 2-4 (the paper's Fig.-1 MLP)."""
    config = paper_mlp_config(batch_size=profile.paper_mlp_batch_size,
                              iterations=profile.paper_mlp_iterations)
    return Scenario(config=config, swap_policy=swap_policy)


def _workload_metric_rows(result: ScenarioResult) -> List[Dict[str, object]]:
    """Footprint/shape metrics of one scenario as a two-column table."""
    return [
        {"metric": "peak allocated (MiB)",
         "value": fmt_mib(result.peak_allocated_bytes)},
        {"metric": "peak live (MiB)", "value": fmt_mib(result.peak_live_bytes)},
        {"metric": "parameter bytes (MiB)", "value": fmt_mib(result.parameter_bytes)},
        {"metric": "memory behaviors (events)", "value": result.num_events},
        {"metric": "distinct blocks", "value": result.num_blocks},
        {"metric": "iterations", "value": result.scenario["iterations"]},
        {"metric": "mean step time (ms)",
         "value": f"{result.step_time_s_mean * 1e3:.3f}"},
    ]


def build_fig2(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 2 — the block-lifetime Gantt chart of the MLP workload."""
    result = runner.run([_paper_mlp_scenario(profile)]).results[0]
    page = FigurePage(
        slug="fig2_gantt", fig_id="fig2",
        title="Figure 2 - Memory-behavior Gantt chart (paper MLP)",
        finding=(f"{result.num_events} behaviors over {result.num_blocks} blocks; "
                 f"peak {fmt_mib(result.peak_allocated_bytes)} MiB"),
        reproduce="PYTHONPATH=src python -m repro figure fig2",
        checks=[
            ("the trace repeats one iterative allocation pattern per training step",
             result.num_events > 0 and int(result.scenario["iterations"]) > 1),
            ("long-lived parameter blocks coexist with short-lived activations",
             result.num_blocks > 1),
        ],
    )
    intro = ("The paper's first observation is *what the trace looks like*: "
             "block lifetimes tile the timeline identically every iteration, "
             "with device-idle gaps wherever the host prepares the next batch. "
             "The table below summarizes the recorded trace; the ASCII Gantt "
             "itself is printed by the reproduce command.")
    table = markdown_table(_workload_metric_rows(result), columns=["metric", "value"])
    return _page(page, intro, table)


def build_fig3(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 3 — the access-time-interval (ATI) distribution."""
    result = runner.run([_paper_mlp_scenario(profile)]).results[0]
    ati = result.ati
    bimodal = float(ati["max_us"]) > 100.0 * float(ati["p50_us"])
    page = FigurePage(
        slug="fig3_ati", fig_id="fig3",
        title="Figure 3 - Access-time-interval distribution (paper MLP)",
        finding=(f"p50 {float(ati['p50_us']):.1f} us vs max "
                 f"{float(ati['max_us']) / 1e6:.3f} s across {int(ati['count'])} ATIs"),
        reproduce="PYTHONPATH=src python -m repro figure fig3",
        checks=[
            ("the ATI distribution is strongly bimodal: a dense band of "
             "microsecond-scale intervals plus rare huge outliers", bimodal),
            ("the p50 ATI is far too small to hide any meaningful swap "
             "(Eq. 1 at the paper's bandwidths)",
             max_swap_bytes(us_to_ns(float(ati["p50_us"])),
                            BandwidthConfig.from_paper()) < 1 * MIB),
        ],
    )
    rows = [{"statistic": key, "value": f"{float(value):.3f}"}
            for key, value in ati.items()]
    intro = ("Figure 3 collects the elapsed time between adjacent accesses to "
             "the same block (the ATI). Most intervals sit in the tens of "
             "microseconds - back-to-back kernels - while blocks reused across "
             "iterations see the whole host-side pause.")
    return _page(page, intro, markdown_table(rows, columns=["statistic", "value"]))


def build_fig4(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 4 — ATI/size outliers and what the swap planner makes of them."""
    plain, planned = runner.run([
        _paper_mlp_scenario(profile),
        _paper_mlp_scenario(profile, swap_policy="planner"),
    ]).results
    swap = planned.swap or {}
    savings_fraction = float(swap.get("savings_fraction", 0.0))
    page = FigurePage(
        slug="fig4_outliers", fig_id="fig4",
        title="Figure 4 - Outlier behaviors and swap feasibility (paper MLP)",
        finding=(f"swappable fraction {plain.swappable_fraction:.3f}; planner "
                 f"saves {fmt_mib(swap.get('savings_bytes', 0))} MiB "
                 f"({100.0 * savings_fraction:.1f}% of peak)"),
        reproduce="PYTHONPATH=src python -m repro figure fig4",
        checks=[
            ("a meaningful fraction of the footprint is swappable at zero "
             "runtime cost (Eq.-1 screening)", plain.swappable_fraction > 0.1),
            ("the planner's savings come from few selected blocks",
             int(swap.get("num_selected", 0)) <= int(swap.get("num_candidates", 0))),
        ],
    )
    rows = [
        {"metric": "swappable fraction (Eq. 1)",
         "value": f"{plain.swappable_fraction:.4f}"},
        {"metric": "plan candidates", "value": int(swap.get("num_candidates", 0))},
        {"metric": "plan selected blocks", "value": int(swap.get("num_selected", 0))},
        {"metric": "peak before (MiB)",
         "value": fmt_mib(swap.get("peak_bytes_before", plain.peak_live_bytes))},
        {"metric": "peak after plan (MiB)",
         "value": fmt_mib(swap.get("peak_bytes_after", plain.peak_live_bytes))},
        {"metric": "savings (MiB)", "value": fmt_mib(swap.get("savings_bytes", 0))},
        {"metric": "overhead (ms)",
         "value": f"{float(swap.get('overhead_ns', 0.0)) / 1e6:.3f}"},
    ]
    intro = ("Figure 4 pairs each behavior's ATI with the size of the block it "
             "touches: the high-ATI behaviors are also the largest blocks - "
             "the outliers the paper argues swapping should target. Feeding "
             "the same trace to the Eq.-1 planner quantifies that argument.")
    return _page(page, intro, markdown_table(rows, columns=["metric", "value"]))


def _breakdown_page(page: FigurePage, series: BreakdownSeries, label_key: str,
                    intro: str, svg_name: str, svg_title: str) -> FigurePage:
    """Shared rendering for the three breakdown figures (5, 6, 7)."""
    rows = series.fractions_table()
    table_rows = []
    for row in rows:
        table_row = {label_key: row[label_key],
                     "total_mib": fmt_mib(row["total_bytes"])}
        table_row.update({bucket: row[bucket] for bucket in PAPER_BUCKETS})
        table_rows.append(table_row)
    ascii_chart = render_stacked_bars(rows, PAPER_BUCKETS, label_key=label_key)
    page.svgs[svg_name] = render_svg_stacked_bars(rows, PAPER_BUCKETS,
                                                  label_key=label_key,
                                                  title=svg_title)
    return _page(
        page, intro,
        markdown_table(table_rows, columns=[label_key, "total_mib", *PAPER_BUCKETS]),
        f"![{page.fig_id} breakdown](svg/{svg_name})",
        code_block(ascii_chart),
    )


def build_fig5(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 5 — occupation breakdown of typical DNNs."""
    sweep = runner.run(fig5_scenarios(profile.fig5_workloads))
    series = BreakdownSeries(parameter_name="label")
    for (label, *_), result in zip(profile.fig5_workloads, sweep.results):
        series.add(label, result.occupation())
    parameters_minor = all(b.fraction("parameters") <= 0.5
                           for _, b in series.entries)
    dominant = sum(1 for _, b in series.entries
                   if max(b.fractions(), key=b.fractions().get)
                   == "intermediate results")
    page = FigurePage(
        slug="fig5_breakdown", fig_id="fig5",
        title="Figure 5 - Occupation breakdown of typical DNNs",
        finding=(f"intermediate results are the largest bucket for "
                 f"{dominant}/{len(series.entries)} models"),
        reproduce="PYTHONPATH=src python -m repro figure fig5",
        checks=[
            ("parameters are a minor fraction of the footprint for every model",
             parameters_minor),
            ("intermediate results dominate for most models",
             dominant >= len(series.entries) / 2),
        ],
    )
    intro = ("The paper splits the bytes live at peak occupancy into three "
             "buckets (input data / parameters / intermediate results) for a "
             "family of typical DNNs. Parameters - the only bucket pruning or "
             "quantization can shrink - are consistently small, which is the "
             "basis of the paper's argument that training-time memory "
             "pressure must be attacked through the intermediate results.")
    return _breakdown_page(page, series, "label", intro, "fig5_breakdown.svg",
                           "Occupation breakdown at peak (per model)")


def build_fig6(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 6 — AlexNet breakdown versus batch size."""
    scenarios = fig6_scenarios(profile.fig6_batch_sizes)
    sweep = runner.run(scenarios)
    series = BreakdownSeries(parameter_name="batch_size")
    for batch_size, result in zip(profile.fig6_batch_sizes, sweep.results):
        series.add(batch_size, result.occupation())
    grows = series.is_monotonic_increasing("intermediate results")
    shrinks = series.is_monotonic_decreasing("parameters")
    page = FigurePage(
        slug="fig6_alexnet", fig_id="fig6",
        title="Figure 6 - AlexNet breakdown vs batch size (CIFAR-100)",
        finding=(f"intermediate share rises from "
                 f"{series.trend('intermediate results')[0]:.2f} to "
                 f"{series.trend('intermediate results')[-1]:.2f} across "
                 f"batch {profile.fig6_batch_sizes[0]} to "
                 f"{profile.fig6_batch_sizes[-1]}"),
        reproduce=("PYTHONPATH=src python -m repro sweep --models alexnet "
                   "--batch-sizes "
                   + ",".join(str(b) for b in profile.fig6_batch_sizes)
                   + " --dataset cifar100 --input-size 32 --num-classes 100"),
        checks=[
            ("the intermediate-results share grows with the batch size", grows),
            ("the parameter share shrinks with the batch size", shrinks),
        ],
    )
    intro = ("Sweeping the batch size for AlexNet on CIFAR-100-shaped data: "
             "intermediate results gradually dominate the footprint while the "
             "(constant-size) parameters lose relative weight.")
    return _breakdown_page(page, series, "batch_size", intro, "fig6_alexnet.svg",
                           "AlexNet: breakdown vs batch size")


def build_fig7(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Figure 7 — ResNet breakdown versus depth."""
    scenarios = fig7_scenarios(profile.fig7_depths, batch_size=profile.fig7_batch_size)
    sweep = runner.run(scenarios)
    series = BreakdownSeries(parameter_name="depth")
    for depth, result in zip(profile.fig7_depths, sweep.results):
        series.add(depth, result.occupation())
    dominant = all(fraction >= 0.5
                   for fraction in series.trend("intermediate results"))
    minor = all(fraction <= 0.5 for fraction in series.trend("parameters"))
    page = FigurePage(
        slug="fig7_resnet", fig_id="fig7",
        title=(f"Figure 7 - ResNet breakdown vs depth "
               f"(ImageNet, batch {profile.fig7_batch_size})"),
        finding=(f"intermediates stay dominant across "
                 f"{len(profile.fig7_depths)} depths"),
        reproduce=("PYTHONPATH=src python -m repro sweep --models "
                   + ",".join(profile.fig7_depths)
                   + f" --batch-sizes {profile.fig7_batch_size} "
                     "--dataset imagenet --input-size 224 --num-classes 1000"),
        checks=[
            ("intermediate results dominate at every depth", dominant),
            ("the parameter share stays minor at every depth", minor),
        ],
    )
    intro = ("The same breakdown for the non-linear ResNet family: residual "
             "connections extend activation lifetimes, so depth deepens the "
             "dominance of intermediate results rather than diluting it.")
    return _breakdown_page(page, series, "depth", intro, "fig7_resnet.svg",
                           "ResNet: breakdown vs depth")


def build_ablations(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """A1/A2 — allocator-policy and timing-model ablations."""
    allocator_rows = [row.to_dict() for row in run_allocator_ablation(
        batch_size=profile.ablation_batch_size,
        iterations=profile.ablation_iterations,
        hidden_dim=profile.ablation_hidden_dim, runner=runner)]
    timing_rows = [row.to_dict() for row in run_timing_ablation(
        dispatch_overheads_us=profile.timing_overheads_us,
        batch_size=profile.ablation_batch_size // 4,
        iterations=profile.ablation_iterations,
        hidden_dim=profile.ablation_hidden_dim // 2, runner=runner)]
    for row in allocator_rows:
        row["peak_allocated_mib"] = fmt_mib(row.pop("peak_allocated_bytes"))
        row["peak_reserved_mib"] = fmt_mib(row.pop("peak_reserved_bytes"))
    caching = next(row for row in allocator_rows if row["allocator"] == "caching")
    p50_spread = (max(row["p50_us"] for row in timing_rows)
                  / max(1e-9, min(row["p50_us"] for row in timing_rows)))
    page = FigurePage(
        slug="ablations", fig_id="ablations",
        title="Ablations - allocator policy (A1) and timing model (A2)",
        finding=(f"caching-allocator hit rate {caching['cache_hit_rate']:.3f}; "
                 f"dispatch overhead moves the p50 ATI by {p50_spread:.1f}x"),
        reproduce=("PYTHONPATH=src python -m repro sweep --models mlp "
                   "--allocators caching,best_fit,bump"),
        checks=[
            ("the caching allocator serves most allocations from its cache",
             float(caching["cache_hit_rate"]) > 0.5),
            ("the small-ATI band tracks the host dispatch overhead "
             "(timing-model sensitivity)", p50_spread > 1.5),
        ],
    )
    intro = ("Two design choices are quantified on the shared MLP workload: "
             "A1 swaps the allocator policy (the caching allocator is what "
             "gives blocks stable identities across iterations), A2 sweeps "
             "the host dispatch overhead (the knob behind the microsecond "
             "ATI band).")
    return _page(
        page, intro,
        section("A1 - allocator policy", markdown_table(allocator_rows)),
        section("A2 - timing-model sensitivity", markdown_table(timing_rows)),
    )


def scaling_grid(profile: ReportProfile) -> SweepGrid:
    """The replica-count x interconnect grid behind the scaling page.

    The workload is the paper MLP with its host-latency model; the *global*
    batch is fixed while the replica count grows, so per-device activations
    shrink while parameters, gradients and optimizer state replicate — the
    data-parallel memory story — and every iteration inserts one gradient
    allreduce on the configured interconnect.
    """
    return SweepGrid(
        models=(profile.comparison_model,),
        model_kwargs=dict(profile.comparison_model_kwargs),
        batch_sizes=(profile.scaling_batch_size,),
        iterations=(profile.scaling_iterations,),
        n_devices=profile.scaling_n_devices,
        interconnects=profile.scaling_interconnects,
        host_latency=PAPER_MLP_HOST_LATENCY,
        execution_mode="symbolic",
    )


def scaling_scenarios(profile: ReportProfile) -> List[Scenario]:
    """The scaling grid's scenarios, with the single-device point deduplicated.

    With one replica the allreduce is skipped and the interconnect is never
    used, so crossing ``n_devices=1`` with every interconnect would simulate
    (and tabulate) byte-identical scenarios under different cache keys; only
    the first interconnect's ``n=1`` point is kept.
    """
    scenarios = []
    seen_single = False
    for scenario in scaling_grid(profile).expand():
        if scenario.config.n_devices == 1:
            if seen_single:
                continue
            seen_single = True
        scenarios.append(scenario)
    return scenarios


def build_scaling(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Scaling page — per-device peak memory and step time vs replica count."""
    sweep = runner.run(scaling_scenarios(profile))
    rows = []
    for result in sweep.results:
        n = int(result.scenario["n_devices"])
        link = str(result.scenario["interconnect"])
        step_ms = result.step_time_s_mean * 1e3
        collective = result.collective or {}
        allreduce_ms = (float(collective.get("total_time_ns", 0.0))
                        / max(1, int(result.scenario["iterations"])) / 1e6)
        rows.append({
            "n_devices": n,
            "interconnect": link,
            "peak_per_device_mib": fmt_mib(result.peak_allocated_bytes),
            "peak_per_device_bytes": result.peak_allocated_bytes,
            "step_time_ms": f"{step_ms:.3f}",
            "allreduce_ms": f"{allreduce_ms:.3f}",
            "allreduce_share": (allreduce_ms / step_ms) if step_ms else 0.0,
        })

    first_link = profile.scaling_interconnects[0]
    base_series = [row for row in rows if row["interconnect"] == first_link]
    peaks = [row["peak_per_device_bytes"] for row in base_series]
    allreduce = [float(row["allreduce_ms"]) for row in base_series]
    peak_shrinks = all(late <= early for early, late in zip(peaks, peaks[1:]))
    allreduce_grows = all(early <= late
                          for early, late in zip(allreduce, allreduce[1:]))
    if len(profile.scaling_interconnects) > 1:
        by_link = {link: [float(row["allreduce_ms"]) for row in rows
                          if row["interconnect"] == link]
                   for link in profile.scaling_interconnects}
        fastest_helps = (max(by_link[profile.scaling_interconnects[-1]])
                         <= max(by_link[first_link]))
    else:
        fastest_helps = True

    page = FigurePage(
        slug="scaling", fig_id="scaling",
        title=(f"Scaling - data-parallel replicas "
               f"(paper MLP, global batch {profile.scaling_batch_size})"),
        finding=(f"per-device peak {fmt_mib(peaks[0])} -> {fmt_mib(peaks[-1])} MiB "
                 f"from {base_series[0]['n_devices']} to "
                 f"{base_series[-1]['n_devices']} replicas; allreduce "
                 f"{allreduce[-1]:.3f} ms/step at the largest cluster"),
        reproduce=("PYTHONPATH=src python -m repro sweep "
                   f"--models {profile.comparison_model} "
                   f"--batch-sizes {profile.scaling_batch_size} "
                   "--n-devices "
                   + ",".join(str(n) for n in profile.scaling_n_devices)
                   + " --interconnects "
                   + ",".join(profile.scaling_interconnects)),
        checks=[
            ("sharding the global batch shrinks the per-device peak as "
             "replicas are added", peak_shrinks),
            ("gradient-allreduce time grows with the replica count "
             "(ring: 2(N-1)/N transfers of the gradient bytes)", allreduce_grows),
            ("a faster interconnect reduces the collective's share of the step",
             fastest_helps),
        ],
    )
    intro = ("The single-device assumption is gone: each scenario below runs "
             "N data-parallel replicas of the paper MLP on a simulated "
             "cluster, the global batch sharded across ranks and one "
             "gradient allreduce (ring cost model) inserted before every "
             "optimizer step. Parameters, gradients and optimizer state "
             "replicate per device while activations shrink with the shard, "
             "so the per-device peak falls short of linear scaling - and the "
             "interconnect decides how much of the step the collective eats.")
    table = markdown_table(rows, columns=["n_devices", "interconnect",
                                          "peak_per_device_mib", "step_time_ms",
                                          "allreduce_ms"])
    page.svgs["scaling_peak.svg"] = render_svg_bars(
        [(f"n={row['n_devices']}", row["peak_per_device_bytes"] / MIB)
         for row in base_series],
        title=f"Per-device peak (MiB) vs replica count ({first_link})",
        y_label="MiB per device")
    composition_rows = [{
        "label": f"n={row['n_devices']} {row['interconnect']}",
        "compute": 1.0 - row["allreduce_share"],
        "allreduce": row["allreduce_share"],
    } for row in rows]
    page.svgs["scaling_step.svg"] = render_svg_stacked_bars(
        composition_rows, ("compute", "allreduce"), label_key="label",
        title="Step-time composition (compute vs allreduce)")
    return _page(
        page, intro, table,
        "![scaling peak](svg/scaling_peak.svg)",
        "![scaling step](svg/scaling_step.svg)",
    )


def swap_execution_grid(profile: ReportProfile) -> SweepGrid:
    """The swap-mode grid behind the predicted-vs-simulated page.

    The workload is a deep compute-bound MLP: early-layer activations and
    weights idle across most of the forward+backward span and the optimizer
    state idles between steps, so the Eq.-1 planner has multi-hundred-ms
    windows to hide gigabyte-scale transfers behind — the regime where
    executing the plan (rather than estimating it) is informative.
    """
    return SweepGrid(
        models=("mlp",),
        model_kwargs={"hidden_dim": profile.swap_hidden_dim,
                      "num_hidden_layers": profile.swap_num_layers},
        batch_sizes=(profile.swap_batch_size,),
        iterations=(profile.swap_iterations,),
        swaps=profile.swap_modes,
        execution_mode="symbolic",
    )


def build_swap_execution(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Swap-execution page — measured vs predicted eviction/prefetch outcomes."""
    sweep = runner.run(swap_execution_grid(profile))
    rows = []
    by_mode: Dict[str, Dict[str, object]] = {}
    for result in sweep.results:
        mode = str(result.scenario["swap"])
        execution = result.swap_execution or {}
        predicted = execution.get("predicted") or {}
        measured_mib = float(execution.get("measured_savings_bytes", 0)) / MIB
        predicted_mib = float(predicted.get("savings_bytes", 0) or 0) / MIB
        stall_ms = float(execution.get("stall_ns_per_iteration", 0.0)) / 1e6
        by_mode[mode] = {
            "execution": execution,
            "predicted": predicted,
            "peak_allocated_bytes": result.peak_allocated_bytes,
        }
        rows.append({
            "swap": mode,
            "peak_alloc_mib": fmt_mib(result.peak_allocated_bytes),
            "measured_savings_mib": f"{measured_mib:.2f}",
            "predicted_savings_mib": f"{predicted_mib:.2f}",
            "stall_ms_per_iter": f"{stall_ms:.3f}",
            "swap_outs": int(execution.get("swap_out_count", 0)),
            "prefetch_hits": int(execution.get("prefetch_hits", 0)),
            "demand_fetches": int(execution.get("demand_fetches", 0)),
            "step_time_ms": f"{result.step_time_s_mean * 1e3:.3f}",
        })

    planner = by_mode.get("planner", {})
    planner_exec = planner.get("execution") or {}
    planner_pred = planner.get("predicted") or {}
    peak_live = int(planner_exec.get("peak_live_bytes", 0) or 0)
    gap = abs(int(planner_exec.get("measured_savings_bytes", 0))
              - int(planner_pred.get("savings_bytes", 0) or 0))
    planner_agrees = gap <= 0.05 * peak_live if peak_live else True
    zero = (by_mode.get("zero_offload", {}).get("execution") or {})
    offload_runs = (int(zero.get("swap_out_count", 0)) > 0
                    and int(zero.get("demand_fetches", 0)) > 0)
    off_peak = by_mode.get("off", {}).get("peak_allocated_bytes")
    allocation_invariant = all(
        info["peak_allocated_bytes"] == off_peak for info in by_mode.values())

    planner_measured_mib = float(
        planner_exec.get("measured_savings_bytes", 0)) / MIB
    planner_stall_ms = float(
        planner_exec.get("stall_ns_per_iteration", 0.0)) / 1e6
    page = FigurePage(
        slug="swap_execution", fig_id="swap-exec",
        title=(f"Swap execution - predicted vs simulated (deep MLP, "
               f"{profile.swap_num_layers}x{profile.swap_hidden_dim}, "
               f"batch {profile.swap_batch_size})"),
        finding=(f"planner: {planner_measured_mib:.0f} MiB measured peak "
                 f"reduction at {planner_stall_ms:.1f} ms/iter stall; "
                 "demand policies trade stalls for the same reduction"),
        reproduce=("PYTHONPATH=src python -m repro sweep --models mlp "
                   f"--hidden-dim {profile.swap_hidden_dim} "
                   f"--num-layers {profile.swap_num_layers} "
                   f"--batch-sizes {profile.swap_batch_size} "
                   f"--iterations {profile.swap_iterations} "
                   "--swap " + ",".join(profile.swap_modes)),
        checks=[
            ("the planner's predicted peak reduction agrees with the "
             "simulated execution within 5% of the live peak (the pinned "
             "cost-model-accuracy tolerance)", planner_agrees),
            ("the ZeRO-Offload-style executable policy really moves state "
             "(swap traffic + synchronous demand-fetch stalls in the trace)",
             offload_runs),
            ("swap execution changes residency and timing only - the "
             "allocation peak is identical to the swap-off run",
             allocation_invariant),
        ],
    )
    intro = ("Earlier pages *predict* what swapping would do; this page "
             "*executes* it. Each row runs the same training session with "
             "the closed-loop engine (`repro.swap`) driving a different "
             "policy: evictions and prefetches are scheduled on the "
             "device's copy stream, overlap with compute, contend with each "
             "other, and stall the device clock when a prefetch misses its "
             "deadline. `swap_out`/`swap_in` are first-class trace events, "
             "so the measured peak reduction (live peak minus resident "
             "peak over the steady iterations) and the stall time come out "
             "of the trace - directly comparable with the planner's "
             "predictions from its warm-up observations.")
    table = markdown_table(rows, columns=["swap", "peak_alloc_mib",
                                          "measured_savings_mib",
                                          "predicted_savings_mib",
                                          "stall_ms_per_iter", "swap_outs",
                                          "prefetch_hits", "demand_fetches",
                                          "step_time_ms"])
    page.svgs["swap_execution_savings.svg"] = render_svg_bars(
        [(f"{row['swap']} meas", float(row["measured_savings_mib"]))
         for row in rows if row["swap"] != "off"]
        + [(f"{row['swap']} pred", float(row["predicted_savings_mib"]))
           for row in rows if row["swap"] != "off"],
        title="Measured vs predicted peak reduction (MiB)",
        y_label="MiB")
    page.svgs["swap_execution_stalls.svg"] = render_svg_bars(
        [(row["swap"], float(row["stall_ms_per_iter"]))
         for row in rows if row["swap"] != "off"],
        title="Measured stall per iteration (ms)",
        y_label="ms / iteration")
    return _page(
        page, intro, table,
        "![swap savings](svg/swap_execution_savings.svg)",
        "![swap stalls](svg/swap_execution_stalls.svg)",
    )


def feasibility_scenarios(profile: ReportProfile) -> List[Tuple[str, int, Scenario]]:
    """The (mode, capacity, scenario) ladder behind the feasibility page.

    The swap workload is rerun under every hard capacity in
    ``frontier_capacities`` for every mode in ``frontier_modes``.  Scenarios
    are expanded one grid per mode so infeasible points (which *raise* — a
    raw OOM with the engine off, a structured
    :class:`~repro.errors.InfeasibleScenarioError` with it on) can be run
    and caught individually.
    """
    ladder: List[Tuple[str, int, Scenario]] = []
    for mode in profile.frontier_modes:
        grid = SweepGrid(
            models=("mlp",),
            model_kwargs={"hidden_dim": profile.swap_hidden_dim,
                          "num_hidden_layers": profile.swap_num_layers},
            batch_sizes=(profile.swap_batch_size,),
            iterations=(profile.swap_iterations,),
            swaps=(mode,),
            device_memory_capacities=profile.frontier_capacities,
            execution_mode="symbolic",
        )
        for capacity, scenario in zip(profile.frontier_capacities, grid.expand()):
            ladder.append((mode, capacity, scenario))
    return ladder


def build_feasibility(runner: SweepRunner, profile: ReportProfile) -> FigurePage:
    """Feasibility frontier — smallest workable capacity per eviction policy."""
    from ..errors import InfeasibleScenarioError, OutOfMemoryError, ReproError

    rows = []
    frontier: Dict[str, int] = {}          # mode -> smallest feasible capacity
    capacity_ok = True                     # peak_resident <= capacity everywhere
    structured_failures = True             # engine-on failures are never raw OOMs
    unified_stalls: List[Tuple[int, float]] = []
    for mode, capacity, scenario in feasibility_scenarios(profile):
        row = {"swap": mode, "capacity_mib": fmt_mib(capacity),
               "_capacity": capacity}
        try:
            result = runner.run([scenario]).results[0]
        except (InfeasibleScenarioError, OutOfMemoryError) as error:
            row.update({"feasible": "no",
                        "failure": type(error).__name__,
                        "peak_resident_mib": "-", "stall_ms_per_iter": "-",
                        "recompute_ms_per_iter": "-", "step_time_ms": "-"})
            if mode != "off" and not isinstance(error, InfeasibleScenarioError):
                structured_failures = False
            rows.append(row)
            continue
        except ReproError as error:  # unexpected shape of failure: surface it
            row.update({"feasible": "no", "failure": type(error).__name__,
                        "peak_resident_mib": "-", "stall_ms_per_iter": "-",
                        "recompute_ms_per_iter": "-", "step_time_ms": "-"})
            structured_failures = False
            rows.append(row)
            continue
        execution = result.swap_execution or {}
        peak_resident = int(execution.get("peak_resident_bytes",
                                          result.peak_allocated_bytes))
        stall_ms = float(execution.get("stall_ns_per_iteration", 0.0)) / 1e6
        recompute_ms = float(execution.get("recompute_ns_per_iteration", 0.0)) / 1e6
        if mode != "off" and peak_resident > capacity:
            capacity_ok = False
        frontier[mode] = min(frontier.get(mode, capacity), capacity)
        if mode == "unified":
            unified_stalls.append((capacity, stall_ms))
        row.update({
            "feasible": "yes", "failure": "",
            "peak_resident_mib": fmt_mib(peak_resident),
            "stall_ms_per_iter": f"{stall_ms:.3f}",
            "recompute_ms_per_iter": f"{recompute_ms:.3f}",
            "step_time_ms": f"{result.step_time_s_mean * 1e3:.3f}",
        })
        rows.append(row)

    off_frontier = frontier.get("off")
    unified_frontier = frontier.get("unified")
    unified_extends = (unified_frontier is not None
                       and (off_frontier is None
                            or unified_frontier < off_frontier))
    unified_stalls.sort()
    pressure_costs = (unified_stalls[0][1] >= unified_stalls[-1][1]
                      if len(unified_stalls) >= 2 else True)

    frontier_rows = [{"swap": mode,
                      "smallest_feasible_capacity_mib":
                          fmt_mib(frontier[mode]) if mode in frontier else "-"}
                     for mode in profile.frontier_modes]
    page = FigurePage(
        slug="feasibility", fig_id="feasibility",
        title=(f"Feasibility frontier - smallest workable capacity (deep MLP, "
               f"{profile.swap_num_layers}x{profile.swap_hidden_dim}, "
               f"batch {profile.swap_batch_size})"),
        finding=(f"unified runs down to "
                 f"{fmt_mib(unified_frontier) if unified_frontier else '-'} MiB "
                 f"of device memory vs "
                 f"{fmt_mib(off_frontier) if off_frontier else 'no workable point'}"
                 f"{' MiB' if off_frontier else ''} without the engine"),
        reproduce=("PYTHONPATH=src python -m repro sweep --models mlp "
                   f"--hidden-dim {profile.swap_hidden_dim} "
                   f"--num-layers {profile.swap_num_layers} "
                   f"--batch-sizes {profile.swap_batch_size} "
                   f"--iterations {profile.swap_iterations} "
                   "--swap " + ",".join(profile.frontier_modes)
                   + " --device-memory-gib "
                   + ",".join(f"{capacity / GIB:g}"
                              for capacity in profile.frontier_capacities)),
        checks=[
            ("the unified policy extends the feasibility frontier below the "
             "raw-allocation minimum (scenarios complete where swap-off OOMs)",
             unified_extends),
            ("every capacity-governed run keeps its measured resident peak "
             "at or below the configured capacity", capacity_ok),
            ("infeasible engine-on scenarios fail with the structured "
             "InfeasibleScenarioError, never a raw device OOM",
             structured_failures),
            ("squeezing the capacity costs stall time (the tightest feasible "
             "point stalls at least as much as the loosest)", pressure_costs),
        ],
    )
    intro = ("Every page so far ran with unbounded device memory; this page "
             "makes the capacity *real*. Each row reruns the deep-MLP swap "
             "workload under a hard device-memory capacity: with the engine "
             "off the allocator itself is shrunk (an allocation that does "
             "not fit raises a raw OOM), while with an execution policy on "
             "the engine's capacity governor force-evicts "
             "least-recently-used blocks - stalling the clock for the "
             "transfers - and raises a structured `InfeasibleScenarioError` "
             "only when even full eviction cannot fit the working set. The "
             "frontier table reports the smallest capacity at which each "
             "policy completes; the cost curve shows what living near the "
             "frontier costs in stall time per iteration.")
    table = markdown_table(rows, columns=["swap", "capacity_mib", "feasible",
                                          "failure", "peak_resident_mib",
                                          "stall_ms_per_iter",
                                          "recompute_ms_per_iter",
                                          "step_time_ms"])
    frontier_table = markdown_table(frontier_rows,
                                    columns=["swap",
                                             "smallest_feasible_capacity_mib"])
    page.svgs["feasibility_stalls.svg"] = render_svg_bars(
        [(fmt_mib(capacity), stall) for capacity, stall in unified_stalls],
        title="Unified policy: stall per iteration vs capacity (MiB)",
        y_label="ms / iteration")
    return _page(
        page, intro, table,
        section("Frontier", frontier_table),
        "![feasibility stalls](svg/feasibility_stalls.svg)",
    )


#: Page builders in presentation order.
FIGURE_BUILDERS = (build_fig2, build_fig3, build_fig4, build_fig5, build_fig6,
                   build_fig7, build_ablations, build_scaling,
                   build_swap_execution, build_feasibility)


def eq1_rows() -> List[Dict[str, object]]:
    """The closed-form Eq.-1 table (paper bandwidths; no scenarios needed)."""
    bandwidths = BandwidthConfig.from_paper()
    rows = []
    for ati_us in (1, 5, 10, 25, 50, 100, 1_000, 10_000, 100_000, 800_000, 1_000_000):
        bound = max_swap_bytes(us_to_ns(float(ati_us)), bandwidths)
        row: Dict[str, object] = {"ati_us": ati_us,
                                  "max_swap_kb": f"{bound / KB:.2f}"}
        if float(ati_us) in PAPER_OPERATING_POINTS_US:
            expected = PAPER_EXPECTED_SWAP_BYTES[float(ati_us)]
            row["paper_reports"] = (f"{expected / KB:.2f} KB"
                                    if expected < GB else f"{expected / GB:.2f} GB")
        else:
            row["paper_reports"] = ""
        rows.append(row)
    return rows


def comparison_grid(profile: ReportProfile) -> SweepGrid:
    """The policy x dtype x device grid behind the EXPERIMENTS.md comparison.

    The workload is the paper's Fig.-1 MLP including its host-latency model:
    the cross-iteration host pauses are what give the swapping policies real
    outlier intervals to hide transfers behind.
    """
    return SweepGrid(
        models=(profile.comparison_model,),
        model_kwargs=dict(profile.comparison_model_kwargs),
        batch_sizes=(profile.comparison_batch_size,),
        iterations=(3,),
        dtypes=profile.comparison_dtypes,
        device_specs=profile.comparison_devices,
        swap_policies=profile.comparison_policies,
        host_latency=PAPER_MLP_HOST_LATENCY,
        execution_mode="symbolic",
    )


def comparison_rows(runner: SweepRunner, profile: ReportProfile) -> List[Dict[str, object]]:
    """Tidy rows of the comparison sweep (policy/dtype/device as columns)."""
    sweep = runner.run(comparison_grid(profile))
    rows = []
    for result in sweep.results:
        swap = result.swap or {}
        rows.append({
            "policy": result.scenario["swap_policy"],
            "dtype": result.scenario["dtype"],
            "device": result.scenario["device_spec"],
            "peak_alloc_mib": fmt_mib(result.peak_allocated_bytes),
            "swappable_frac": f"{result.swappable_fraction:.3f}",
            "savings_mib": fmt_mib(swap.get("savings_bytes", 0)),
            "overhead_ms": f"{float(swap.get('overhead_ns', 0.0)) / 1e6:.3f}",
            "step_time_ms": f"{result.step_time_s_mean * 1e3:.3f}",
        })
    return rows
