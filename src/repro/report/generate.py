"""Generate, write and verify the repository's results documentation.

:func:`generate_report` renders every generated artifact **in memory** as a
mapping of repo-relative paths to file contents:

* ``EXPERIMENTS.md`` — the top-level results report: figure index with
  one-line findings, the Eq.-1 table, the policy x dtype x device comparison
  tables and the consolidated paper-claim checklist;
* ``docs/figures/<slug>.md`` — one page per paper figure (fig2-fig7 and the
  ablations) with tables, ASCII/SVG charts and the reproduce command;
* ``docs/figures/svg/*.svg`` — the SVG charts those pages embed.

:func:`write_report` persists the mapping; :func:`check_report` diffs it
against the working tree, which is what ``repro report --check`` (and the
``docs-sync`` CI job) uses to guarantee the committed docs can never drift
from the code that computes them.  Every scenario behind the report flows
through the PR-1 sweep cache, so a regeneration with a warm cache takes
milliseconds.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Union

from ..experiments.sweep import SweepGrid, SweepResult, SweepRunner, default_cache_dir
from .figures import (
    FIGURE_BUILDERS,
    FULL_PROFILE,
    PROFILES,
    ReportProfile,
    comparison_rows,
    eq1_rows,
)
from .markdown import GENERATED_BANNER, join_page, markdown_table, section

PathLike = Union[str, Path]

#: Repo-relative location of the generated pages.
FIGURES_DIR = "docs/figures"


class _MemoRunner:
    """Run-once facade over a :class:`SweepRunner` for a single generation.

    Several figure pages share scenarios (fig2/fig3/fig4 all reduce the same
    paper-MLP trace).  With the on-disk cache enabled the repeats are cheap,
    but with ``--no-cache`` they would re-execute the most expensive scenario
    once per page — so results are memoized by scenario key for the lifetime
    of one report generation regardless of the underlying cache policy.
    """

    def __init__(self, runner: SweepRunner):
        self._runner = runner
        self._memo: Dict[str, object] = {}
        #: Terminal failure records accumulated across the whole generation
        #: (only populated when the underlying runner is non-strict).
        self.failures: List[object] = []

    def run(self, grid_or_scenarios) -> SweepResult:
        """Run only the scenarios not seen in this generation; keep order.

        Results are memoized *by key*, not by submission position: a
        non-strict runner may return fewer results than scenarios submitted
        (failed scenarios land in the failure manifest instead), so pairing
        by ``zip`` would mis-attribute every result after the first gap.
        """
        if isinstance(grid_or_scenarios, SweepGrid):
            scenarios = grid_or_scenarios.expand()
        else:
            scenarios = list(grid_or_scenarios)
        keys = [scenario.key(self._runner.bandwidths) for scenario in scenarios]
        missing = [scenario for scenario, key in zip(scenarios, keys)
                   if key not in self._memo]
        if missing:
            fresh = self._runner.run(missing)
            for result in fresh.results:
                self._memo[result.key] = result
            self.failures.extend(fresh.failures)
        return SweepResult(results=[self._memo[key] for key in keys
                                    if key in self._memo],
                           cache_hits=len(scenarios) - len(missing),
                           cache_misses=len(missing), wall_time_s=0.0,
                           failures=[record for record in self.failures
                                     if record.key in keys])


def _failures_section(failures) -> str:
    """A "Failed scenarios" table for partial generations (empty when clean).

    The default (strict) runner raises on the first failure, so committed
    docs never carry this section; it only appears when a caller generates a
    report from a non-strict runner and some scenarios terminally failed.
    """
    if not failures:
        return ""
    rows = [{
        "model": record.scenario.get("model"),
        "batch_size": record.scenario.get("batch_size"),
        "swap": record.scenario.get("swap"),
        "reason": record.reason,
        "kind": record.kind,
        "attempts": record.attempts,
    } for record in failures]
    return section(
        "Failed scenarios",
        ("The scenarios below produced no result this generation; every "
         "number above comes from the scenarios that completed."),
        markdown_table(rows, columns=["model", "batch_size", "swap", "reason",
                                      "kind", "attempts"]))


def _experiments_md(pages, comparison, profile: ReportProfile,
                    failures=()) -> str:
    """Assemble the top-level EXPERIMENTS.md from the rendered figure pages."""
    index_rows = [{
        "figure": f"[{page.fig_id}]({page.path})",
        "title": page.title.split(" - ", 1)[-1],
        "finding": page.finding,
    } for page in pages]

    checklist = []
    for page in pages:
        for claim, ok in page.checks:
            checklist.append({"figure": page.fig_id, "claim": claim,
                              "reproduced": ok})

    by_axis = section(
        "Comparison: policy x dtype x device",
        (f"One workload (the paper MLP at batch "
         f"{profile.comparison_batch_size}, host-latency model included) "
         "swept across the three axes "
         "introduced in this PR - baseline policy (swapping variants, "
         "recomputation, parameter compression), training dtype and device "
         "spec. Peak footprint follows the dtype, Eq.-1 swappability follows "
         "the device's host link, and the policies split the same footprint "
         "very differently:"),
        markdown_table(comparison,
                       columns=["policy", "dtype", "device", "peak_alloc_mib",
                                "swappable_frac", "savings_mib", "overhead_ms",
                                "step_time_ms"]),
        ("Reproduce: `PYTHONPATH=src python -m repro sweep "
         f"--models {profile.comparison_model} "
         f"--batch-sizes {profile.comparison_batch_size} "
         f"--dtypes {','.join(profile.comparison_dtypes)} "
         f"--devices {','.join(profile.comparison_devices)} "
         f"--swap-policies {','.join(profile.comparison_policies)}`"),
    )

    return join_page(
        GENERATED_BANNER,
        "# EXPERIMENTS",
        ("Reproduction record for *Pinpointing the Memory Behaviors of DNN "
         "Training* (ISPASS). Every number below is computed from cached "
         "`ScenarioResult`s produced by the sweep engine; regenerate with "
         "`make report`, verify with `make docs-check` "
         f"(profile: `{profile.name}`)."),
        section("Figure index", markdown_table(
            index_rows, columns=["figure", "title", "finding"])),
        section("Equation 1 - swap bound vs ATI",
                ("At the paper's measured pinned bandwidths (6.3 GB/s "
                 "host-to-device, 6.4 GB/s device-to-host), Eq. 1 bounds the "
                 "bytes swappable within one access-time interval:"),
                markdown_table(eq1_rows(),
                               columns=["ati_us", "max_swap_kb", "paper_reports"]),
                "Reproduce: `PYTHONPATH=src python -m repro figure eq1`"),
        by_axis,
        section("Paper-claim checklist", markdown_table(
            checklist, columns=["figure", "claim", "reproduced"])),
        _failures_section(failures),
    )


def generate_report(runner: Optional[SweepRunner] = None,
                    profile: Union[str, ReportProfile] = FULL_PROFILE) -> Dict[str, str]:
    """Render every generated artifact as ``{repo-relative path: content}``."""
    if isinstance(profile, str):
        profile = PROFILES[profile]
    if runner is None:
        runner = SweepRunner(cache_dir=default_cache_dir())
    memo = _MemoRunner(runner)
    pages = [builder(memo, profile) for builder in FIGURE_BUILDERS]
    comparison = comparison_rows(memo, profile)

    files: Dict[str, str] = {"EXPERIMENTS.md": _experiments_md(
        pages, comparison, profile, failures=memo.failures)}
    for page in pages:
        files[page.path] = page.body
        for svg_name, svg_text in page.svgs.items():
            files[f"{FIGURES_DIR}/svg/{svg_name}"] = svg_text
    return files


def write_report(files: Dict[str, str], root: PathLike = ".") -> List[Path]:
    """Write the generated files under ``root`` (parents created)."""
    root = Path(root)
    written = []
    for relative, content in sorted(files.items()):
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(content, encoding="utf-8")
        written.append(path)
    return written


def check_report(files: Dict[str, str], root: PathLike = ".") -> List[str]:
    """Paths under ``root`` that are missing, differ, or are orphaned.

    Orphans are files under the generated docs tree (``docs/figures/``) that
    the generator no longer emits — e.g. a page left behind after a figure
    was renamed.  They carry stale numbers and the GENERATED banner, so they
    count as drift too.
    """
    root = Path(root)
    stale = []
    for relative, content in sorted(files.items()):
        path = root / relative
        if not path.is_file() or path.read_text(encoding="utf-8") != content:
            stale.append(relative)
    figures_root = root / FIGURES_DIR
    if figures_root.is_dir():
        for path in sorted(figures_root.rglob("*")):
            if path.suffix not in (".md", ".svg") or not path.is_file():
                continue
            relative = path.relative_to(root).as_posix()
            if relative not in files:
                stale.append(f"{relative} (orphaned - no longer generated)")
    return stale
