"""Model zoo: the paper's MLP plus the linear and non-linear DNNs of Figures 5-7."""

from .alexnet import AlexNet
from .inception import InceptionBlock, SimpleInception
from .lenet import LeNet5
from .mlp import MLP, PAPER_MLP_HIDDEN_DIM, PAPER_MLP_INPUT_DIM, PAPER_MLP_OUTPUT_DIM, paper_mlp
from .registry import available_models, build_model, register_model
from .resnet import (
    RESNET_CONFIGS,
    BasicBlock,
    Bottleneck,
    ResNet,
    resnet18,
    resnet34,
    resnet50,
    resnet101,
    resnet152,
)
from .vgg import VGG, VGG_CONFIGS, vgg11, vgg16

__all__ = [
    "AlexNet",
    "BasicBlock",
    "Bottleneck",
    "InceptionBlock",
    "LeNet5",
    "MLP",
    "PAPER_MLP_HIDDEN_DIM",
    "PAPER_MLP_INPUT_DIM",
    "PAPER_MLP_OUTPUT_DIM",
    "RESNET_CONFIGS",
    "ResNet",
    "SimpleInception",
    "VGG",
    "VGG_CONFIGS",
    "available_models",
    "build_model",
    "paper_mlp",
    "register_model",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "vgg11",
    "vgg16",
]
