"""LeNet-5, the classic small convolutional network (LeCun et al.).

Used by the tests and the Figure-5 breakdown as a small "typical DNN" whose
eager training is cheap enough to verify numerically.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device.device import Device
from ..nn import Conv2d, Flatten, Linear, MaxPool2d, ReLU, Sequential


class LeNet5(Sequential):
    """LeNet-5 adapted to configurable input channels / spatial size."""

    def __init__(self, device: Device, num_classes: int = 10, in_channels: int = 1,
                 input_size: int = 28, rng: Optional[np.random.Generator] = None,
                 name: str = "lenet5"):
        generator = rng if rng is not None else np.random.default_rng(0)
        after_convs = ((input_size - 4) // 2 - 4) // 2
        if after_convs <= 0:
            raise ValueError(f"input_size {input_size} is too small for LeNet-5")
        layers = [
            Conv2d(device, in_channels, 6, kernel_size=5, name=f"{name}.conv1", rng=generator),
            ReLU(device, name=f"{name}.relu1"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool1"),
            Conv2d(device, 6, 16, kernel_size=5, name=f"{name}.conv2", rng=generator),
            ReLU(device, name=f"{name}.relu2"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool2"),
            Flatten(device, name=f"{name}.flatten"),
            Linear(device, 16 * after_convs * after_convs, 120, name=f"{name}.fc1",
                   rng=generator),
            ReLU(device, name=f"{name}.relu3"),
            Linear(device, 120, 84, name=f"{name}.fc2", rng=generator),
            ReLU(device, name=f"{name}.relu4"),
            Linear(device, 84, num_classes, name=f"{name}.fc3", rng=generator),
        ]
        super().__init__(device, layers, name=name)
        self.input_shape = (in_channels, input_size, input_size)
        self.num_classes = num_classes
