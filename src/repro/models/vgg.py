"""VGG-11 and VGG-16 (Simonyan & Zisserman), used as "typical DNNs" in Figure 5."""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

import numpy as np

from ..device.device import Device
from ..nn import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU, Sequential

#: Layer configurations: integers are output channel counts, "M" is max-pooling.
VGG_CONFIGS = {
    "vgg11": [64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"],
    "vgg16": [64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
              512, 512, 512, "M", 512, 512, 512, "M"],
}


class VGG(Sequential):
    """A VGG network built from a channel configuration string."""

    def __init__(self, device: Device, config: Union[str, Sequence] = "vgg16",
                 num_classes: int = 1000, input_size: int = 224, in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None, name: str = "vgg"):
        generator = rng if rng is not None else np.random.default_rng(0)
        if isinstance(config, str):
            config_key = config
            config = VGG_CONFIGS[config]
        else:
            config_key = name
        layers: List = []
        channels = in_channels
        spatial = input_size
        conv_index = 0
        for entry in config:
            if entry == "M":
                layers.append(MaxPool2d(device, kernel_size=2, stride=2,
                                        name=f"{name}.pool{conv_index}"))
                spatial //= 2
                continue
            conv_index += 1
            layers.append(Conv2d(device, channels, int(entry), kernel_size=3, padding=1,
                                 name=f"{name}.conv{conv_index}", rng=generator))
            layers.append(ReLU(device, name=f"{name}.relu{conv_index}"))
            channels = int(entry)
        spatial = max(1, spatial)
        hidden = 4096 if input_size >= 64 else 512
        layers += [
            Flatten(device, name=f"{name}.flatten"),
            Linear(device, channels * spatial * spatial, hidden, name=f"{name}.fc1",
                   rng=generator),
            ReLU(device, name=f"{name}.relu_fc1"),
            Dropout(device, p=0.5, name=f"{name}.drop1"),
            Linear(device, hidden, hidden, name=f"{name}.fc2", rng=generator),
            ReLU(device, name=f"{name}.relu_fc2"),
            Dropout(device, p=0.5, name=f"{name}.drop2"),
            Linear(device, hidden, num_classes, name=f"{name}.fc3", rng=generator),
        ]
        super().__init__(device, layers, name=name or config_key)
        self.input_shape = (in_channels, input_size, input_size)
        self.num_classes = num_classes


def vgg11(device: Device, **kwargs) -> VGG:
    """VGG with configuration A (11 weight layers)."""
    kwargs.setdefault("name", "vgg11")
    return VGG(device, config="vgg11", **kwargs)


def vgg16(device: Device, **kwargs) -> VGG:
    """VGG with configuration D (16 weight layers)."""
    kwargs.setdefault("name", "vgg16")
    return VGG(device, config="vgg16", **kwargs)
