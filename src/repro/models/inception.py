"""A small Inception-style network (parallel branches + channel concatenation).

The paper's introduction motivates the memory problem with Inception-V4's
45 GB training footprint; for the Figure-5 "typical DNNs" breakdown we include
a compact Inception-style model whose blocks have the same four-branch
structure (1x1, 3x3, 5x5 and pooled 1x1 convolutions concatenated along the
channel axis), which exercises the concat/split kernels and produces the
characteristic wide intermediate tensors.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..device.device import Device
from ..nn import Conv2d, Flatten, GlobalAvgPool2d, Linear, MaxPool2d, ReLU, Sequential
from ..nn.module import Module
from ..tensor import shape_ops
from ..tensor.tensor import Tensor


class InceptionBlock(Module):
    """Four parallel convolution branches concatenated along channels."""

    def __init__(self, device: Device, in_channels: int, branch_channels: int,
                 name: str = "inception_block",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(device, name=name)
        generator = rng if rng is not None else np.random.default_rng(0)
        self.branch1 = Sequential(device, [
            Conv2d(device, in_channels, branch_channels, kernel_size=1,
                   name=f"{name}.b1.conv", rng=generator),
            ReLU(device, name=f"{name}.b1.relu"),
        ], name=f"{name}.branch1")
        self.branch3 = Sequential(device, [
            Conv2d(device, in_channels, branch_channels, kernel_size=3, padding=1,
                   name=f"{name}.b3.conv", rng=generator),
            ReLU(device, name=f"{name}.b3.relu"),
        ], name=f"{name}.branch3")
        self.branch5 = Sequential(device, [
            Conv2d(device, in_channels, branch_channels, kernel_size=5, padding=2,
                   name=f"{name}.b5.conv", rng=generator),
            ReLU(device, name=f"{name}.b5.relu"),
        ], name=f"{name}.branch5")
        self.branch_pool = Sequential(device, [
            AvgLikePool(device, name=f"{name}.bp.pool"),
            Conv2d(device, in_channels, branch_channels, kernel_size=1,
                   name=f"{name}.bp.conv", rng=generator),
            ReLU(device, name=f"{name}.bp.relu"),
        ], name=f"{name}.branch_pool")
        self.branches = [self.branch1, self.branch3, self.branch5, self.branch_pool]
        self.branch_channels = branch_channels
        self.out_channels = 4 * branch_channels

    def forward(self, x: Tensor) -> Tensor:
        outputs = [branch(x) for branch in self.branches]
        merged = shape_ops.concat_channels(outputs, tag=f"{self.name}.concat")
        for output in outputs:
            output.release()
        return merged

    def backward(self, grad_output: Tensor) -> Tensor:
        sizes = [self.branch_channels] * 4
        pieces = shape_ops.split_channels(grad_output, sizes, tag=f"{self.name}.split")
        grad_input: Optional[Tensor] = None
        from ..tensor import functional as F  # local import avoids a cycle at module load

        for branch, piece in zip(self.branches, pieces):
            grad_branch = branch.backward(piece)
            piece.release()
            if grad_input is None:
                grad_input = grad_branch
            else:
                merged = F.add(grad_input, grad_branch, tag=f"{self.name}.grad_in")
                grad_input.release()
                grad_branch.release()
                grad_input = merged
        return grad_input


class AvgLikePool(Module):
    """A stride-1 3x3 max pool used inside the pooled branch (keeps spatial size)."""

    def __init__(self, device: Device, name: str = "pool3x3"):
        super().__init__(device, name=name)
        self._inner = None

    def forward(self, x: Tensor) -> Tensor:
        from ..tensor import conv_ops as C

        self._input_shape = x.shape
        output, indices = C.maxpool2d_forward(x, kernel=3, stride=1, padding=1,
                                              tag=f"{self.name}.out")
        self.save_for_backward(indices=indices)
        indices.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        from ..tensor import conv_ops as C

        indices = self.saved("indices")
        grad_input = C.maxpool2d_backward(grad_output, indices, self._input_shape, kernel=3,
                                          stride=1, padding=1, tag=f"{self.name}.grad_in")
        self.release_saved()
        return grad_input


class SimpleInception(Sequential):
    """A compact GoogLeNet-flavoured network with three Inception blocks."""

    def __init__(self, device: Device, num_classes: int = 100, input_size: int = 32,
                 in_channels: int = 3, rng: Optional[np.random.Generator] = None,
                 name: str = "inception_small"):
        generator = rng if rng is not None else np.random.default_rng(0)
        layers: List[Module] = [
            Conv2d(device, in_channels, 64, kernel_size=3, padding=1,
                   name=f"{name}.stem.conv", rng=generator),
            ReLU(device, name=f"{name}.stem.relu"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.stem.pool"),
            InceptionBlock(device, 64, 32, name=f"{name}.block1", rng=generator),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool1"),
            InceptionBlock(device, 128, 48, name=f"{name}.block2", rng=generator),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool2"),
            InceptionBlock(device, 192, 64, name=f"{name}.block3", rng=generator),
            GlobalAvgPool2d(device, name=f"{name}.gap"),
            Flatten(device, name=f"{name}.flatten"),
            Linear(device, 256, num_classes, name=f"{name}.fc", rng=generator),
        ]
        super().__init__(device, layers, name=name)
        self.input_shape = (in_channels, input_size, input_size)
        self.num_classes = num_classes
