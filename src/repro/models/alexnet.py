"""AlexNet — the paper's "linear DNN" for the Figure 6 batch-size sweep.

Two configurations are provided:

* the ImageNet configuration (224x224 inputs) follows the torchvision
  topology (5 convolutions, 3 max-poolings, 3 fully connected layers with
  dropout);
* the CIFAR configuration (32x32 inputs) is the widely used adaptation that
  keeps the channel progression but shrinks kernel sizes and strides so the
  spatial dimensions survive.

The paper's Figure 6 runs AlexNet on CIFAR-100 at several batch sizes and
shows the intermediate results progressively dominating the footprint.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device.device import Device
from ..nn import Conv2d, Dropout, Flatten, Linear, MaxPool2d, ReLU, Sequential


class AlexNet(Sequential):
    """AlexNet for ImageNet-sized (224x224) or CIFAR-sized (32x32) inputs."""

    def __init__(self, device: Device, num_classes: int = 1000, input_size: int = 224,
                 in_channels: int = 3, dropout: float = 0.5,
                 rng: Optional[np.random.Generator] = None, name: str = "alexnet"):
        generator = rng if rng is not None else np.random.default_rng(0)
        if input_size >= 64:
            layers, feature_dim = self._imagenet_layers(device, in_channels, input_size,
                                                        generator, name)
        else:
            layers, feature_dim = self._cifar_layers(device, in_channels, input_size,
                                                     generator, name)
        layers += [
            Flatten(device, name=f"{name}.flatten"),
            Dropout(device, p=dropout, name=f"{name}.drop1"),
            Linear(device, feature_dim, 4096, name=f"{name}.fc1", rng=generator),
            ReLU(device, name=f"{name}.relu_fc1"),
            Dropout(device, p=dropout, name=f"{name}.drop2"),
            Linear(device, 4096, 4096, name=f"{name}.fc2", rng=generator),
            ReLU(device, name=f"{name}.relu_fc2"),
            Linear(device, 4096, num_classes, name=f"{name}.fc3", rng=generator),
        ]
        super().__init__(device, layers, name=name)
        self.input_shape = (in_channels, input_size, input_size)
        self.num_classes = num_classes

    @staticmethod
    def _imagenet_layers(device, in_channels, input_size, rng, name):
        """Feature extractor for 224x224 inputs (torchvision layout)."""
        layers = [
            Conv2d(device, in_channels, 64, kernel_size=11, stride=4, padding=2,
                   name=f"{name}.conv1", rng=rng),
            ReLU(device, name=f"{name}.relu1"),
            MaxPool2d(device, kernel_size=3, stride=2, name=f"{name}.pool1"),
            Conv2d(device, 64, 192, kernel_size=5, padding=2, name=f"{name}.conv2", rng=rng),
            ReLU(device, name=f"{name}.relu2"),
            MaxPool2d(device, kernel_size=3, stride=2, name=f"{name}.pool2"),
            Conv2d(device, 192, 384, kernel_size=3, padding=1, name=f"{name}.conv3", rng=rng),
            ReLU(device, name=f"{name}.relu3"),
            Conv2d(device, 384, 256, kernel_size=3, padding=1, name=f"{name}.conv4", rng=rng),
            ReLU(device, name=f"{name}.relu4"),
            Conv2d(device, 256, 256, kernel_size=3, padding=1, name=f"{name}.conv5", rng=rng),
            ReLU(device, name=f"{name}.relu5"),
            MaxPool2d(device, kernel_size=3, stride=2, name=f"{name}.pool3"),
        ]
        # 224 -> conv1(s4,p2) 55 -> pool 27 -> 27 -> pool 13 -> 13 -> 13 -> 13 -> pool 6
        spatial = 6 if input_size == 224 else AlexNet._imagenet_spatial(input_size)
        return layers, 256 * spatial * spatial

    @staticmethod
    def _imagenet_spatial(input_size: int) -> int:
        size = (input_size + 2 * 2 - 11) // 4 + 1
        size = (size - 3) // 2 + 1
        size = size  # conv2 padding 2 keeps size
        size = (size - 3) // 2 + 1
        size = (size - 3) // 2 + 1
        return max(1, size)

    @staticmethod
    def _cifar_layers(device, in_channels, input_size, rng, name):
        """Feature extractor for 32x32 inputs (CIFAR adaptation)."""
        layers = [
            Conv2d(device, in_channels, 64, kernel_size=3, stride=2, padding=1,
                   name=f"{name}.conv1", rng=rng),
            ReLU(device, name=f"{name}.relu1"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool1"),
            Conv2d(device, 64, 192, kernel_size=3, padding=1, name=f"{name}.conv2", rng=rng),
            ReLU(device, name=f"{name}.relu2"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool2"),
            Conv2d(device, 192, 384, kernel_size=3, padding=1, name=f"{name}.conv3", rng=rng),
            ReLU(device, name=f"{name}.relu3"),
            Conv2d(device, 384, 256, kernel_size=3, padding=1, name=f"{name}.conv4", rng=rng),
            ReLU(device, name=f"{name}.relu4"),
            Conv2d(device, 256, 256, kernel_size=3, padding=1, name=f"{name}.conv5", rng=rng),
            ReLU(device, name=f"{name}.relu5"),
            MaxPool2d(device, kernel_size=2, stride=2, name=f"{name}.pool3"),
        ]
        # 32 -> conv1(s2) 16 -> pool 8 -> pool 4 -> ... -> pool 2
        spatial = input_size // 16
        return layers, 256 * max(1, spatial) * max(1, spatial)
