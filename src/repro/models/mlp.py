"""The paper's case-study MLP (Figure 1).

Layer topology: ``y = (ReLU(x @ W0 + b0)) @ W1 + b1`` with
``W0: (2, 12288)``, ``b0: (12288)``, ``W1: (12288, 2)``, ``b1: (2)``.

The two matrix multiplications, the bias adds and the ReLU are exactly the
operators whose per-block behaviors Figures 2-4 of the paper trace during the
first five training iterations.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..device.device import Device
from ..nn import Linear, ReLU, Sequential
from ..tensor.tensor import Tensor

#: Shapes used by the paper's Figure 1.
PAPER_MLP_INPUT_DIM = 2
PAPER_MLP_HIDDEN_DIM = 12288
PAPER_MLP_OUTPUT_DIM = 2


class MLP(Sequential):
    """A configurable multi-layer perceptron (defaults to the paper's Fig. 1 shape)."""

    def __init__(self, device: Device, input_dim: int = PAPER_MLP_INPUT_DIM,
                 hidden_dim: int = PAPER_MLP_HIDDEN_DIM,
                 output_dim: int = PAPER_MLP_OUTPUT_DIM,
                 num_hidden_layers: int = 1,
                 rng: Optional[np.random.Generator] = None,
                 name: str = "mlp"):
        generator = rng if rng is not None else np.random.default_rng(0)
        layers = []
        previous = input_dim
        for index in range(num_hidden_layers):
            layers.append(Linear(device, previous, hidden_dim, name=f"{name}.fc{index}",
                                 rng=generator))
            layers.append(ReLU(device, name=f"{name}.relu{index}"))
            previous = hidden_dim
        layers.append(Linear(device, previous, output_dim, name=f"{name}.fc_out",
                             rng=generator))
        super().__init__(device, layers, name=name)
        self.input_dim = input_dim
        self.hidden_dim = hidden_dim
        self.output_dim = output_dim
        self.input_shape = (input_dim,)
        self.num_classes = output_dim


def paper_mlp(device: Device, rng: Optional[np.random.Generator] = None) -> MLP:
    """Construct the exact MLP of the paper's Figure 1."""
    return MLP(device, rng=rng)
