"""ResNet-18/34/50/101/152 — the paper's "non-linear DNNs" for Figure 7.

Residual blocks are modules with explicit forward/backward: the gradient of
the elementwise residual addition flows into both the main branch and the
shortcut, and the two input gradients are summed — exactly the dataflow that
makes non-linear DNNs hold more intermediate tensors alive than linear ones.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..core.events import MemoryCategory
from ..device.device import Device
from ..nn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    GlobalAvgPool2d,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from ..nn.module import Module
from ..tensor import functional as F
from ..tensor.tensor import Tensor

#: (block type, per-stage block counts) for each supported depth.
RESNET_CONFIGS = {
    "resnet18": ("basic", [2, 2, 2, 2]),
    "resnet34": ("basic", [3, 4, 6, 3]),
    "resnet50": ("bottleneck", [3, 4, 6, 3]),
    "resnet101": ("bottleneck", [3, 4, 23, 3]),
    "resnet152": ("bottleneck", [3, 8, 36, 3]),
}

#: Stage base widths shared by every ResNet depth.
STAGE_PLANES = (64, 128, 256, 512)


class BasicBlock(Module):
    """Two 3x3 convolutions with a residual connection (ResNet-18/34)."""

    expansion = 1

    def __init__(self, device: Device, in_planes: int, planes: int, stride: int = 1,
                 name: str = "basic_block",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(device, name=name)
        generator = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = Conv2d(device, in_planes, planes, kernel_size=3, stride=stride,
                            padding=1, bias=False, name=f"{name}.conv1", rng=generator)
        self.bn1 = BatchNorm2d(device, planes, name=f"{name}.bn1")
        self.relu1 = ReLU(device, name=f"{name}.relu1")
        self.conv2 = Conv2d(device, planes, planes, kernel_size=3, stride=1, padding=1,
                            bias=False, name=f"{name}.conv2", rng=generator)
        self.bn2 = BatchNorm2d(device, planes, name=f"{name}.bn2")
        self.relu_out = ReLU(device, name=f"{name}.relu_out")
        self.has_downsample = stride != 1 or in_planes != planes * self.expansion
        if self.has_downsample:
            self.downsample_conv = Conv2d(device, in_planes, planes * self.expansion,
                                          kernel_size=1, stride=stride, bias=False,
                                          name=f"{name}.downsample_conv", rng=generator)
            self.downsample_bn = BatchNorm2d(device, planes * self.expansion,
                                             name=f"{name}.downsample_bn")

    def forward(self, x: Tensor) -> Tensor:
        main = self.conv1(x)
        normed = self.bn1(main)
        main.release()
        activated = self.relu1(normed)
        normed.release()
        main2 = self.conv2(activated)
        activated.release()
        normed2 = self.bn2(main2)
        main2.release()

        if self.has_downsample:
            shortcut = self.downsample_conv(x)
            shortcut_normed = self.downsample_bn(shortcut)
            shortcut.release()
        else:
            shortcut_normed = x.retain()

        summed = F.add(normed2, shortcut_normed, tag=f"{self.name}.residual_sum")
        normed2.release()
        shortcut_normed.release()
        output = self.relu_out(summed)
        summed.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        grad_sum = self.relu_out.backward(grad_output)

        grad = self.bn2.backward(grad_sum)
        grad_conv2 = self.conv2.backward(grad)
        grad.release()
        grad_relu = self.relu1.backward(grad_conv2)
        grad_conv2.release()
        grad_bn1 = self.bn1.backward(grad_relu)
        grad_relu.release()
        grad_main = self.conv1.backward(grad_bn1)
        grad_bn1.release()

        if self.has_downsample:
            grad_ds = self.downsample_bn.backward(grad_sum)
            grad_shortcut = self.downsample_conv.backward(grad_ds)
            grad_ds.release()
        else:
            grad_shortcut = grad_sum.retain()
        grad_sum.release()

        grad_input = F.add(grad_main, grad_shortcut, tag=f"{self.name}.grad_in",
                           category=MemoryCategory.ACTIVATION_GRADIENT)
        grad_main.release()
        grad_shortcut.release()
        return grad_input


class Bottleneck(Module):
    """1x1 / 3x3 / 1x1 bottleneck block with expansion 4 (ResNet-50/101/152)."""

    expansion = 4

    def __init__(self, device: Device, in_planes: int, planes: int, stride: int = 1,
                 name: str = "bottleneck",
                 rng: Optional[np.random.Generator] = None):
        super().__init__(device, name=name)
        generator = rng if rng is not None else np.random.default_rng(0)
        out_planes = planes * self.expansion
        self.conv1 = Conv2d(device, in_planes, planes, kernel_size=1, bias=False,
                            name=f"{name}.conv1", rng=generator)
        self.bn1 = BatchNorm2d(device, planes, name=f"{name}.bn1")
        self.relu1 = ReLU(device, name=f"{name}.relu1")
        self.conv2 = Conv2d(device, planes, planes, kernel_size=3, stride=stride, padding=1,
                            bias=False, name=f"{name}.conv2", rng=generator)
        self.bn2 = BatchNorm2d(device, planes, name=f"{name}.bn2")
        self.relu2 = ReLU(device, name=f"{name}.relu2")
        self.conv3 = Conv2d(device, planes, out_planes, kernel_size=1, bias=False,
                            name=f"{name}.conv3", rng=generator)
        self.bn3 = BatchNorm2d(device, out_planes, name=f"{name}.bn3")
        self.relu_out = ReLU(device, name=f"{name}.relu_out")
        self.has_downsample = stride != 1 or in_planes != out_planes
        if self.has_downsample:
            self.downsample_conv = Conv2d(device, in_planes, out_planes, kernel_size=1,
                                          stride=stride, bias=False,
                                          name=f"{name}.downsample_conv", rng=generator)
            self.downsample_bn = BatchNorm2d(device, out_planes,
                                             name=f"{name}.downsample_bn")

    def forward(self, x: Tensor) -> Tensor:
        stage1 = self.conv1(x)
        stage1_bn = self.bn1(stage1)
        stage1.release()
        stage1_act = self.relu1(stage1_bn)
        stage1_bn.release()

        stage2 = self.conv2(stage1_act)
        stage1_act.release()
        stage2_bn = self.bn2(stage2)
        stage2.release()
        stage2_act = self.relu2(stage2_bn)
        stage2_bn.release()

        stage3 = self.conv3(stage2_act)
        stage2_act.release()
        stage3_bn = self.bn3(stage3)
        stage3.release()

        if self.has_downsample:
            shortcut = self.downsample_conv(x)
            shortcut_normed = self.downsample_bn(shortcut)
            shortcut.release()
        else:
            shortcut_normed = x.retain()

        summed = F.add(stage3_bn, shortcut_normed, tag=f"{self.name}.residual_sum")
        stage3_bn.release()
        shortcut_normed.release()
        output = self.relu_out(summed)
        summed.release()
        return output

    def backward(self, grad_output: Tensor) -> Tensor:
        grad_sum = self.relu_out.backward(grad_output)

        grad = self.bn3.backward(grad_sum)
        grad_c3 = self.conv3.backward(grad)
        grad.release()
        grad = self.relu2.backward(grad_c3)
        grad_c3.release()
        grad_b2 = self.bn2.backward(grad)
        grad.release()
        grad_c2 = self.conv2.backward(grad_b2)
        grad_b2.release()
        grad = self.relu1.backward(grad_c2)
        grad_c2.release()
        grad_b1 = self.bn1.backward(grad)
        grad.release()
        grad_main = self.conv1.backward(grad_b1)
        grad_b1.release()

        if self.has_downsample:
            grad_ds = self.downsample_bn.backward(grad_sum)
            grad_shortcut = self.downsample_conv.backward(grad_ds)
            grad_ds.release()
        else:
            grad_shortcut = grad_sum.retain()
        grad_sum.release()

        grad_input = F.add(grad_main, grad_shortcut, tag=f"{self.name}.grad_in",
                           category=MemoryCategory.ACTIVATION_GRADIENT)
        grad_main.release()
        grad_shortcut.release()
        return grad_input


class ResNet(Sequential):
    """A ResNet assembled as a Sequential of stem, residual stages and head."""

    def __init__(self, device: Device, depth_name: str = "resnet18", num_classes: int = 1000,
                 input_size: int = 224, in_channels: int = 3,
                 rng: Optional[np.random.Generator] = None, name: str = ""):
        if depth_name not in RESNET_CONFIGS:
            known = ", ".join(sorted(RESNET_CONFIGS))
            raise ValueError(f"unknown ResNet depth '{depth_name}'; known: {known}")
        name = name or depth_name
        generator = rng if rng is not None else np.random.default_rng(0)
        block_kind, stage_sizes = RESNET_CONFIGS[depth_name]
        block_cls = BasicBlock if block_kind == "basic" else Bottleneck

        layers: List[Module] = []
        if input_size >= 64:
            layers += [
                Conv2d(device, in_channels, 64, kernel_size=7, stride=2, padding=3,
                       bias=False, name=f"{name}.conv1", rng=generator),
                BatchNorm2d(device, 64, name=f"{name}.bn1"),
                ReLU(device, name=f"{name}.relu1"),
                MaxPool2d(device, kernel_size=3, stride=2, padding=1, name=f"{name}.maxpool"),
            ]
        else:
            # CIFAR stem: keep the 32x32 resolution in the first stage.
            layers += [
                Conv2d(device, in_channels, 64, kernel_size=3, stride=1, padding=1,
                       bias=False, name=f"{name}.conv1", rng=generator),
                BatchNorm2d(device, 64, name=f"{name}.bn1"),
                ReLU(device, name=f"{name}.relu1"),
            ]

        in_planes = 64
        for stage_index, (planes, blocks) in enumerate(zip(STAGE_PLANES, stage_sizes)):
            stride = 1 if stage_index == 0 else 2
            for block_index in range(blocks):
                block_stride = stride if block_index == 0 else 1
                block = block_cls(device, in_planes, planes, stride=block_stride,
                                  name=f"{name}.layer{stage_index + 1}.{block_index}",
                                  rng=generator)
                layers.append(block)
                in_planes = planes * block_cls.expansion

        layers += [
            GlobalAvgPool2d(device, name=f"{name}.avgpool"),
            Flatten(device, name=f"{name}.flatten"),
            Linear(device, in_planes, num_classes, name=f"{name}.fc", rng=generator),
        ]
        super().__init__(device, layers, name=name)
        self.depth_name = depth_name
        self.input_shape = (in_channels, input_size, input_size)
        self.num_classes = num_classes


def resnet18(device: Device, **kwargs) -> ResNet:
    """ResNet-18 (BasicBlock, [2, 2, 2, 2])."""
    return ResNet(device, "resnet18", **kwargs)


def resnet34(device: Device, **kwargs) -> ResNet:
    """ResNet-34 (BasicBlock, [3, 4, 6, 3])."""
    return ResNet(device, "resnet34", **kwargs)


def resnet50(device: Device, **kwargs) -> ResNet:
    """ResNet-50 (Bottleneck, [3, 4, 6, 3])."""
    return ResNet(device, "resnet50", **kwargs)


def resnet101(device: Device, **kwargs) -> ResNet:
    """ResNet-101 (Bottleneck, [3, 4, 23, 3])."""
    return ResNet(device, "resnet101", **kwargs)


def resnet152(device: Device, **kwargs) -> ResNet:
    """ResNet-152 (Bottleneck, [3, 8, 36, 3])."""
    return ResNet(device, "resnet152", **kwargs)
