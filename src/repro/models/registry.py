"""Model registry: construct any supported model by name.

The breakdown experiments (Figures 5-7) iterate over model names, so a single
string-keyed factory keeps experiment configuration declarative.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..device.device import Device
from ..errors import ConfigurationError
from .alexnet import AlexNet
from .inception import SimpleInception
from .lenet import LeNet5
from .mlp import MLP, paper_mlp
from .resnet import ResNet
from .vgg import vgg11, vgg16

ModelFactory = Callable[..., object]

_REGISTRY: Dict[str, ModelFactory] = {
    "mlp": lambda device, **kw: MLP(device, **kw),
    "paper_mlp": lambda device, **kw: paper_mlp(device, **kw),
    "lenet5": lambda device, **kw: LeNet5(device, **kw),
    "alexnet": lambda device, **kw: AlexNet(device, **kw),
    "vgg11": lambda device, **kw: vgg11(device, **kw),
    "vgg16": lambda device, **kw: vgg16(device, **kw),
    "inception_small": lambda device, **kw: SimpleInception(device, **kw),
    "resnet18": lambda device, **kw: ResNet(device, "resnet18", **kw),
    "resnet34": lambda device, **kw: ResNet(device, "resnet34", **kw),
    "resnet50": lambda device, **kw: ResNet(device, "resnet50", **kw),
    "resnet101": lambda device, **kw: ResNet(device, "resnet101", **kw),
    "resnet152": lambda device, **kw: ResNet(device, "resnet152", **kw),
}


def available_models() -> List[str]:
    """Names of every registered model."""
    return sorted(_REGISTRY)


def register_model(name: str, factory: ModelFactory, overwrite: bool = False) -> None:
    """Register a custom model factory under ``name``."""
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(f"model '{name}' is already registered")
    _REGISTRY[name] = factory


def build_model(name: str, device: Device, **kwargs):
    """Instantiate a registered model on ``device``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_models())
        raise ConfigurationError(f"unknown model '{name}'; known models: {known}") from None
    return factory(device, **kwargs)
