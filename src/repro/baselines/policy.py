"""Pluggable memory-pressure-reduction policies.

The paper compares swapping against the other families of footprint
reduction — recomputation (gradient checkpointing) and parameter compression
(pruning / quantization).  This module puts every baseline behind one
:class:`MemoryPolicy` interface so that the sweep engine, the report
generator and the CLI treat them uniformly: a policy takes a recorded
:class:`~repro.core.trace.MemoryTrace` and returns a *normalized* summary
dictionary that always contains

``policy``
    The registry name of the policy.
``savings_bytes`` / ``savings_fraction``
    Estimated peak-footprint reduction (absolute and relative).
``overhead_ns``
    Estimated runtime cost of achieving the reduction (0 when free).

plus whatever policy-specific extras the underlying estimator reports.  The
``none`` policy evaluates to ``None`` — no reduction is attempted.

Policies are looked up by name through :func:`get_policy`; the registry is
the single source of truth for the sweep dimension ``swap_policies`` (kept
under its historical name even though it now spans recompute and compression
baselines too).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, Dict, Optional, Tuple

from ..core.ati import compute_access_intervals
from ..core.swap import BandwidthConfig, SwapPlanner
from ..core.trace import MemoryTrace

#: The normalized summary type every policy evaluation produces.
PolicySummary = Dict[str, object]


class MemoryPolicy(ABC):
    """One memory-pressure-reduction strategy, evaluated on a recorded trace."""

    #: Registry name of the policy (set by subclasses).
    name: str = "base"

    #: Name of this policy's executable twin in the closed-loop swap engine
    #: (:data:`repro.swap.EXECUTION_POLICIES`), or ``None`` when the policy
    #: is analysis-only (recompute/compression estimators have no swap-engine
    #: counterpart).  ``scenario.swap = policy.executable_name`` runs the same
    #: strategy for real instead of estimating it.
    executable_name: Optional[str] = None

    def make_executable(self, **kwargs):
        """Instantiate the executable twin for the swap-execution engine.

        Raises ``ValueError`` for analysis-only policies.
        """
        if self.executable_name is None:
            raise ValueError(
                f"policy '{self.name}' is analysis-only and has no executable "
                f"swap-engine counterpart")
        from ..swap import get_execution_policy
        return get_execution_policy(self.executable_name, **kwargs)

    @abstractmethod
    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Evaluate the policy on ``trace`` and return a normalized summary.

        Returns ``None`` when the policy performs no reduction (the ``none``
        baseline), otherwise a dictionary with at least the keys ``policy``,
        ``savings_bytes``, ``savings_fraction`` and ``overhead_ns``.
        """

    def _normalize(self, summary: PolicySummary, savings_bytes: int,
                   savings_fraction: float, overhead_ns: float) -> PolicySummary:
        """Stamp the shared keys onto a policy-specific summary."""
        summary = dict(summary)
        summary["policy"] = self.name
        summary["savings_bytes"] = int(savings_bytes)
        summary["savings_fraction"] = float(savings_fraction)
        summary["overhead_ns"] = float(overhead_ns)
        return summary


class NoPolicy(MemoryPolicy):
    """The do-nothing baseline: the footprint is reported as recorded."""

    name = "none"

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """No reduction is attempted; evaluates to ``None``."""
        return None


class PlannerPolicy(MemoryPolicy):
    """The paper's Eq.-1 swap planner: swap only where the ATI hides the copy."""

    name = "planner"
    executable_name = "planner"

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Plan interval-aware swapping and summarize the chosen plan."""
        bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
        intervals = compute_access_intervals(trace)
        plan = SwapPlanner(bandwidths=bandwidths).plan(trace, intervals)
        summary = plan.summary()
        return self._normalize(summary, plan.savings_bytes, plan.savings_fraction,
                               plan.total_overhead_ns)


class SwapAdvisorPolicy(MemoryPolicy):
    """Size-ranked swapping in the spirit of SwapAdvisor (timing-oblivious)."""

    name = "swap_advisor"
    executable_name = "swap_advisor"

    def __init__(self, top_k: int = 5):
        self.top_k = int(top_k)

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Swap the largest blocks and charge the transfer time the ATIs cannot hide."""
        from .swapping import swap_advisor_style_policy
        result = swap_advisor_style_policy(trace, bandwidths, top_k=self.top_k)
        return self._normalize(result.summary(), result.savings_bytes,
                               result.savings_fraction, result.overhead_ns)


class ZeroOffloadPolicy(MemoryPolicy):
    """Optimizer-state/gradient offload in the spirit of ZeRO-Offload."""

    name = "zero_offload"
    executable_name = "zero_offload"

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Keep optimizer state and gradients on the host, one round trip per step."""
        from .swapping import zero_offload_style_policy
        result = zero_offload_style_policy(trace, bandwidths)
        return self._normalize(result.summary(), result.savings_bytes,
                               result.savings_fraction, result.overhead_ns)


class RecomputePolicy(MemoryPolicy):
    """Gradient checkpointing: discard activations, re-run forward segments."""

    name = "recompute"

    def __init__(self, keep_every: int = 2):
        self.keep_every = int(keep_every)

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Estimate checkpointing every ``keep_every``-th activation."""
        from .recompute import estimate_recompute_plan
        plan = estimate_recompute_plan(trace, keep_every=self.keep_every)
        return self._normalize(plan.summary(), plan.savings_bytes,
                               plan.savings_fraction, plan.recompute_time_overhead_ns)


class PruningPolicy(MemoryPolicy):
    """Weight pruning: remove a fraction of the parameter bytes."""

    name = "pruning"

    def __init__(self, sparsity: float = 0.9):
        self.sparsity = float(sparsity)

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Estimate the total-footprint effect of pruning the weights."""
        from .pruning import estimate_pruning
        estimate = estimate_pruning(trace, sparsity=self.sparsity)
        savings = estimate.peak_bytes_before - estimate.estimated_peak_bytes_after
        return self._normalize(estimate.summary(), savings,
                               estimate.total_reduction_fraction, 0.0)


class QuantizationPolicy(MemoryPolicy):
    """Weight quantization: shrink parameter bytes to ``bits`` per element."""

    name = "quantization"

    def __init__(self, bits: int = 8):
        self.bits = int(bits)

    def evaluate(self, trace: MemoryTrace,
                 bandwidths: Optional[BandwidthConfig] = None) -> Optional[PolicySummary]:
        """Estimate the total-footprint effect of quantizing the weights."""
        from .pruning import estimate_quantization
        estimate = estimate_quantization(trace, bits=self.bits)
        savings = estimate.peak_bytes_before - estimate.estimated_peak_bytes_after
        return self._normalize(estimate.summary(), savings,
                               estimate.total_reduction_fraction, 0.0)


#: Factories for every registered policy, in presentation order.
POLICY_REGISTRY: Dict[str, Callable[[], MemoryPolicy]] = {
    NoPolicy.name: NoPolicy,
    PlannerPolicy.name: PlannerPolicy,
    SwapAdvisorPolicy.name: SwapAdvisorPolicy,
    ZeroOffloadPolicy.name: ZeroOffloadPolicy,
    RecomputePolicy.name: RecomputePolicy,
    PruningPolicy.name: PruningPolicy,
    QuantizationPolicy.name: QuantizationPolicy,
}


def available_policies() -> Tuple[str, ...]:
    """Names of every registered policy, in presentation order."""
    return tuple(POLICY_REGISTRY)


def get_policy(name: str) -> MemoryPolicy:
    """Instantiate a registered policy by name.

    Raises ``ValueError`` with the list of known policies when unknown.
    """
    try:
        factory = POLICY_REGISTRY[name]
    except KeyError:
        known = ", ".join(available_policies())
        raise ValueError(
            f"unknown swap policy '{name}'; known policies: {known}") from None
    return factory()
