"""Reference swapping policies, inspired by the works the paper cites.

These are *policy models*, not full reimplementations: they choose which
blocks to keep off the device and estimate the footprint savings and the
runtime overhead using the same Eq.-1 machinery as the planner, so the three
approaches are comparable on the same trace.

* :func:`swap_advisor_style_policy` — in the spirit of SwapAdvisor (Huang et
  al., ASPLOS'20): swap the largest tensors, ignoring their access timing,
  and pay whatever transfer time their access intervals cannot hide.
* :func:`zero_offload_style_policy` — in the spirit of ZeRO-Offload (Ren et
  al.): keep optimizer state and parameter gradients on the host, paying one
  round trip per training iteration for them.  The policy is *rank-aware*:
  on a data-parallel trace (``n_devices`` in the trace metadata) the host
  copy is partitioned ZeRO-style across the replicas, so each rank only
  transfers its ``1/N`` partition per iteration — the per-device footprint
  savings stay full-size while the per-rank communication shrinks with the
  replica count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.ati import compute_access_intervals
from ..core.events import MemoryCategory
from ..core.swap import BandwidthConfig, swap_round_trip_ns
from ..core.trace import MemoryTrace
from ..units import MIB


@dataclass
class SwapPolicyResult:
    """Outcome of one reference swapping policy on a trace."""

    name: str
    selected_block_ids: List[int]
    swapped_bytes: int
    peak_bytes_before: int
    estimated_peak_bytes_after: int
    overhead_ns: float
    world_size: int = 1
    partition_bytes: Optional[int] = None  # per-rank transfer quantum (ZeRO-style)

    @property
    def savings_bytes(self) -> int:
        """Estimated peak-footprint reduction."""
        return self.peak_bytes_before - self.estimated_peak_bytes_after

    @property
    def savings_fraction(self) -> float:
        """Peak-footprint reduction as a fraction of the original peak."""
        if self.peak_bytes_before == 0:
            return 0.0
        return self.savings_bytes / self.peak_bytes_before

    def summary(self) -> Dict[str, object]:
        """Compact summary used by the comparison experiment."""
        summary: Dict[str, object] = {
            "name": self.name,
            "num_blocks": len(self.selected_block_ids),
            "swapped_bytes": self.swapped_bytes,
            "savings_bytes": self.savings_bytes,
            "savings_fraction": self.savings_fraction,
            "overhead_ns": self.overhead_ns,
        }
        if self.world_size > 1:
            summary["world_size"] = self.world_size
            summary["partition_bytes"] = self.partition_bytes
        return summary


def _block_sizes(trace: MemoryTrace) -> Dict[int, int]:
    """Size of every block that appears in the trace (max size seen per id)."""
    sizes: Dict[int, int] = {}
    for lifetime in trace.lifetimes:
        sizes[lifetime.block_id] = max(sizes.get(lifetime.block_id, 0), lifetime.size)
    return sizes


def _largest_interval_per_block(trace: MemoryTrace) -> Dict[int, int]:
    """Largest access interval (ns) of every block (0 when a block has one access)."""
    largest: Dict[int, int] = {}
    for interval in compute_access_intervals(trace):
        current = largest.get(interval.block_id, 0)
        largest[interval.block_id] = max(current, interval.interval_ns)
    return largest


def swap_advisor_style_policy(trace: MemoryTrace,
                              bandwidths: Optional[BandwidthConfig] = None,
                              top_k: int = 5,
                              min_block_bytes: int = 32 * MIB) -> SwapPolicyResult:
    """Swap the ``top_k`` largest blocks regardless of their access timing."""
    bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
    sizes = _block_sizes(trace)
    largest_intervals = _largest_interval_per_block(trace)
    candidates = sorted(
        ((block_id, size) for block_id, size in sizes.items() if size >= min_block_bytes),
        key=lambda item: item[1], reverse=True,
    )[:top_k]

    peak_before = trace.peak_live_bytes()
    swapped = sum(size for _, size in candidates)
    overhead = 0.0
    for block_id, size in candidates:
        round_trip = swap_round_trip_ns(size, bandwidths)
        hidden = largest_intervals.get(block_id, 0)
        overhead += max(0.0, round_trip - hidden)
    return SwapPolicyResult(
        name="swap_advisor_style",
        selected_block_ids=[block_id for block_id, _ in candidates],
        swapped_bytes=swapped,
        peak_bytes_before=peak_before,
        estimated_peak_bytes_after=max(0, peak_before - swapped),
        overhead_ns=overhead,
    )


def zero_offload_style_policy(trace: MemoryTrace,
                              bandwidths: Optional[BandwidthConfig] = None) -> SwapPolicyResult:
    """Keep optimizer state and parameter gradients on the host (rank-aware).

    The offloaded bytes are absent from the device footprint; every training
    iteration pays a round trip for them (gradients out, updated values
    back), which is the overhead ZeRO-Offload hides behind CPU compute but a
    synchronous implementation would expose.

    On a data-parallel trace (``n_devices > 1`` in the trace metadata) the
    policy evaluates the rank-0 replica and partitions the host copy across
    the ranks the way ZeRO-Offload shards its optimizer state: every replica
    still frees its *full* local optimizer-state/gradient footprint (the
    per-device savings), but per iteration it only moves its ``1/N``
    partition, so the exposed transfer time shrinks with the replica count
    instead of being a flat, cluster-size-oblivious discount.
    """
    bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
    world_size = max(1, int(trace.metadata.get("n_devices", 1) or 1))
    rank_trace = trace.for_rank(0) if world_size > 1 else trace
    offload_categories = (MemoryCategory.OPTIMIZER_STATE, MemoryCategory.PARAMETER_GRADIENT)
    offloaded: Dict[int, int] = {}
    for lifetime in rank_trace.lifetimes:
        if lifetime.category in offload_categories:
            offloaded[lifetime.block_id] = max(offloaded.get(lifetime.block_id, 0),
                                               lifetime.size)
    swapped = sum(offloaded.values())
    partition = -(-swapped // world_size)  # ceil: each rank's shard of the host copy
    iterations = max(1, len(rank_trace.iteration_marks))
    overhead = iterations * swap_round_trip_ns(partition, bandwidths)
    peak_before = rank_trace.peak_live_bytes()
    return SwapPolicyResult(
        name="zero_offload_style",
        selected_block_ids=sorted(offloaded),
        swapped_bytes=swapped,
        peak_bytes_before=peak_before,
        estimated_peak_bytes_after=max(0, peak_before - swapped),
        overhead_ns=overhead,
        world_size=world_size,
        partition_bytes=partition,
    )
