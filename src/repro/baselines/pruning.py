"""Weight pruning / quantization footprint estimator.

The paper argues (from the Figure-5 breakdown) that "weight pruning or
quantization techniques are not efficient for reducing the memory pressures
of DNN training" because parameters are a small fraction of the footprint.
This estimator quantifies that argument on a recorded trace: given a pruning
ratio or a quantized bit width applied to the parameter bytes, how much does
the *total* training footprint actually shrink?
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.events import MemoryCategory, MemoryEventKind
from ..core.trace import MemoryTrace


@dataclass
class CompressionEstimate:
    """Effect of compressing parameters on the total training footprint."""

    technique: str
    parameter_bytes_before: int
    parameter_bytes_after: int
    peak_bytes_before: int
    estimated_peak_bytes_after: int

    @property
    def parameter_reduction_fraction(self) -> float:
        """Fraction of the parameter bytes removed."""
        if self.parameter_bytes_before == 0:
            return 0.0
        return 1.0 - self.parameter_bytes_after / self.parameter_bytes_before

    @property
    def total_reduction_fraction(self) -> float:
        """Fraction of the *total* footprint removed — the paper's point."""
        if self.peak_bytes_before == 0:
            return 0.0
        return 1.0 - self.estimated_peak_bytes_after / self.peak_bytes_before

    def summary(self) -> Dict[str, object]:
        """Compact summary for reports."""
        return {
            "technique": self.technique,
            "parameter_reduction_fraction": self.parameter_reduction_fraction,
            "total_reduction_fraction": self.total_reduction_fraction,
            "peak_bytes_before": self.peak_bytes_before,
            "peak_bytes_after": self.estimated_peak_bytes_after,
        }


def _peak_parameter_bytes(trace: MemoryTrace) -> int:
    """Bytes of parameter-bucket blocks live at the footprint peak."""
    parameter_categories = (MemoryCategory.PARAMETER, MemoryCategory.OPTIMIZER_STATE)
    live_parameters = 0
    live_total = 0
    peak_total = -1
    parameters_at_peak = 0
    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            live_total += event.size
            if event.category in parameter_categories:
                live_parameters += event.size
        elif event.kind is MemoryEventKind.FREE:
            live_total -= event.size
            if event.category in parameter_categories:
                live_parameters -= event.size
        else:
            continue
        if live_total > peak_total:
            peak_total = live_total
            parameters_at_peak = live_parameters
    return max(0, parameters_at_peak)


def estimate_pruning(trace: MemoryTrace, sparsity: float = 0.9) -> CompressionEstimate:
    """Estimate the footprint effect of pruning ``sparsity`` of the weights."""
    if not 0.0 <= sparsity <= 1.0:
        raise ValueError("sparsity must be in [0, 1]")
    parameter_bytes = _peak_parameter_bytes(trace)
    removed = int(parameter_bytes * sparsity)
    peak_before = trace.peak_live_bytes()
    return CompressionEstimate(
        technique=f"pruning(sparsity={sparsity:.0%})",
        parameter_bytes_before=parameter_bytes,
        parameter_bytes_after=parameter_bytes - removed,
        peak_bytes_before=peak_before,
        estimated_peak_bytes_after=max(0, peak_before - removed),
    )


def estimate_quantization(trace: MemoryTrace, bits: int = 8) -> CompressionEstimate:
    """Estimate the footprint effect of quantizing float32 weights to ``bits`` bits."""
    if bits <= 0 or bits > 32:
        raise ValueError("bits must be in (0, 32]")
    parameter_bytes = _peak_parameter_bytes(trace)
    after = int(parameter_bytes * bits / 32.0)
    peak_before = trace.peak_live_bytes()
    return CompressionEstimate(
        technique=f"quantization({bits}-bit)",
        parameter_bytes_before=parameter_bytes,
        parameter_bytes_after=after,
        peak_bytes_before=peak_before,
        estimated_peak_bytes_after=max(0, peak_before - (parameter_bytes - after)),
    )
