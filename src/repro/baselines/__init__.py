"""Reference memory-pressure-reduction policies used for comparison.

Every baseline — swapping variants, recomputation and parameter
compression — is exposed both as its original estimator function and behind
the uniform :class:`~repro.baselines.policy.MemoryPolicy` interface, so the
sweep engine and the report generator can treat ``swap_advisor``,
``recompute`` and ``pruning`` as interchangeable points on one axis.
"""

from .policy import (
    MemoryPolicy,
    NoPolicy,
    PlannerPolicy,
    POLICY_REGISTRY,
    PolicySummary,
    PruningPolicy,
    QuantizationPolicy,
    RecomputePolicy,
    SwapAdvisorPolicy,
    ZeroOffloadPolicy,
    available_policies,
    get_policy,
)
from .pruning import CompressionEstimate, estimate_pruning, estimate_quantization
from .recompute import RecomputePlan, estimate_recompute_plan
from .swapping import SwapPolicyResult, swap_advisor_style_policy, zero_offload_style_policy

__all__ = [
    "CompressionEstimate",
    "MemoryPolicy",
    "NoPolicy",
    "POLICY_REGISTRY",
    "PlannerPolicy",
    "PolicySummary",
    "PruningPolicy",
    "QuantizationPolicy",
    "RecomputePlan",
    "RecomputePolicy",
    "SwapAdvisorPolicy",
    "SwapPolicyResult",
    "ZeroOffloadPolicy",
    "available_policies",
    "estimate_pruning",
    "estimate_quantization",
    "estimate_recompute_plan",
    "get_policy",
    "swap_advisor_style_policy",
    "zero_offload_style_policy",
]
