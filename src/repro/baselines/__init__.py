"""Reference memory-pressure-reduction policies used for comparison."""

from .pruning import CompressionEstimate, estimate_pruning, estimate_quantization
from .recompute import RecomputePlan, estimate_recompute_plan
from .swapping import SwapPolicyResult, swap_advisor_style_policy, zero_offload_style_policy

__all__ = [
    "CompressionEstimate",
    "RecomputePlan",
    "SwapPolicyResult",
    "estimate_pruning",
    "estimate_quantization",
    "estimate_recompute_plan",
    "swap_advisor_style_policy",
    "zero_offload_style_policy",
]
