"""Gradient-checkpointing (recomputation) estimator.

An alternative to swapping for reducing the intermediate-results footprint is
to discard activations in the forward pass and recompute them during
backward.  This estimator works directly on the recorded trace: it treats the
saved activations (category ``activation``) as discardable, keeps only every
k-th one as a checkpoint and estimates both the footprint reduction and the
extra compute (re-running the forward segments between checkpoints).

It is used alongside the swapping baselines to put the paper's "outliers are
the focus of attention" conclusion in context: recomputation attacks the same
intermediate-results bytes from the compute side instead of the transfer
side.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..core.events import MemoryCategory, MemoryEventKind
from ..core.trace import KIND_CODES, MemoryTrace

_WRITE_CODE = KIND_CODES[MemoryEventKind.WRITE]


@dataclass
class RecomputePlan:
    """Estimated effect of checkpointing every ``keep_every``-th activation."""

    keep_every: int
    activation_bytes_total: int
    activation_bytes_kept: int
    activation_bytes_discarded: int
    peak_bytes_before: int
    estimated_peak_bytes_after: int
    recompute_time_overhead_ns: int

    @property
    def savings_bytes(self) -> int:
        """Estimated peak-footprint reduction."""
        return self.peak_bytes_before - self.estimated_peak_bytes_after

    @property
    def savings_fraction(self) -> float:
        """Peak reduction as a fraction of the original peak."""
        if self.peak_bytes_before == 0:
            return 0.0
        return self.savings_bytes / self.peak_bytes_before

    def summary(self) -> Dict[str, object]:
        """Compact summary for reports."""
        return {
            "keep_every": self.keep_every,
            "activation_bytes_total": self.activation_bytes_total,
            "activation_bytes_discarded": self.activation_bytes_discarded,
            "savings_bytes": self.savings_bytes,
            "savings_fraction": self.savings_fraction,
            "recompute_time_overhead_ns": self.recompute_time_overhead_ns,
        }


def per_block_compute_times(trace: MemoryTrace) -> Dict[int, int]:
    """Per-block producer compute times recovered from a recorded trace.

    An activation's producing kernel closes with the block's first *write*
    after its malloc, and the simulated clock only advances across kernels
    and transfers — so the span between that first write and the immediately
    preceding event in the global stream is the producer's compute time.
    This is the offline analog of the rule the swap executor uses to learn
    replay costs online, so in steady state the two agree exactly.

    Blocks whose first post-malloc access is a read (e.g. parameters written
    during unprofiled setup) and later outputs of multi-output kernels
    (which get a zero span) are omitted: they are not rematerializable by
    producer replay.
    """
    cols = trace.columns()
    order = np.argsort(cols.timestamp_ns, kind="stable")
    kind = cols.kind_code[order]
    timestamp = cols.timestamp_ns[order]
    block = cols.block_id[order]
    is_malloc = np.asarray(cols.is_malloc)[order]
    is_write = np.asarray(cols.kind_code == _WRITE_CODE)[order]

    compute_ns: Dict[int, int] = {}
    pending: set = set()
    previous_ns = None
    for index in range(kind.size):
        block_id = int(block[index])
        if is_malloc[index]:
            pending.add(block_id)
        elif block_id in pending and is_write[index]:
            pending.discard(block_id)
            if previous_ns is not None:
                span = int(timestamp[index]) - previous_ns
                if span > 0:
                    compute_ns[block_id] = span
        elif block_id in pending:
            # First touch was a read: produced outside the recorded stream.
            pending.discard(block_id)
        previous_ns = int(timestamp[index])
    return compute_ns


def estimate_recompute_plan(trace: MemoryTrace, keep_every: int = 2,
                            forward_fraction_of_iteration: float = 0.33) -> RecomputePlan:
    """Estimate checkpointing on a recorded trace.

    Parameters
    ----------
    trace:
        The profiled training trace.
    keep_every:
        Keep one activation out of every ``keep_every`` as a checkpoint
        (``keep_every=2`` halves the resident activations).
    forward_fraction_of_iteration:
        Legacy fallback: fraction of an iteration assumed spent in the
        forward pass.  The recompute overhead is normally the *sum of the
        recorded producer compute times* of the discarded activations (see
        :func:`per_block_compute_times`); the first-order
        fraction-of-iteration model is used only when the trace carries no
        usable timing (e.g. a hand-built trace with no write events).
    """
    if keep_every < 1:
        raise ValueError("keep_every must be at least 1")
    activation_lifetimes = [lifetime for lifetime in trace.lifetimes
                            if lifetime.category is MemoryCategory.ACTIVATION]
    # Consider steady-state iterations only (iteration >= 1) to avoid counting
    # the warm-up allocations twice.
    steady = [lifetime for lifetime in activation_lifetimes if lifetime.iteration >= 1]
    reference = steady if steady else activation_lifetimes
    iterations = {lifetime.iteration for lifetime in reference}
    per_iteration = max(1, len(iterations))
    ordered = sorted(reference, key=lambda item: item.malloc_ns)
    total = sum(lifetime.size for lifetime in reference) // per_iteration
    kept = sum(lifetime.size for index, lifetime in enumerate(ordered)
               if index % keep_every == 0) // per_iteration
    discarded = max(0, total - kept)

    # Recompute cost: replaying the producers of the discarded activations.
    # The per-block producer times come straight from the recorded timeline;
    # only a trace with no usable kernel timing falls back to the first-order
    # fraction-of-iteration model.
    compute_ns = per_block_compute_times(trace)
    discarded_lifetimes = [lifetime for index, lifetime in enumerate(ordered)
                           if index % keep_every != 0]
    if compute_ns and any(l.block_id in compute_ns for l in discarded_lifetimes):
        recompute_overhead = sum(compute_ns.get(l.block_id, 0)
                                 for l in discarded_lifetimes) // per_iteration
    else:
        durations = [mark.duration_ns() for mark in trace.iteration_marks
                     if mark.end_ns is not None]
        mean_iteration_ns = int(sum(durations) / len(durations)) if durations else 0
        recompute_overhead = int(mean_iteration_ns * forward_fraction_of_iteration
                                 * (1.0 - 1.0 / keep_every))

    peak_before = trace.peak_live_bytes()
    return RecomputePlan(
        keep_every=keep_every,
        activation_bytes_total=total,
        activation_bytes_kept=min(kept, total),
        activation_bytes_discarded=discarded,
        peak_bytes_before=peak_before,
        estimated_peak_bytes_after=max(0, peak_before - discarded),
        recompute_time_overhead_ns=recompute_overhead,
    )
