"""Memory-behavior event primitives.

The paper pinpoints four *memory behaviors* of each device memory block:
``malloc``, ``free``, ``read`` and ``write``.  This module defines the event
record emitted by the instrumented allocator / tensor storage, plus the
per-block lifetime record that the analyses consume.

These types are deliberately dependency-free so that both the simulated
device (:mod:`repro.device`) and the analyses (:mod:`repro.core`) can share
them without import cycles.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class MemoryEventKind(enum.Enum):
    """The four memory behaviors tracked by the paper, plus runtime events.

    ``SEGMENT_ALLOC`` / ``SEGMENT_FREE`` correspond to the underlying
    ``cudaMalloc`` / ``cudaFree`` calls issued by the caching allocator when
    it grows or shrinks its reserved pool; they are recorded for completeness
    (fragmentation analysis) but are not counted as block-level behaviors.

    ``SWAP_OUT`` / ``SWAP_IN`` are emitted by the swap-execution engine
    (:mod:`repro.swap`) when a block is evicted to host memory or brought
    back to the device.  They are *runtime actions on* a block, not behaviors
    *of* the workload, so they are excluded from the paper's block-behavior
    set: ATI pairing, the occupation breakdown and the iterative-pattern
    analysis all ignore them, while the residency accounting
    (:meth:`~repro.core.trace.MemoryTrace.resident_bytes_series`) is built
    from them.  New kinds append at the end so the stable integer codes of
    the column store never shift.

    ``RECOMPUTE_DROP`` / ``RECOMPUTE`` are the rematerialization twins of the
    swap pair: the unified eviction engine discards an activation without any
    transfer (``recompute_drop``) and later replays its producer's compute
    cost to bring it back (``recompute``).  Like swap traffic they are
    runtime actions, excluded from the block-behavior set but included in the
    residency accounting.
    """

    MALLOC = "malloc"
    FREE = "free"
    READ = "read"
    WRITE = "write"
    SEGMENT_ALLOC = "segment_alloc"
    SEGMENT_FREE = "segment_free"
    SWAP_OUT = "swap_out"
    SWAP_IN = "swap_in"
    RECOMPUTE_DROP = "recompute_drop"
    RECOMPUTE = "recompute"

    @property
    def is_access(self) -> bool:
        """Whether this event is a data access (read or write)."""
        return self in (MemoryEventKind.READ, MemoryEventKind.WRITE)

    @property
    def is_block_behavior(self) -> bool:
        """Whether this event is one of the paper's four block-level behaviors."""
        return self in (
            MemoryEventKind.MALLOC,
            MemoryEventKind.FREE,
            MemoryEventKind.READ,
            MemoryEventKind.WRITE,
        )

    @property
    def is_swap(self) -> bool:
        """Whether this event is swap traffic emitted by the execution engine."""
        return self in (MemoryEventKind.SWAP_OUT, MemoryEventKind.SWAP_IN)

    @property
    def is_recompute(self) -> bool:
        """Whether this event is rematerialization traffic (drop or replay)."""
        return self in (MemoryEventKind.RECOMPUTE_DROP, MemoryEventKind.RECOMPUTE)


class MemoryCategory(enum.Enum):
    """Fine-grained classification of what a memory block stores.

    The paper (following LeCun et al.) groups device memory contents into
    three coarse buckets: *input data*, *parameters* and *intermediate
    results*.  We track a finer classification at allocation time and map it
    down to the paper's buckets via :meth:`paper_bucket`.
    """

    INPUT = "input"
    LABEL = "label"
    PARAMETER = "parameter"
    PARAMETER_GRADIENT = "parameter_gradient"
    OPTIMIZER_STATE = "optimizer_state"
    ACTIVATION = "activation"
    ACTIVATION_GRADIENT = "activation_gradient"
    WORKSPACE = "workspace"
    UNKNOWN = "unknown"

    def paper_bucket(self) -> str:
        """Map the fine category onto the paper's three-way breakdown."""
        if self in (MemoryCategory.INPUT, MemoryCategory.LABEL):
            return "input data"
        if self in (MemoryCategory.PARAMETER, MemoryCategory.OPTIMIZER_STATE):
            return "parameters"
        return "intermediate results"


#: Order in which the paper's buckets are reported in figures 5-7.
PAPER_BUCKETS = ("input data", "parameters", "intermediate results")


@dataclass(frozen=True)
class MemoryEvent:
    """A single memory behavior observed on the device.

    Attributes
    ----------
    event_id:
        Monotonically increasing index assigned by the recorder.  Figure 4 of
        the paper plots behaviors against this index.
    kind:
        Which behavior occurred.
    timestamp_ns:
        Simulated device time of the behavior, in nanoseconds.
    block_id:
        Identity of the device memory block.  Block identities are stable
        across caching-allocator reuse of the same underlying block, which is
        what lets access-time intervals span allocator round trips.
    address:
        Device virtual address of the block at the time of the event.
    size:
        Size of the block in bytes (for accesses, the number of bytes touched).
    category:
        Content category of the block at the time of the event.
    tag:
        Human-readable label (e.g. ``"fc1.weight"`` or ``"relu_out"``).
    iteration:
        Training iteration during which the behavior happened (-1 if outside
        a training loop).
    op:
        Name of the operator that triggered the access (empty for allocator
        events).
    device_rank:
        Data-parallel rank of the device the behavior happened on (0 for
        single-device runs; stamped by the trace merge for multi-device
        sessions).
    """

    event_id: int
    kind: MemoryEventKind
    timestamp_ns: int
    block_id: int
    address: int
    size: int
    category: MemoryCategory = MemoryCategory.UNKNOWN
    tag: str = ""
    iteration: int = -1
    op: str = ""
    device_rank: int = 0

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the event to a JSON-friendly dictionary."""
        return {
            "event_id": self.event_id,
            "kind": self.kind.value,
            "timestamp_ns": self.timestamp_ns,
            "block_id": self.block_id,
            "address": self.address,
            "size": self.size,
            "category": self.category.value,
            "tag": self.tag,
            "iteration": self.iteration,
            "op": self.op,
            "device_rank": self.device_rank,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "MemoryEvent":
        """Reconstruct an event from :meth:`to_dict` output."""
        return MemoryEvent(
            event_id=int(data["event_id"]),
            kind=MemoryEventKind(data["kind"]),
            timestamp_ns=int(data["timestamp_ns"]),
            block_id=int(data["block_id"]),
            address=int(data["address"]),
            size=int(data["size"]),
            category=MemoryCategory(data.get("category", "unknown")),
            tag=str(data.get("tag", "")),
            iteration=int(data.get("iteration", -1)),
            op=str(data.get("op", "")),
            device_rank=int(data.get("device_rank", 0)),
        )


@dataclass
class BlockLifetime:
    """One allocation→free span of a device memory block.

    The Gantt chart of Figure 2 draws one rectangle per lifetime: its width is
    ``free_ns - malloc_ns`` and its height is ``size``.
    """

    block_id: int
    address: int
    size: int
    category: MemoryCategory
    tag: str
    malloc_ns: int
    free_ns: Optional[int] = None
    iteration: int = -1
    access_count: int = 0
    device_rank: int = 0

    @property
    def is_live(self) -> bool:
        """Whether the block has not been freed yet."""
        return self.free_ns is None

    def duration_ns(self, now_ns: Optional[int] = None) -> int:
        """Lifetime length in nanoseconds (up to ``now_ns`` if still live)."""
        end = self.free_ns if self.free_ns is not None else now_ns
        if end is None:
            raise ValueError("block is still live; pass now_ns to measure it")
        return max(0, end - self.malloc_ns)

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the lifetime to a JSON-friendly dictionary."""
        return {
            "block_id": self.block_id,
            "address": self.address,
            "size": self.size,
            "category": self.category.value,
            "tag": self.tag,
            "malloc_ns": self.malloc_ns,
            "free_ns": self.free_ns,
            "iteration": self.iteration,
            "access_count": self.access_count,
            "device_rank": self.device_rank,
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "BlockLifetime":
        """Reconstruct a lifetime from :meth:`to_dict` output."""
        return BlockLifetime(
            block_id=int(data["block_id"]),
            address=int(data["address"]),
            size=int(data["size"]),
            category=MemoryCategory(data.get("category", "unknown")),
            tag=str(data.get("tag", "")),
            malloc_ns=int(data["malloc_ns"]),
            free_ns=None if data.get("free_ns") is None else int(data["free_ns"]),
            iteration=int(data.get("iteration", -1)),
            access_count=int(data.get("access_count", 0)),
            device_rank=int(data.get("device_rank", 0)),
        )


@dataclass
class IterationMark:
    """Marks the device-time span of one training iteration.

    The recorder stores one mark per iteration so that analyses (iterative
    pattern detection, Gantt chart segmentation) can attribute behaviors to
    iterations without re-deriving boundaries from the event stream.
    """

    index: int
    start_ns: int
    end_ns: Optional[int] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def duration_ns(self) -> int:
        """Length of the iteration in nanoseconds (0 if still open)."""
        if self.end_ns is None:
            return 0
        return self.end_ns - self.start_ns

    def to_dict(self) -> Dict[str, Any]:
        """Serialize the mark to a JSON-friendly dictionary."""
        return {
            "index": self.index,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "meta": dict(self.meta),
        }

    @staticmethod
    def from_dict(data: Dict[str, Any]) -> "IterationMark":
        """Reconstruct a mark from :meth:`to_dict` output."""
        return IterationMark(
            index=int(data["index"]),
            start_ns=int(data["start_ns"]),
            end_ns=None if data.get("end_ns") is None else int(data["end_ns"]),
            meta=dict(data.get("meta", {})),
        )
