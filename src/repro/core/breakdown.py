"""Device memory occupation breakdown (Figures 5, 6 and 7).

Following LeCun et al., the paper splits device memory contents into three
buckets — *input data*, *parameters* and *intermediate results* — and reports
each bucket's share of the footprint for several DNNs, batch sizes and layer
structures.  Here the breakdown is computed from the recorded trace: we replay
the allocation/free events, find the instant of peak occupancy and attribute
the bytes live at that instant to their buckets (a per-category peak view is
also provided).

The replay is vectorized over the trace's column store
(:meth:`~repro.core.trace.MemoryTrace.columns`): malloc/free events become
``+size``/``-size`` deltas, one cumulative sum over the delta column locates
the peak instant, and per-category/per-bucket attribution takes one masked
cumulative sum per category that appears in the trace (at most nine) — no
Python-level event loop, which is what lets the sweep engine compute a
breakdown for every scenario it runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..units import format_bytes
from .events import PAPER_BUCKETS
from .trace import CATEGORY_FROM_CODE, MemoryTrace


@dataclass
class OccupationBreakdown:
    """Bytes per bucket at the moment of peak device occupancy."""

    label: str
    peak_time_ns: int
    total_bytes: int
    bucket_bytes: Dict[str, int]
    category_bytes: Dict[str, int]
    category_peak_bytes: Dict[str, int]

    def fraction(self, bucket: str) -> float:
        """Share of the footprint attributed to one paper bucket at the peak."""
        if self.total_bytes == 0:
            return 0.0
        return self.bucket_bytes.get(bucket, 0) / self.total_bytes

    def fractions(self) -> Dict[str, float]:
        """Share of every paper bucket at the peak."""
        return {bucket: self.fraction(bucket) for bucket in PAPER_BUCKETS}

    def to_dict(self) -> Dict[str, object]:
        """Serialize for figure-data export."""
        return {
            "label": self.label,
            "peak_time_ns": self.peak_time_ns,
            "total_bytes": self.total_bytes,
            "bucket_bytes": dict(self.bucket_bytes),
            "bucket_fractions": self.fractions(),
            "category_bytes": dict(self.category_bytes),
            "category_peak_bytes": dict(self.category_peak_bytes),
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "OccupationBreakdown":
        """Reconstruct a breakdown from :meth:`to_dict` output (sweep-cache path)."""
        return OccupationBreakdown(
            label=str(data.get("label", "")),
            peak_time_ns=int(data.get("peak_time_ns", 0)),
            total_bytes=int(data.get("total_bytes", 0)),
            bucket_bytes={str(k): int(v)
                          for k, v in dict(data.get("bucket_bytes", {})).items()},
            category_bytes={str(k): int(v)
                            for k, v in dict(data.get("category_bytes", {})).items()},
            category_peak_bytes={str(k): int(v)
                                 for k, v in dict(data.get("category_peak_bytes", {})).items()},
        )

    def format_row(self) -> str:
        """One human-readable row: label, total and per-bucket shares."""
        shares = ", ".join(
            f"{bucket}: {format_bytes(self.bucket_bytes.get(bucket, 0))} "
            f"({100.0 * self.fraction(bucket):.1f}%)"
            for bucket in PAPER_BUCKETS
        )
        return f"{self.label}: total {format_bytes(self.total_bytes)} | {shares}"


def occupation_breakdown(trace: MemoryTrace, label: str = "") -> OccupationBreakdown:
    """Compute the paper's three-way breakdown at the point of peak occupancy.

    Vectorized: the live-bytes walk is a cumulative sum over the malloc/free
    event columns; the peak instant is the first maximum of the total, and the
    per-category attribution is one cumulative sum per category that appears
    in the trace (at most nine).
    """
    trace.require_events()
    cols = trace.columns()
    mask = cols.is_malloc | cols.is_free
    bucket_bytes: Dict[str, int] = {bucket: 0 for bucket in PAPER_BUCKETS}
    if not mask.any():
        return OccupationBreakdown(label=label, peak_time_ns=0, total_bytes=0,
                                   bucket_bytes=bucket_bytes, category_bytes={},
                                   category_peak_bytes={})

    deltas = cols.live_deltas()[mask]
    categories = cols.category_code[mask]
    timestamps = cols.timestamp_ns[mask]

    live_total = np.cumsum(deltas)
    peak_index = int(np.argmax(live_total))          # first occurrence of the max
    peak_total = int(live_total[peak_index])
    peak_time = int(timestamps[peak_index])

    category_bytes: Dict[str, int] = {}
    category_peak_bytes: Dict[str, int] = {}
    for code in np.unique(categories):
        category = CATEGORY_FROM_CODE[int(code)]
        live = np.cumsum(np.where(categories == code, deltas, 0))
        live_at_peak = int(live[peak_index])
        if live_at_peak > 0:
            category_bytes[category.value] = live_at_peak
            bucket_bytes[category.paper_bucket()] += live_at_peak
        running_peak = int(live.max())
        if running_peak > 0:
            category_peak_bytes[category.value] = running_peak

    return OccupationBreakdown(
        label=label,
        peak_time_ns=peak_time,
        total_bytes=max(0, peak_total),
        bucket_bytes=bucket_bytes,
        category_bytes=category_bytes,
        category_peak_bytes=category_peak_bytes,
    )


@dataclass
class BreakdownSeries:
    """A family of breakdowns indexed by a swept parameter (batch size, depth, ...)."""

    parameter_name: str
    entries: List[Tuple[object, OccupationBreakdown]] = field(default_factory=list)

    def add(self, parameter_value: object, breakdown: OccupationBreakdown) -> None:
        """Append one sweep point."""
        self.entries.append((parameter_value, breakdown))

    def fractions_table(self) -> List[Dict[str, object]]:
        """Rows of ``{parameter, total_bytes, <bucket fractions>}`` for reporting."""
        rows = []
        for parameter_value, breakdown in self.entries:
            row: Dict[str, object] = {
                self.parameter_name: parameter_value,
                "total_bytes": breakdown.total_bytes,
            }
            row.update({bucket: breakdown.fraction(bucket) for bucket in PAPER_BUCKETS})
            rows.append(row)
        return rows

    def trend(self, bucket: str) -> List[float]:
        """The bucket's fraction across the sweep, in sweep order."""
        return [breakdown.fraction(bucket) for _, breakdown in self.entries]

    def is_monotonic_increasing(self, bucket: str, tolerance: float = 0.02) -> bool:
        """Whether the bucket's share grows (within tolerance) along the sweep."""
        values = self.trend(bucket)
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    def is_monotonic_decreasing(self, bucket: str, tolerance: float = 0.02) -> bool:
        """Whether the bucket's share shrinks (within tolerance) along the sweep."""
        values = self.trend(bucket)
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def model_state_bytes(model, optimizer=None) -> Dict[str, int]:
    """Static (trace-free) accounting of a model's persistent device bytes.

    Returns parameter, gradient (same size as parameters once allocated),
    buffer and optimizer-state byte counts — the "parameters" side of the
    breakdown that does not depend on batch size.
    """
    parameter_bytes = model.parameter_bytes()
    buffer_bytes = model.buffer_bytes()
    optimizer_bytes = optimizer.state_bytes() if optimizer is not None else 0
    return {
        "parameters": parameter_bytes,
        "gradients": parameter_bytes,
        "buffers": buffer_bytes,
        "optimizer_state": optimizer_bytes,
    }
