"""Device memory occupation breakdown (Figures 5, 6 and 7).

Following LeCun et al., the paper splits device memory contents into three
buckets — *input data*, *parameters* and *intermediate results* — and reports
each bucket's share of the footprint for several DNNs, batch sizes and layer
structures.  Here the breakdown is computed from the recorded trace: we replay
the allocation/free events, find the instant of peak occupancy and attribute
the bytes live at that instant to their buckets (a per-category peak view is
also provided).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..units import format_bytes
from .events import MemoryCategory, MemoryEventKind, PAPER_BUCKETS
from .trace import MemoryTrace


@dataclass
class OccupationBreakdown:
    """Bytes per bucket at the moment of peak device occupancy."""

    label: str
    peak_time_ns: int
    total_bytes: int
    bucket_bytes: Dict[str, int]
    category_bytes: Dict[str, int]
    category_peak_bytes: Dict[str, int]

    def fraction(self, bucket: str) -> float:
        """Share of the footprint attributed to one paper bucket at the peak."""
        if self.total_bytes == 0:
            return 0.0
        return self.bucket_bytes.get(bucket, 0) / self.total_bytes

    def fractions(self) -> Dict[str, float]:
        """Share of every paper bucket at the peak."""
        return {bucket: self.fraction(bucket) for bucket in PAPER_BUCKETS}

    def to_dict(self) -> Dict[str, object]:
        """Serialize for figure-data export."""
        return {
            "label": self.label,
            "peak_time_ns": self.peak_time_ns,
            "total_bytes": self.total_bytes,
            "bucket_bytes": dict(self.bucket_bytes),
            "bucket_fractions": self.fractions(),
            "category_bytes": dict(self.category_bytes),
            "category_peak_bytes": dict(self.category_peak_bytes),
        }

    def format_row(self) -> str:
        """One human-readable row: label, total and per-bucket shares."""
        shares = ", ".join(
            f"{bucket}: {format_bytes(self.bucket_bytes.get(bucket, 0))} "
            f"({100.0 * self.fraction(bucket):.1f}%)"
            for bucket in PAPER_BUCKETS
        )
        return f"{self.label}: total {format_bytes(self.total_bytes)} | {shares}"


def occupation_breakdown(trace: MemoryTrace, label: str = "") -> OccupationBreakdown:
    """Compute the paper's three-way breakdown at the point of peak occupancy."""
    trace.require_events()
    live_by_category: Dict[MemoryCategory, int] = {}
    live_total = 0
    peak_total = -1
    peak_time = 0
    peak_by_category: Dict[MemoryCategory, int] = {}
    running_peak_by_category: Dict[MemoryCategory, int] = {}

    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            live_by_category[event.category] = live_by_category.get(event.category, 0) + event.size
            live_total += event.size
        elif event.kind is MemoryEventKind.FREE:
            live_by_category[event.category] = live_by_category.get(event.category, 0) - event.size
            live_total -= event.size
        else:
            continue
        for category, size in live_by_category.items():
            if size > running_peak_by_category.get(category, 0):
                running_peak_by_category[category] = size
        if live_total > peak_total:
            peak_total = live_total
            peak_time = event.timestamp_ns
            peak_by_category = dict(live_by_category)

    bucket_bytes: Dict[str, int] = {bucket: 0 for bucket in PAPER_BUCKETS}
    category_bytes: Dict[str, int] = {}
    for category, size in peak_by_category.items():
        if size <= 0:
            continue
        category_bytes[category.value] = size
        bucket_bytes[category.paper_bucket()] += size

    return OccupationBreakdown(
        label=label,
        peak_time_ns=peak_time,
        total_bytes=max(0, peak_total),
        bucket_bytes=bucket_bytes,
        category_bytes=category_bytes,
        category_peak_bytes={category.value: size
                             for category, size in running_peak_by_category.items() if size > 0},
    )


@dataclass
class BreakdownSeries:
    """A family of breakdowns indexed by a swept parameter (batch size, depth, ...)."""

    parameter_name: str
    entries: List[Tuple[object, OccupationBreakdown]] = field(default_factory=list)

    def add(self, parameter_value: object, breakdown: OccupationBreakdown) -> None:
        """Append one sweep point."""
        self.entries.append((parameter_value, breakdown))

    def fractions_table(self) -> List[Dict[str, object]]:
        """Rows of ``{parameter, total_bytes, <bucket fractions>}`` for reporting."""
        rows = []
        for parameter_value, breakdown in self.entries:
            row: Dict[str, object] = {
                self.parameter_name: parameter_value,
                "total_bytes": breakdown.total_bytes,
            }
            row.update({bucket: breakdown.fraction(bucket) for bucket in PAPER_BUCKETS})
            rows.append(row)
        return rows

    def trend(self, bucket: str) -> List[float]:
        """The bucket's fraction across the sweep, in sweep order."""
        return [breakdown.fraction(bucket) for _, breakdown in self.entries]

    def is_monotonic_increasing(self, bucket: str, tolerance: float = 0.02) -> bool:
        """Whether the bucket's share grows (within tolerance) along the sweep."""
        values = self.trend(bucket)
        return all(b >= a - tolerance for a, b in zip(values, values[1:]))

    def is_monotonic_decreasing(self, bucket: str, tolerance: float = 0.02) -> bool:
        """Whether the bucket's share shrinks (within tolerance) along the sweep."""
        values = self.trend(bucket)
        return all(b <= a + tolerance for a, b in zip(values, values[1:]))


def model_state_bytes(model, optimizer=None) -> Dict[str, int]:
    """Static (trace-free) accounting of a model's persistent device bytes.

    Returns parameter, gradient (same size as parameters once allocated),
    buffer and optimizer-state byte counts — the "parameters" side of the
    breakdown that does not depend on batch size.
    """
    parameter_bytes = model.parameter_bytes()
    buffer_bytes = model.buffer_bytes()
    optimizer_bytes = optimizer.state_bytes() if optimizer is not None else 0
    return {
        "parameters": parameter_bytes,
        "gradients": parameter_bytes,
        "buffers": buffer_bytes,
        "optimizer_state": optimizer_bytes,
    }
