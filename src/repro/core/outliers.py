"""Outlier memory behaviors (Figure 4).

Most ATIs are tiny, but the paper highlights a handful of behaviors whose ATI
exceeds 0.8 s *and* whose block is larger than 600 MB (the red-marked example
is 840 211 us on a 1200 MB block).  Those outliers are the only behaviors for
which host↔device swapping can hide its transfer cost, so they are "the focus
of attention" for memory-pressure reduction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..units import MIB, format_bytes, format_duration, s_to_ns
from .ati import AccessInterval

#: The paper's outlier thresholds.
DEFAULT_ATI_THRESHOLD_NS = s_to_ns(0.8)
DEFAULT_SIZE_THRESHOLD_BYTES = 600 * MIB


@dataclass
class OutlierReport:
    """Result of the outlier analysis over a set of access intervals."""

    ati_threshold_ns: int
    size_threshold_bytes: int
    outliers: List[AccessInterval]
    total_intervals: int

    @property
    def count(self) -> int:
        """Number of outlier behaviors."""
        return len(self.outliers)

    @property
    def fraction(self) -> float:
        """Outliers as a fraction of all behaviors."""
        if self.total_intervals == 0:
            return 0.0
        return self.count / self.total_intervals

    @property
    def largest(self) -> Optional[AccessInterval]:
        """The outlier with the largest (ATI x size) product — Figure 4's red mark."""
        if not self.outliers:
            return None
        return max(self.outliers, key=lambda interval: interval.interval_ns * interval.size)

    def outlier_bytes(self) -> int:
        """Total bytes of the distinct blocks involved in outlier behaviors."""
        seen: Dict[int, int] = {}
        for interval in self.outliers:
            seen[interval.block_id] = max(seen.get(interval.block_id, 0), interval.size)
        return sum(seen.values())

    def describe(self) -> List[str]:
        """Human-readable lines describing each outlier (largest first)."""
        ordered = sorted(self.outliers, key=lambda i: i.interval_ns * i.size, reverse=True)
        return [
            (f"block {interval.block_id} ({interval.tag or interval.category.value}): "
             f"ATI {format_duration(interval.interval_ns)}, "
             f"size {format_bytes(interval.size)}")
            for interval in ordered
        ]

    def to_dict(self) -> Dict[str, object]:
        """Serialize for figure-data export."""
        return {
            "ati_threshold_ns": self.ati_threshold_ns,
            "size_threshold_bytes": self.size_threshold_bytes,
            "total_intervals": self.total_intervals,
            "count": self.count,
            "fraction": self.fraction,
            "outliers": [interval.to_dict() for interval in self.outliers],
        }


def find_outliers(intervals: Sequence[AccessInterval],
                  ati_threshold_ns: int = DEFAULT_ATI_THRESHOLD_NS,
                  size_threshold_bytes: int = DEFAULT_SIZE_THRESHOLD_BYTES) -> OutlierReport:
    """Select behaviors whose ATI and block size both exceed the thresholds."""
    outliers = [interval for interval in intervals
                if interval.interval_ns >= ati_threshold_ns
                and interval.size >= size_threshold_bytes]
    return OutlierReport(
        ati_threshold_ns=ati_threshold_ns,
        size_threshold_bytes=size_threshold_bytes,
        outliers=outliers,
        total_intervals=len(intervals),
    )


def pairwise_ati_size(intervals: Sequence[AccessInterval]) -> List[Dict[str, object]]:
    """Figure 4's raw series: one ``{index, ati_us, size}`` row per behavior."""
    return [
        {
            "behavior_index": index,
            "block_id": interval.block_id,
            "ati_us": interval.interval_us,
            "size_bytes": interval.size,
            "category": interval.category.value,
        }
        for index, interval in enumerate(intervals)
    ]


def top_swap_candidates(intervals: Sequence[AccessInterval], top_k: int = 10,
                        min_size_bytes: int = 1 * MIB) -> List[AccessInterval]:
    """The ``top_k`` behaviors ranked by (ATI x size), ignoring tiny blocks.

    This is the ranking the paper's planned "automatic cost model" would use
    to sift out the behaviors worth swapping.
    """
    candidates = [interval for interval in intervals if interval.size >= min_size_bytes]
    candidates.sort(key=lambda interval: interval.interval_ns * interval.size, reverse=True)
    return candidates[:top_k]
