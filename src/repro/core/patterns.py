"""Iterative memory-access-pattern detection.

The paper's first observation (Figure 2) is that training's memory behaviors
are *iterative*: every iteration issues (almost) the same sequence of
behaviors on (almost) the same blocks.  This module quantifies that claim:

* each iteration is reduced to a *signature* — the ordered sequence of
  ``(kind, size, category)`` tuples of its behaviors;
* pairwise similarity between iteration signatures is measured both as exact
  sequence similarity (ratio of the longest common prefix/suffix matching via
  difflib) and as a multiset Jaccard similarity (order-insensitive);
* a periodicity report states whether the trace is iterative (mean pairwise
  similarity above a threshold, by default 0.9) after discarding the first
  warm-up iteration (which additionally allocates parameters, gradients and
  optimizer state).
"""

from __future__ import annotations

import difflib
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .events import MemoryEvent
from .trace import ACCESS_CODES, CATEGORY_FROM_CODE, KIND_FROM_CODE, MemoryTrace

Signature = Tuple[Tuple[str, int, str], ...]


@dataclass
class IterationSignature:
    """The behavior signature of one training iteration."""

    iteration: int
    signature: Signature
    event_count: int
    total_bytes_touched: int

    def multiset(self) -> Counter:
        """Order-insensitive view of the signature."""
        return Counter(self.signature)


@dataclass
class PatternReport:
    """Result of the iterative-pattern analysis."""

    signatures: List[IterationSignature]
    sequence_similarity: Dict[Tuple[int, int], float]
    jaccard_similarity: Dict[Tuple[int, int], float]
    mean_sequence_similarity: float
    mean_jaccard_similarity: float
    is_iterative: bool
    steady_state_start: int

    def summary(self) -> Dict[str, object]:
        """Compact summary used by reports and tests."""
        return {
            "num_iterations": len(self.signatures),
            "mean_sequence_similarity": self.mean_sequence_similarity,
            "mean_jaccard_similarity": self.mean_jaccard_similarity,
            "is_iterative": self.is_iterative,
            "steady_state_start": self.steady_state_start,
        }


def iteration_signature(trace: MemoryTrace, iteration: int) -> IterationSignature:
    """Build the behavior signature of one iteration (column-store selection).

    The per-iteration behaviors are selected with vectorized masks over
    :meth:`~repro.core.trace.MemoryTrace.columns`; only the final signature
    tuple is materialized in Python (it must be hashable for difflib).
    """
    cols = trace.columns()
    mask = cols.is_block_behavior & (cols.iteration == iteration)
    kinds = cols.kind_code[mask]
    sizes = cols.size[mask]
    categories = cols.category_code[mask]
    access_mask = np.isin(kinds, ACCESS_CODES)
    signature = tuple(zip((KIND_FROM_CODE[code].value for code in kinds),
                          sizes.tolist(),
                          (CATEGORY_FROM_CODE[code].value for code in categories)))
    return IterationSignature(
        iteration=iteration,
        signature=signature,
        event_count=int(kinds.size),
        total_bytes_touched=int(sizes[access_mask].sum()),
    )


def sequence_similarity(a: Signature, b: Signature) -> float:
    """Order-sensitive similarity of two signatures (difflib ratio in [0, 1])."""
    if not a and not b:
        return 1.0
    matcher = difflib.SequenceMatcher(a=a, b=b, autojunk=False)
    return matcher.ratio()


def jaccard_similarity(a: Signature, b: Signature) -> float:
    """Multiset Jaccard similarity of two signatures (order-insensitive)."""
    if not a and not b:
        return 1.0
    counter_a, counter_b = Counter(a), Counter(b)
    intersection = sum((counter_a & counter_b).values())
    union = sum((counter_a | counter_b).values())
    return intersection / union if union else 0.0


def detect_iterative_pattern(trace: MemoryTrace, skip_warmup: int = 1,
                             similarity_threshold: float = 0.9) -> PatternReport:
    """Quantify how iterative the trace's memory behaviors are.

    ``skip_warmup`` iterations at the start are excluded from the similarity
    statistics (but still reported in the signatures) because the first
    iteration also allocates parameters' gradients and optimizer state.
    """
    iterations = trace.iterations()
    signatures = [iteration_signature(trace, index) for index in iterations]
    steady = [sig for sig in signatures if sig.iteration >= skip_warmup]

    seq_sim: Dict[Tuple[int, int], float] = {}
    jac_sim: Dict[Tuple[int, int], float] = {}
    for i, first in enumerate(steady):
        for second in steady[i + 1:]:
            key = (first.iteration, second.iteration)
            seq_sim[key] = sequence_similarity(first.signature, second.signature)
            jac_sim[key] = jaccard_similarity(first.signature, second.signature)

    mean_seq = sum(seq_sim.values()) / len(seq_sim) if seq_sim else 1.0
    mean_jac = sum(jac_sim.values()) / len(jac_sim) if jac_sim else 1.0
    return PatternReport(
        signatures=signatures,
        sequence_similarity=seq_sim,
        jaccard_similarity=jac_sim,
        mean_sequence_similarity=mean_seq,
        mean_jaccard_similarity=mean_jac,
        is_iterative=mean_seq >= similarity_threshold,
        steady_state_start=skip_warmup,
    )


def iteration_durations_ns(trace: MemoryTrace) -> List[int]:
    """Duration of each recorded iteration."""
    return [mark.duration_ns() for mark in trace.iteration_marks if mark.end_ns is not None]


def behaviors_per_iteration(trace: MemoryTrace) -> Dict[int, int]:
    """Number of block-level behaviors attributed to each iteration."""
    if trace.is_empty:
        return {}
    cols = trace.columns()
    mask = cols.is_block_behavior & (cols.iteration >= 0)
    iterations, counts = np.unique(cols.iteration[mask], return_counts=True)
    return {int(iteration): int(count)
            for iteration, count in zip(iterations, counts)}
