"""Gantt-chart data extraction (Figure 2).

Figure 2 of the paper draws one rectangle per device memory block lifetime:
the rectangle's horizontal extent is the block's allocation-to-free span and
its height is the block's size; stacking rectangles by address shows live
ranges overlapping and the gaps between them (device memory fragments).

This module extracts that data from a trace; the ASCII rendering lives in
:mod:`repro.viz.ascii`.

The chart's analyses are columnized: a :class:`GanttChart` lazily builds one
set of parallel NumPy arrays (start, end, size, address, iteration, rank)
over its rectangles, and every aggregate — peak concurrency, overlap
queries, lifetime statistics, address-gap scans — is a vectorized reduction
over those arrays rather than a per-rectangle Python loop, mirroring the
:meth:`~repro.core.trace.MemoryTrace.columns` design of the trace itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..units import ns_to_ms
from .events import BlockLifetime, MemoryCategory
from .trace import MemoryTrace


@dataclass(frozen=True)
class GanttRectangle:
    """One rectangle of the Gantt chart: a block lifetime with its size."""

    block_id: int
    tag: str
    category: MemoryCategory
    address: int
    size: int
    start_ns: int
    end_ns: int
    iteration: int
    device_rank: int = 0

    @property
    def duration_ns(self) -> int:
        """Lifetime duration (the rectangle's width)."""
        return self.end_ns - self.start_ns

    def overlaps_time(self, other: "GanttRectangle") -> bool:
        """Whether two lifetimes overlap in time (live-range overlap)."""
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    def to_dict(self) -> Dict[str, object]:
        """Serialize for figure-data export."""
        return {
            "block_id": self.block_id,
            "tag": self.tag,
            "category": self.category.value,
            "address": self.address,
            "size": self.size,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "iteration": self.iteration,
            "device_rank": self.device_rank,
        }


@dataclass(frozen=True)
class RectangleColumns:
    """Column-oriented view of a chart's rectangles (parallel ``int64`` arrays)."""

    start_ns: np.ndarray
    end_ns: np.ndarray
    size: np.ndarray
    address: np.ndarray
    iteration: np.ndarray
    device_rank: np.ndarray

    def __len__(self) -> int:
        return int(self.start_ns.size)


@dataclass
class GanttChart:
    """The full set of lifetime rectangles plus iteration boundaries."""

    rectangles: List[GanttRectangle]
    iteration_bounds: List[tuple]     # (index, start_ns, end_ns)
    end_ns: int

    def __len__(self) -> int:
        return len(self.rectangles)

    def columns(self) -> RectangleColumns:
        """Columnar NumPy view of the rectangles (built lazily, cached)."""
        cached = getattr(self, "_columns_cache", None)
        if cached is not None and len(cached) == len(self.rectangles):
            return cached
        n = len(self.rectangles)
        arrays = {name: np.empty(n, dtype=np.int64)
                  for name in ("start_ns", "end_ns", "size", "address",
                               "iteration", "device_rank")}
        for i, rect in enumerate(self.rectangles):
            arrays["start_ns"][i] = rect.start_ns
            arrays["end_ns"][i] = rect.end_ns
            arrays["size"][i] = rect.size
            arrays["address"][i] = rect.address
            arrays["iteration"][i] = rect.iteration
            arrays["device_rank"][i] = rect.device_rank
        columns = RectangleColumns(**arrays)
        self._columns_cache = columns
        return columns

    def _select(self, mask: np.ndarray) -> List[GanttRectangle]:
        """Materialize the rectangles selected by a boolean column mask."""
        return [self.rectangles[int(i)] for i in np.flatnonzero(mask)]

    def rectangles_in_iteration(self, iteration: int) -> List[GanttRectangle]:
        """Rectangles whose lifetime started during ``iteration``."""
        if not self.rectangles:
            return []
        return self._select(self.columns().iteration == iteration)

    def rectangles_overlapping(self, start_ns: int, end_ns: int) -> List[GanttRectangle]:
        """Rectangles alive at any point inside ``[start_ns, end_ns]``."""
        if not self.rectangles:
            return []
        cols = self.columns()
        return self._select((cols.start_ns < end_ns) & (start_ns < cols.end_ns))

    def max_concurrent_bytes(self) -> int:
        """Peak sum of sizes of simultaneously live rectangles.

        Sweep-line over the start/end endpoints: at equal timestamps the
        negative (free) deltas sort first, matching the historical
        ``(time, delta)`` tuple sort.
        """
        if not self.rectangles:
            return 0
        cols = self.columns()
        times = np.concatenate([cols.start_ns, cols.end_ns])
        deltas = np.concatenate([cols.size, -cols.size])
        order = np.lexsort((deltas, times))
        live = np.cumsum(deltas[order])
        return int(max(0, live.max()))

    def lifetime_stats(self) -> Dict[str, float]:
        """Mean / max lifetime duration and size over all rectangles."""
        if not self.rectangles:
            return {"count": 0, "mean_duration_ms": 0.0, "max_duration_ms": 0.0,
                    "mean_size": 0.0, "max_size": 0.0}
        cols = self.columns()
        durations = cols.end_ns - cols.start_ns
        return {
            "count": len(self.rectangles),
            "mean_duration_ms": ns_to_ms(float(durations.mean())),
            "max_duration_ms": ns_to_ms(float(durations.max())),
            "mean_size": float(cols.size.mean()),
            "max_size": float(cols.size.max()),
        }


def build_gantt_chart(trace: MemoryTrace, max_iterations: Optional[int] = None) -> GanttChart:
    """Build the Gantt chart of a trace, optionally limited to the first iterations.

    Blocks still live at the end of the trace (parameters, gradients,
    optimizer state) are closed at the trace end so they draw as full-width
    rectangles, exactly as in the paper's figure.
    """
    end_ns = max(trace.end_ns, trace.start_ns + trace.duration_ns)
    bounds = [(mark.index, mark.start_ns, mark.end_ns if mark.end_ns is not None else end_ns)
              for mark in trace.iteration_marks]
    if max_iterations is not None:
        bounds = [entry for entry in bounds if entry[0] < max_iterations]
        if bounds:
            end_ns = max(entry[2] for entry in bounds)

    rectangles: List[GanttRectangle] = []
    for lifetime in trace.lifetimes:
        if max_iterations is not None and lifetime.iteration >= max_iterations:
            continue
        start = lifetime.malloc_ns
        end = lifetime.free_ns if lifetime.free_ns is not None else end_ns
        if max_iterations is not None:
            end = min(end, end_ns)
        rectangles.append(GanttRectangle(
            block_id=lifetime.block_id,
            tag=lifetime.tag,
            category=lifetime.category,
            address=lifetime.address,
            size=lifetime.size,
            start_ns=start,
            end_ns=max(start, end),
            iteration=lifetime.iteration,
            device_rank=lifetime.device_rank,
        ))
    rectangles.sort(key=lambda rect: (rect.start_ns, rect.address))
    return GanttChart(rectangles=rectangles, iteration_bounds=bounds, end_ns=end_ns)


def address_gaps(chart: GanttChart, at_time_ns: int) -> List[tuple]:
    """Free gaps between live blocks along the address axis at ``at_time_ns``.

    The paper reads fragmentation off the blank space between rectangles along
    the y-axis; this returns ``(gap_start_address, gap_size)`` pairs between
    consecutive live blocks, computed with one vectorized scan over the
    chart's rectangle columns.
    """
    if not chart.rectangles:
        return []
    cols = chart.columns()
    live = (cols.start_ns <= at_time_ns) & (at_time_ns < cols.end_ns)
    addresses = cols.address[live]
    sizes = cols.size[live]
    order = np.argsort(addresses, kind="stable")
    addresses, sizes = addresses[order], sizes[order]
    if addresses.size < 2:
        return []
    gap_starts = addresses[:-1] + sizes[:-1]
    gaps = addresses[1:] - gap_starts
    positive = gaps > 0
    return [(int(start), int(gap))
            for start, gap in zip(gap_starts[positive], gaps[positive])]
