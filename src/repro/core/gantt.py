"""Gantt-chart data extraction (Figure 2).

Figure 2 of the paper draws one rectangle per device memory block lifetime:
the rectangle's horizontal extent is the block's allocation-to-free span and
its height is the block's size; stacking rectangles by address shows live
ranges overlapping and the gaps between them (device memory fragments).

This module extracts that data from a trace; the ASCII rendering lives in
:mod:`repro.viz.ascii`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..units import ns_to_ms
from .events import BlockLifetime, MemoryCategory
from .trace import MemoryTrace


@dataclass(frozen=True)
class GanttRectangle:
    """One rectangle of the Gantt chart: a block lifetime with its size."""

    block_id: int
    tag: str
    category: MemoryCategory
    address: int
    size: int
    start_ns: int
    end_ns: int
    iteration: int

    @property
    def duration_ns(self) -> int:
        """Lifetime duration (the rectangle's width)."""
        return self.end_ns - self.start_ns

    def overlaps_time(self, other: "GanttRectangle") -> bool:
        """Whether two lifetimes overlap in time (live-range overlap)."""
        return self.start_ns < other.end_ns and other.start_ns < self.end_ns

    def to_dict(self) -> Dict[str, object]:
        """Serialize for figure-data export."""
        return {
            "block_id": self.block_id,
            "tag": self.tag,
            "category": self.category.value,
            "address": self.address,
            "size": self.size,
            "start_ns": self.start_ns,
            "end_ns": self.end_ns,
            "duration_ns": self.duration_ns,
            "iteration": self.iteration,
        }


@dataclass
class GanttChart:
    """The full set of lifetime rectangles plus iteration boundaries."""

    rectangles: List[GanttRectangle]
    iteration_bounds: List[tuple]     # (index, start_ns, end_ns)
    end_ns: int

    def __len__(self) -> int:
        return len(self.rectangles)

    def rectangles_in_iteration(self, iteration: int) -> List[GanttRectangle]:
        """Rectangles whose lifetime started during ``iteration``."""
        return [rect for rect in self.rectangles if rect.iteration == iteration]

    def rectangles_overlapping(self, start_ns: int, end_ns: int) -> List[GanttRectangle]:
        """Rectangles alive at any point inside ``[start_ns, end_ns]``."""
        return [rect for rect in self.rectangles
                if rect.start_ns < end_ns and start_ns < rect.end_ns]

    def max_concurrent_bytes(self) -> int:
        """Peak sum of sizes of simultaneously live rectangles."""
        points = []
        for rect in self.rectangles:
            points.append((rect.start_ns, rect.size))
            points.append((rect.end_ns, -rect.size))
        points.sort()
        live = peak = 0
        for _, delta in points:
            live += delta
            peak = max(peak, live)
        return peak

    def lifetime_stats(self) -> Dict[str, float]:
        """Mean / max lifetime duration and size over all rectangles."""
        if not self.rectangles:
            return {"count": 0, "mean_duration_ms": 0.0, "max_duration_ms": 0.0,
                    "mean_size": 0.0, "max_size": 0.0}
        durations = [rect.duration_ns for rect in self.rectangles]
        sizes = [rect.size for rect in self.rectangles]
        return {
            "count": len(self.rectangles),
            "mean_duration_ms": ns_to_ms(sum(durations) / len(durations)),
            "max_duration_ms": ns_to_ms(max(durations)),
            "mean_size": sum(sizes) / len(sizes),
            "max_size": max(sizes),
        }


def build_gantt_chart(trace: MemoryTrace, max_iterations: Optional[int] = None) -> GanttChart:
    """Build the Gantt chart of a trace, optionally limited to the first iterations.

    Blocks still live at the end of the trace (parameters, gradients,
    optimizer state) are closed at the trace end so they draw as full-width
    rectangles, exactly as in the paper's figure.
    """
    end_ns = max(trace.end_ns, trace.events[-1].timestamp_ns if trace.events else 0)
    bounds = [(mark.index, mark.start_ns, mark.end_ns if mark.end_ns is not None else end_ns)
              for mark in trace.iteration_marks]
    if max_iterations is not None:
        bounds = [entry for entry in bounds if entry[0] < max_iterations]
        if bounds:
            end_ns = max(entry[2] for entry in bounds)

    rectangles: List[GanttRectangle] = []
    for lifetime in trace.lifetimes:
        if max_iterations is not None and lifetime.iteration >= max_iterations:
            continue
        start = lifetime.malloc_ns
        end = lifetime.free_ns if lifetime.free_ns is not None else end_ns
        if max_iterations is not None:
            end = min(end, end_ns)
        rectangles.append(GanttRectangle(
            block_id=lifetime.block_id,
            tag=lifetime.tag,
            category=lifetime.category,
            address=lifetime.address,
            size=lifetime.size,
            start_ns=start,
            end_ns=max(start, end),
            iteration=lifetime.iteration,
        ))
    rectangles.sort(key=lambda rect: (rect.start_ns, rect.address))
    return GanttChart(rectangles=rectangles, iteration_bounds=bounds, end_ns=end_ns)


def address_gaps(chart: GanttChart, at_time_ns: int) -> List[tuple]:
    """Free gaps between live blocks along the address axis at ``at_time_ns``.

    The paper reads fragmentation off the blank space between rectangles along
    the y-axis; this returns ``(gap_start_address, gap_size)`` pairs between
    consecutive live blocks.
    """
    live = sorted(
        (rect for rect in chart.rectangles
         if rect.start_ns <= at_time_ns < rect.end_ns),
        key=lambda rect: rect.address,
    )
    gaps = []
    for current, following in zip(live, live[1:]):
        gap_start = current.address + current.size
        gap = following.address - gap_start
        if gap > 0:
            gaps.append((gap_start, gap))
    return gaps
