"""The paper's contribution: block-level memory-behavior recording and analysis.

The recorder side (:class:`~repro.core.profiler.MemoryProfiler` /
:class:`~repro.core.recorder.TraceRecorder`) produces a
:class:`~repro.core.trace.MemoryTrace`; the analysis side (ATI, breakdown,
gantt, patterns, fragmentation, Eq.-1 swap planning) consumes it.  The hot
analyses — ATI pairing, occupation breakdown, Eq.-1 screening — are
vectorized over the trace's columnar NumPy view
(:meth:`~repro.core.trace.MemoryTrace.columns`, see the module docstring of
:mod:`repro.core.trace` for the layout).
"""

from .ati import (
    AccessInterval,
    AtiSummary,
    compute_access_intervals,
    fraction_below,
    interval_values_us,
    intervals_by_category,
    intervals_by_kind,
    summarize_intervals,
)
from .breakdown import (
    BreakdownSeries,
    OccupationBreakdown,
    model_state_bytes,
    occupation_breakdown,
)
from .events import (
    PAPER_BUCKETS,
    BlockLifetime,
    IterationMark,
    MemoryCategory,
    MemoryEvent,
    MemoryEventKind,
)
from .fragmentation import (
    FragmentationReport,
    FragmentationTimelinePoint,
    analyze_fragmentation,
    fragmentation_timeline,
    internal_fragmentation_bytes,
    snapshot_external_fragmentation,
)
from .gantt import GanttChart, GanttRectangle, address_gaps, build_gantt_chart
from .outliers import (
    DEFAULT_ATI_THRESHOLD_NS,
    DEFAULT_SIZE_THRESHOLD_BYTES,
    OutlierReport,
    find_outliers,
    pairwise_ati_size,
    top_swap_candidates,
)
from .patterns import (
    IterationSignature,
    PatternReport,
    behaviors_per_iteration,
    detect_iterative_pattern,
    iteration_durations_ns,
    iteration_signature,
    jaccard_similarity,
    sequence_similarity,
)
from .profiler import MemoryProfiler
from .recorder import TraceRecorder
from .stats import (
    CdfResult,
    Histogram,
    ViolinStats,
    concentration_ratio,
    empirical_cdf,
    gaussian_kde_trace,
    histogram,
    violin_stats,
)
from .swap import (
    BandwidthConfig,
    SwapCandidate,
    SwapPlan,
    SwapPlanner,
    is_swappable,
    max_swap_bytes,
    swap_round_trip_ns,
)
from .trace import MemoryTrace, TRACE_FORMAT_VERSION, merge_rank_traces

__all__ = [
    "AccessInterval",
    "AtiSummary",
    "BandwidthConfig",
    "BlockLifetime",
    "BreakdownSeries",
    "CdfResult",
    "DEFAULT_ATI_THRESHOLD_NS",
    "DEFAULT_SIZE_THRESHOLD_BYTES",
    "FragmentationReport",
    "FragmentationTimelinePoint",
    "GanttChart",
    "GanttRectangle",
    "Histogram",
    "IterationMark",
    "IterationSignature",
    "MemoryCategory",
    "MemoryEvent",
    "MemoryEventKind",
    "MemoryProfiler",
    "MemoryTrace",
    "OccupationBreakdown",
    "OutlierReport",
    "PAPER_BUCKETS",
    "PatternReport",
    "SwapCandidate",
    "SwapPlan",
    "SwapPlanner",
    "TRACE_FORMAT_VERSION",
    "TraceRecorder",
    "ViolinStats",
    "address_gaps",
    "analyze_fragmentation",
    "behaviors_per_iteration",
    "build_gantt_chart",
    "compute_access_intervals",
    "concentration_ratio",
    "detect_iterative_pattern",
    "empirical_cdf",
    "find_outliers",
    "fraction_below",
    "fragmentation_timeline",
    "gaussian_kde_trace",
    "merge_rank_traces",
    "histogram",
    "internal_fragmentation_bytes",
    "interval_values_us",
    "intervals_by_category",
    "intervals_by_kind",
    "is_swappable",
    "iteration_durations_ns",
    "iteration_signature",
    "jaccard_similarity",
    "max_swap_bytes",
    "model_state_bytes",
    "occupation_breakdown",
    "pairwise_ati_size",
    "sequence_similarity",
    "snapshot_external_fragmentation",
    "summarize_intervals",
    "swap_round_trip_ns",
    "top_swap_candidates",
    "violin_stats",
]
