"""Device memory fragmentation analysis.

The paper reads fragmentation off the Gantt chart as the blank space between
rectangles along the y-axis and notes "there are fewer memory fragments
during MLP training".  This module quantifies that:

* *internal* fragmentation: bytes handed out by the allocator beyond what was
  requested (size rounding, un-split remainders);
* *external* fragmentation: reserved-but-unallocated bytes held in the
  allocator's cache, and the classic ``1 - largest_free / total_free`` ratio
  computed from allocator snapshots;
* a reserved/allocated utilization timeline replayed from the trace.

All per-event reductions run on the trace's column store
(:meth:`~repro.core.trace.MemoryTrace.columns`): the allocated/reserved
series are cumulative sums over vectorized event-delta arrays
(:func:`fragmentation_series`), and :func:`analyze_fragmentation` computes
its peaks and utilization statistics directly on those arrays — the Python
:class:`FragmentationTimelinePoint` objects are only materialized for
consumers that ask for the object-level timeline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from .events import MemoryEventKind
from .trace import KIND_CODES, MemoryTrace

_MALLOC = KIND_CODES[MemoryEventKind.MALLOC]
_FREE = KIND_CODES[MemoryEventKind.FREE]
_SEG_ALLOC = KIND_CODES[MemoryEventKind.SEGMENT_ALLOC]
_SEG_FREE = KIND_CODES[MemoryEventKind.SEGMENT_FREE]


@dataclass
class FragmentationTimelinePoint:
    """Memory-system state after one allocator event."""

    timestamp_ns: int
    allocated_bytes: int
    reserved_bytes: int

    @property
    def cached_bytes(self) -> int:
        """Reserved-but-unallocated bytes (the allocator cache)."""
        return max(0, self.reserved_bytes - self.allocated_bytes)

    @property
    def utilization(self) -> float:
        """Allocated fraction of reserved memory."""
        if self.reserved_bytes == 0:
            return 1.0
        return self.allocated_bytes / self.reserved_bytes


@dataclass
class FragmentationReport:
    """Summary of fragmentation over a whole trace."""

    timeline: List[FragmentationTimelinePoint]
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    mean_utilization: float
    min_utilization: float
    peak_cached_bytes: int

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by reports and the allocator ablation."""
        return {
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "peak_cached_bytes": self.peak_cached_bytes,
            "mean_utilization": self.mean_utilization,
            "min_utilization": self.min_utilization,
        }


def fragmentation_series(trace: MemoryTrace) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized ``(timestamps, allocated, reserved)`` series of allocator events.

    One entry per malloc/free/segment event, in stream order: cumulative sums
    of the per-event byte deltas over the trace's column store.
    """
    empty = np.array([], dtype=np.int64)
    if trace.is_empty:
        return empty, empty.copy(), empty.copy()
    cols = trace.columns()
    kind = cols.kind_code
    alloc_delta = np.where(kind == _MALLOC, cols.size,
                           np.where(kind == _FREE, -cols.size, 0))
    reserved_delta = np.where(kind == _SEG_ALLOC, cols.size,
                              np.where(kind == _SEG_FREE, -cols.size, 0))
    mask = ((kind == _MALLOC) | (kind == _FREE)
            | (kind == _SEG_ALLOC) | (kind == _SEG_FREE))
    if not mask.any():
        return empty, empty.copy(), empty.copy()
    return (cols.timestamp_ns[mask],
            np.cumsum(alloc_delta[mask]),
            np.cumsum(reserved_delta[mask]))


def _timeline_points(timestamps: np.ndarray, allocated: np.ndarray,
                     reserved: np.ndarray) -> List[FragmentationTimelinePoint]:
    """Materialize object-level timeline points from the series arrays."""
    return [FragmentationTimelinePoint(timestamp_ns=int(ts), allocated_bytes=int(a),
                                       reserved_bytes=int(r))
            for ts, a, r in zip(timestamps, allocated, reserved)]


def fragmentation_timeline(trace: MemoryTrace) -> List[FragmentationTimelinePoint]:
    """Replay allocator events into an (allocated, reserved) timeline."""
    return _timeline_points(*fragmentation_series(trace))


def analyze_fragmentation(trace: MemoryTrace) -> FragmentationReport:
    """Compute the fragmentation report of a trace (one vectorized scan)."""
    timestamps, allocated, reserved = fragmentation_series(trace)
    if timestamps.size == 0:
        return FragmentationReport(timeline=[], peak_allocated_bytes=0, peak_reserved_bytes=0,
                                   mean_utilization=1.0, min_utilization=1.0,
                                   peak_cached_bytes=0)
    # Utilization is only meaningful once something is reserved.
    meaningful = reserved > 0
    utilizations = allocated[meaningful] / reserved[meaningful]
    return FragmentationReport(
        timeline=_timeline_points(timestamps, allocated, reserved),
        peak_allocated_bytes=int(allocated.max()),
        peak_reserved_bytes=int(reserved.max()),
        mean_utilization=float(utilizations.mean()) if utilizations.size else 1.0,
        min_utilization=float(utilizations.min()) if utilizations.size else 1.0,
        peak_cached_bytes=int(np.maximum(reserved - allocated, 0).max()),
    )


def internal_fragmentation_bytes(trace: MemoryTrace) -> int:
    """Peak bytes lost to size rounding (block size minus requested size).

    Requested sizes are not part of the event stream, so this uses the block
    lifetimes' recorded sizes versus their tags when available; the allocator
    rounds to 512-byte granularity, so the upper bound per live block is
    511 bytes — this returns that bound scaled by the peak live block count.
    """
    if trace.is_empty:
        return 0
    cols = trace.columns()
    deltas = np.where(cols.is_malloc, 1, np.where(cols.is_free, -1, 0))
    if not deltas.any():
        return 0
    peak_live_blocks = int(max(0, np.cumsum(deltas).max()))
    return peak_live_blocks * 511


def snapshot_external_fragmentation(snapshot: List[dict]) -> float:
    """``1 - largest_free_block / total_free`` over an allocator snapshot.

    Takes the output of ``Device.memory_snapshot()`` (live allocator state),
    returns 0.0 when there is no free memory at all.
    """
    free_sizes: List[int] = []
    for segment in snapshot:
        for block in segment["blocks"]:
            if not block["allocated"]:
                free_sizes.append(int(block["size"]))
    total_free = sum(free_sizes)
    if total_free == 0:
        return 0.0
    return 1.0 - max(free_sizes) / total_free
