"""Device memory fragmentation analysis.

The paper reads fragmentation off the Gantt chart as the blank space between
rectangles along the y-axis and notes "there are fewer memory fragments
during MLP training".  This module quantifies that:

* *internal* fragmentation: bytes handed out by the allocator beyond what was
  requested (size rounding, un-split remainders);
* *external* fragmentation: reserved-but-unallocated bytes held in the
  allocator's cache, and the classic ``1 - largest_free / total_free`` ratio
  computed from allocator snapshots;
* a reserved/allocated utilization timeline replayed from the trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .events import MemoryEventKind
from .trace import MemoryTrace


@dataclass
class FragmentationTimelinePoint:
    """Memory-system state after one allocator event."""

    timestamp_ns: int
    allocated_bytes: int
    reserved_bytes: int

    @property
    def cached_bytes(self) -> int:
        """Reserved-but-unallocated bytes (the allocator cache)."""
        return max(0, self.reserved_bytes - self.allocated_bytes)

    @property
    def utilization(self) -> float:
        """Allocated fraction of reserved memory."""
        if self.reserved_bytes == 0:
            return 1.0
        return self.allocated_bytes / self.reserved_bytes


@dataclass
class FragmentationReport:
    """Summary of fragmentation over a whole trace."""

    timeline: List[FragmentationTimelinePoint]
    peak_allocated_bytes: int
    peak_reserved_bytes: int
    mean_utilization: float
    min_utilization: float
    peak_cached_bytes: int

    def summary(self) -> Dict[str, float]:
        """Compact dictionary used by reports and the allocator ablation."""
        return {
            "peak_allocated_bytes": self.peak_allocated_bytes,
            "peak_reserved_bytes": self.peak_reserved_bytes,
            "peak_cached_bytes": self.peak_cached_bytes,
            "mean_utilization": self.mean_utilization,
            "min_utilization": self.min_utilization,
        }


def fragmentation_timeline(trace: MemoryTrace) -> List[FragmentationTimelinePoint]:
    """Replay allocator events into an (allocated, reserved) timeline."""
    allocated = reserved = 0
    points: List[FragmentationTimelinePoint] = []
    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            allocated += event.size
        elif event.kind is MemoryEventKind.FREE:
            allocated -= event.size
        elif event.kind is MemoryEventKind.SEGMENT_ALLOC:
            reserved += event.size
        elif event.kind is MemoryEventKind.SEGMENT_FREE:
            reserved -= event.size
        else:
            continue
        points.append(FragmentationTimelinePoint(
            timestamp_ns=event.timestamp_ns,
            allocated_bytes=allocated,
            reserved_bytes=reserved,
        ))
    return points


def analyze_fragmentation(trace: MemoryTrace) -> FragmentationReport:
    """Compute the fragmentation report of a trace."""
    timeline = fragmentation_timeline(trace)
    if not timeline:
        return FragmentationReport(timeline=[], peak_allocated_bytes=0, peak_reserved_bytes=0,
                                   mean_utilization=1.0, min_utilization=1.0,
                                   peak_cached_bytes=0)
    # Utilization is only meaningful once something is reserved.
    utilizations = [point.utilization for point in timeline if point.reserved_bytes > 0]
    return FragmentationReport(
        timeline=timeline,
        peak_allocated_bytes=max(point.allocated_bytes for point in timeline),
        peak_reserved_bytes=max(point.reserved_bytes for point in timeline),
        mean_utilization=(sum(utilizations) / len(utilizations)) if utilizations else 1.0,
        min_utilization=min(utilizations) if utilizations else 1.0,
        peak_cached_bytes=max(point.cached_bytes for point in timeline),
    )


def internal_fragmentation_bytes(trace: MemoryTrace) -> int:
    """Peak bytes lost to size rounding (block size minus requested size).

    Requested sizes are not part of the event stream, so this uses the block
    lifetimes' recorded sizes versus their tags when available; the allocator
    rounds to 512-byte granularity, so the upper bound per live block is
    511 bytes — this returns that bound scaled by the peak live block count.
    """
    peak_live_blocks = 0
    live = 0
    for event in trace.events:
        if event.kind is MemoryEventKind.MALLOC:
            live += 1
            peak_live_blocks = max(peak_live_blocks, live)
        elif event.kind is MemoryEventKind.FREE:
            live -= 1
    return peak_live_blocks * 511


def snapshot_external_fragmentation(snapshot: List[dict]) -> float:
    """``1 - largest_free_block / total_free`` over an allocator snapshot.

    Takes the output of ``Device.memory_snapshot()`` (live allocator state),
    returns 0.0 when there is no free memory at all.
    """
    free_sizes: List[int] = []
    for segment in snapshot:
        for block in segment["blocks"]:
            if not block["allocated"]:
                free_sizes.append(int(block["size"]))
    total_free = sum(free_sizes)
    if total_free == 0:
        return 0.0
    return 1.0 - max(free_sizes) / total_free
