"""Swap feasibility model (Equation 1) and the automatic swap planner.

Equation 1 of the paper bounds the amount of data that can be swapped out to
the host and back within one access-time interval without slowing training::

    S / B_d2h + S / B_h2d <= ATI
    S <= ATI / (1 / B_d2h + 1 / B_h2d)

With the paper's measured pinned bandwidths (6.4 GB/s device→host and
6.3 GB/s host→device) a 25 us ATI only hides ~79.37 KB, while a 0.8 s ATI
hides ~2.54 GB — hence only the high-ATI / large-block outliers are worth
swapping.

The paper's stated future work is "an automatic cost model to sift out these
memory access behaviors"; :class:`SwapPlanner` implements that cost model on
top of the recorded trace: it ranks swappable intervals by footprint savings,
checks Eq. 1 per candidate, accounts for copy-engine contention and reports
the expected peak-memory reduction and runtime overhead of a chosen plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..units import GB, MIB, format_bytes, format_duration, ns_to_us
from .ati import AccessInterval, IntervalArrays
from .trace import MemoryTrace


@dataclass(frozen=True)
class BandwidthConfig:
    """Host↔device bandwidths used by Eq. 1 (bytes per second)."""

    h2d_bytes_per_s: float
    d2h_bytes_per_s: float

    @staticmethod
    def from_paper() -> "BandwidthConfig":
        """The paper's measured pinned bandwidths: 6.3 GB/s h2d, 6.4 GB/s d2h."""
        return BandwidthConfig(h2d_bytes_per_s=6.3 * GB, d2h_bytes_per_s=6.4 * GB)

    @staticmethod
    def from_device_spec(spec) -> "BandwidthConfig":
        """Extract the bandwidths from a :class:`~repro.device.spec.DeviceSpec`."""
        return BandwidthConfig(h2d_bytes_per_s=spec.h2d_bandwidth,
                               d2h_bytes_per_s=spec.d2h_bandwidth)

    @property
    def round_trip_s_per_byte(self) -> float:
        """Eq. 1's denominator: seconds to move one byte out to the host and back."""
        return 1.0 / self.d2h_bytes_per_s + 1.0 / self.h2d_bytes_per_s


def max_swap_bytes(ati_ns: float, bandwidths: BandwidthConfig) -> float:
    """Equation 1: the largest block swappable within ``ati_ns`` at no runtime cost."""
    if ati_ns <= 0:
        return 0.0
    return (ati_ns / 1e9) / bandwidths.round_trip_s_per_byte


def swap_round_trip_ns(nbytes: float, bandwidths: BandwidthConfig) -> float:
    """Time to evict ``nbytes`` to the host and bring them back."""
    if nbytes <= 0:
        return 0.0
    return nbytes * bandwidths.round_trip_s_per_byte * 1e9


def is_swappable(interval: AccessInterval, bandwidths: BandwidthConfig) -> bool:
    """Whether the block of ``interval`` can be swapped within its ATI (Eq. 1)."""
    return interval.size <= max_swap_bytes(interval.interval_ns, bandwidths)


def swappable_mask(arrays: IntervalArrays, bandwidths: BandwidthConfig) -> np.ndarray:
    """Vectorized Eq. 1 over an :class:`~repro.core.ati.IntervalArrays` column set."""
    limits = np.maximum(arrays.interval_ns, 0) / 1e9 / bandwidths.round_trip_s_per_byte
    return arrays.size <= limits


def swappable_fraction(arrays: IntervalArrays, bandwidths: BandwidthConfig) -> float:
    """Fraction of ATIs whose block fits through Eq. 1 (0.0 for an empty set)."""
    if len(arrays) == 0:
        return 0.0
    return float(np.mean(swappable_mask(arrays, bandwidths)))


@dataclass
class SwapCandidate:
    """One behavior the planner considers swapping during its ATI."""

    interval: AccessInterval
    feasible: bool
    swap_limit_bytes: float
    round_trip_ns: float
    slack_ns: float               # ATI minus round-trip time (negative => overhead)
    savings_bytes: int            # bytes absent from the device while swapped out

    @property
    def overhead_ns(self) -> float:
        """Runtime overhead if this candidate is swapped anyway (0 when feasible)."""
        return max(0.0, -self.slack_ns)

    def to_dict(self) -> Dict[str, object]:
        """Serialize for reports."""
        return {
            "block_id": self.interval.block_id,
            "tag": self.interval.tag,
            "size_bytes": self.interval.size,
            "ati_us": self.interval.interval_us,
            "feasible": self.feasible,
            "swap_limit_bytes": self.swap_limit_bytes,
            "round_trip_us": ns_to_us(self.round_trip_ns),
            "slack_us": ns_to_us(self.slack_ns),
            "savings_bytes": self.savings_bytes,
        }


@dataclass
class SwapPlan:
    """The planner's output: chosen candidates and their aggregate effect."""

    candidates: List[SwapCandidate]
    selected: List[SwapCandidate]
    peak_bytes_before: int
    estimated_peak_bytes_after: int
    total_overhead_ns: float
    bandwidths: BandwidthConfig

    @property
    def savings_bytes(self) -> int:
        """Estimated peak-footprint reduction."""
        return self.peak_bytes_before - self.estimated_peak_bytes_after

    @property
    def savings_fraction(self) -> float:
        """Peak-footprint reduction as a fraction of the original peak."""
        if self.peak_bytes_before == 0:
            return 0.0
        return self.savings_bytes / self.peak_bytes_before

    def summary(self) -> Dict[str, object]:
        """Compact description used by benchmarks and examples."""
        return {
            "num_candidates": len(self.candidates),
            "num_selected": len(self.selected),
            "peak_bytes_before": self.peak_bytes_before,
            "peak_bytes_after": self.estimated_peak_bytes_after,
            "savings_bytes": self.savings_bytes,
            "savings_fraction": self.savings_fraction,
            "total_overhead_ns": self.total_overhead_ns,
        }

    def describe(self) -> str:
        """Human-readable multi-line description of the plan."""
        lines = [
            f"peak before: {format_bytes(self.peak_bytes_before)}",
            f"peak after : {format_bytes(self.estimated_peak_bytes_after)} "
            f"({100.0 * self.savings_fraction:.1f}% saved)",
            f"overhead   : {format_duration(self.total_overhead_ns)}",
            f"selected   : {len(self.selected)} of {len(self.candidates)} candidates",
        ]
        for candidate in self.selected:
            lines.append(
                f"  - block {candidate.interval.block_id} "
                f"({candidate.interval.tag or candidate.interval.category.value}): "
                f"{format_bytes(candidate.interval.size)} over "
                f"{format_duration(candidate.interval.interval_ns)} ATI"
            )
        return "\n".join(lines)


class SwapPlanner:
    """The paper's future-work "automatic cost model", built on recorded traces.

    Parameters
    ----------
    bandwidths:
        Host↔device bandwidths used in Eq. 1.
    min_candidate_bytes:
        Blocks smaller than this are never considered (swapping them cannot
        meaningfully reduce pressure, as the paper's 79 KB example shows).
    allow_overhead_ns:
        Total runtime overhead the planner may introduce (0 means only
        Eq.-1-feasible candidates are selected).
    """

    def __init__(self, bandwidths: Optional[BandwidthConfig] = None,
                 min_candidate_bytes: int = 32 * MIB,
                 allow_overhead_ns: float = 0.0):
        self.bandwidths = bandwidths if bandwidths is not None else BandwidthConfig.from_paper()
        self.min_candidate_bytes = int(min_candidate_bytes)
        self.allow_overhead_ns = float(allow_overhead_ns)

    # -- candidate evaluation ----------------------------------------------------------

    def evaluate(self, intervals: Sequence[AccessInterval]) -> List[SwapCandidate]:
        """Score every interval large enough to be worth considering."""
        candidates = []
        for interval in intervals:
            if interval.size < self.min_candidate_bytes:
                continue
            limit = max_swap_bytes(interval.interval_ns, self.bandwidths)
            round_trip = swap_round_trip_ns(interval.size, self.bandwidths)
            slack = interval.interval_ns - round_trip
            candidates.append(SwapCandidate(
                interval=interval,
                feasible=interval.size <= limit,
                swap_limit_bytes=limit,
                round_trip_ns=round_trip,
                slack_ns=slack,
                savings_bytes=interval.size,
            ))
        candidates.sort(key=lambda c: (c.feasible, c.savings_bytes), reverse=True)
        return candidates

    # -- planning -----------------------------------------------------------------------

    def plan(self, trace: MemoryTrace, intervals: Sequence[AccessInterval],
             target_bytes: Optional[int] = None) -> SwapPlan:
        """Choose a set of swaps that reduces peak memory the most.

        At most one swap is selected per block (a block absent from the device
        during its largest idle interval is the best that block can do), and
        selection stops once ``target_bytes`` of savings (if given) is reached
        or the allowed overhead is exhausted.
        """
        return self.plan_from_intervals(intervals, trace.peak_live_bytes(),
                                        target_bytes=target_bytes)

    def plan_from_intervals(self, intervals: Sequence[AccessInterval],
                            peak_before: int,
                            target_bytes: Optional[int] = None) -> SwapPlan:
        """:meth:`plan` without a trace: candidates plus a known peak.

        This is the entry point the closed-loop swap-execution engine
        (:mod:`repro.swap`) uses after its warm-up iteration — it observed
        the intervals and the peak itself, and routing its selection through
        the same code as the offline planner is what makes the
        predicted-vs-simulated comparison an apples-to-apples regression.
        """
        candidates = self.evaluate(intervals)

        selected: List[SwapCandidate] = []
        selected_blocks: set = set()
        overhead_budget = self.allow_overhead_ns
        savings = 0
        for candidate in candidates:
            if candidate.interval.block_id in selected_blocks:
                continue
            if not candidate.feasible:
                if candidate.overhead_ns > overhead_budget:
                    continue
                overhead_budget -= candidate.overhead_ns
            selected.append(candidate)
            selected_blocks.add(candidate.interval.block_id)
            savings += candidate.savings_bytes
            if target_bytes is not None and savings >= target_bytes:
                break

        total_overhead = sum(candidate.overhead_ns for candidate in selected)
        estimated_after = max(0, peak_before - savings)
        return SwapPlan(
            candidates=candidates,
            selected=selected,
            peak_bytes_before=peak_before,
            estimated_peak_bytes_after=estimated_after,
            total_overhead_ns=total_overhead,
            bandwidths=self.bandwidths,
        )
