"""High-level memory profiler.

:class:`MemoryProfiler` is the user-facing entry point of the reproduction:
it attaches a :class:`~repro.core.recorder.TraceRecorder` to a device for the
duration of a ``with`` block (or between ``start()``/``stop()`` calls), passes
iteration boundaries through to the recorder, and hands back the finished
:class:`~repro.core.trace.MemoryTrace` plus convenience analyses.

Example
-------
>>> device = Device(titan_x_pascal())
>>> model = paper_mlp(device)
>>> with MemoryProfiler(device) as profiler:
...     trainer = Trainer(model, loader, optimizer, loss, device,
...                       recorder=profiler)
...     trainer.train(5)
>>> trace = profiler.trace()
>>> intervals = profiler.access_intervals()
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..device.device import Device
from ..errors import TraceError
from .ati import AccessInterval, AtiSummary, compute_access_intervals, summarize_intervals
from .breakdown import OccupationBreakdown, occupation_breakdown
from .gantt import GanttChart, build_gantt_chart
from .outliers import OutlierReport, find_outliers
from .patterns import PatternReport, detect_iterative_pattern
from .recorder import TraceRecorder
from .trace import MemoryTrace


class MemoryProfiler:
    """Attach allocator/storage instrumentation to a device and collect a trace."""

    def __init__(self, device: Device, metadata: Optional[Dict[str, object]] = None):
        self.device = device
        meta = {"device": device.spec.to_dict(), "allocator": device.allocator.name,
                "execution_mode": device.execution_mode}
        meta.update(metadata or {})
        self.recorder = TraceRecorder(device.clock, metadata=meta)
        self._attached = False
        self._trace: Optional[MemoryTrace] = None

    # -- lifecycle --------------------------------------------------------------------

    def start(self) -> "MemoryProfiler":
        """Attach the recorder to the device and begin collecting behaviors."""
        if not self._attached:
            self.device.add_listener(self.recorder)
            self._attached = True
        return self

    def stop(self) -> MemoryTrace:
        """Detach from the device and freeze the trace."""
        if self._attached:
            self.device.remove_listener(self.recorder)
            self._attached = False
        self._trace = self.recorder.to_trace()
        return self._trace

    def __enter__(self) -> "MemoryProfiler":
        return self.start()

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        self.stop()

    # -- recorder passthrough (so the profiler can be handed to the Trainer) -------------

    def begin_iteration(self, index: int) -> None:
        """Forward an iteration start to the recorder."""
        self.recorder.begin_iteration(index)

    def end_iteration(self, index: int) -> None:
        """Forward an iteration end to the recorder."""
        self.recorder.end_iteration(index)

    # -- results ------------------------------------------------------------------------

    def trace(self) -> MemoryTrace:
        """The recorded trace (finalizes it if the profiler is still attached)."""
        if self._trace is None or self._attached:
            self._trace = self.recorder.to_trace()
        return self._trace

    def access_intervals(self, include_lifecycle: bool = False) -> List[AccessInterval]:
        """All access-time intervals of the recorded trace."""
        return compute_access_intervals(self.trace(), include_lifecycle=include_lifecycle)

    def ati_summary(self) -> AtiSummary:
        """Distribution summary of the recorded ATIs."""
        return summarize_intervals(self.access_intervals())

    def gantt_chart(self, max_iterations: Optional[int] = None) -> GanttChart:
        """Gantt chart (Figure 2) of the recorded trace."""
        return build_gantt_chart(self.trace(), max_iterations=max_iterations)

    def pattern_report(self, skip_warmup: int = 1) -> PatternReport:
        """Iterative-pattern report of the recorded trace."""
        return detect_iterative_pattern(self.trace(), skip_warmup=skip_warmup)

    def outlier_report(self, **kwargs) -> OutlierReport:
        """Outlier behaviors (Figure 4) of the recorded trace."""
        return find_outliers(self.access_intervals(), **kwargs)

    def breakdown(self, label: str = "") -> OccupationBreakdown:
        """Occupation breakdown (Figures 5-7) of the recorded trace."""
        return occupation_breakdown(self.trace(), label=label)

    def event_count(self) -> int:
        """Number of behaviors recorded so far."""
        return len(self.recorder)

    def require_attached(self) -> None:
        """Raise if the profiler is not currently attached to the device."""
        if not self._attached:
            raise TraceError("the profiler is not attached; call start() first")
