"""Trace recorder: the instrumentation the paper adds to the runtime.

:class:`TraceRecorder` implements the device's
:class:`~repro.device.hooks.MemoryEventListener` interface and turns every
allocator/storage notification into a timestamped :class:`MemoryEvent`.
It also tracks block lifetimes (for the Gantt chart of Figure 2) and
iteration boundaries (for the iterative-pattern analysis).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..device.clock import DeviceClock
from ..device.hooks import MemoryEventListener
from .events import BlockLifetime, IterationMark, MemoryCategory, MemoryEvent, MemoryEventKind
from .trace import MemoryTrace


class TraceRecorder(MemoryEventListener):
    """Records malloc/free/read/write behaviors with simulated timestamps."""

    def __init__(self, clock: DeviceClock, metadata: Optional[dict] = None):
        self.clock = clock
        self.metadata = dict(metadata or {})
        self.events: List[MemoryEvent] = []
        self.lifetimes: List[BlockLifetime] = []
        self.iteration_marks: List[IterationMark] = []
        self._open_lifetimes: Dict[int, BlockLifetime] = {}
        self._current_iteration = -1
        self._next_event_id = 0
        self.enabled = True

    # -- iteration bookkeeping ------------------------------------------------------

    @property
    def current_iteration(self) -> int:
        """Index of the iteration currently being recorded (-1 outside any)."""
        return self._current_iteration

    def begin_iteration(self, index: int) -> None:
        """Mark the start of training iteration ``index``."""
        self._current_iteration = index
        self.iteration_marks.append(IterationMark(index=index, start_ns=self.clock.now_ns))

    def end_iteration(self, index: int) -> None:
        """Mark the end of training iteration ``index``."""
        for mark in reversed(self.iteration_marks):
            if mark.index == index and mark.end_ns is None:
                mark.end_ns = self.clock.now_ns
                break
        self._current_iteration = -1

    # -- event capture ----------------------------------------------------------------

    def _append(self, kind: MemoryEventKind, block_id: int, address: int, size: int,
                category: MemoryCategory, tag: str, op: str = "") -> MemoryEvent:
        event = MemoryEvent(
            event_id=self._next_event_id,
            kind=kind,
            timestamp_ns=self.clock.now_ns,
            block_id=block_id,
            address=address,
            size=size,
            category=category,
            tag=tag,
            iteration=self._current_iteration,
            op=op,
        )
        self._next_event_id += 1
        self.events.append(event)
        return event

    def on_malloc(self, block, requested_size: int) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.MALLOC, block.block_id, block.address, block.size,
                     block.category, block.tag)
        lifetime = BlockLifetime(
            block_id=block.block_id,
            address=block.address,
            size=block.size,
            category=block.category,
            tag=block.tag,
            malloc_ns=self.clock.now_ns,
            iteration=self._current_iteration,
        )
        self._open_lifetimes[block.block_id] = lifetime
        self.lifetimes.append(lifetime)

    def on_free(self, block) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.FREE, block.block_id, block.address, block.size,
                     block.category, block.tag)
        lifetime = self._open_lifetimes.pop(block.block_id, None)
        if lifetime is not None:
            lifetime.free_ns = self.clock.now_ns

    def on_read(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.READ, block.block_id, block.address, block.size,
                     block.category, block.tag, op=op)
        self._bump_access(block.block_id)

    def on_write(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.WRITE, block.block_id, block.address, block.size,
                     block.category, block.tag, op=op)
        self._bump_access(block.block_id)

    def on_segment_alloc(self, segment) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.SEGMENT_ALLOC, -segment.segment_id, segment.address,
                     segment.size, MemoryCategory.UNKNOWN, f"segment:{segment.pool}")

    def on_segment_free(self, segment) -> None:
        if not self.enabled:
            return
        self._append(MemoryEventKind.SEGMENT_FREE, -segment.segment_id, segment.address,
                     segment.size, MemoryCategory.UNKNOWN, f"segment:{segment.pool}")

    def _bump_access(self, block_id: int) -> None:
        lifetime = self._open_lifetimes.get(block_id)
        if lifetime is not None:
            lifetime.access_count += 1

    # -- pausing ----------------------------------------------------------------------

    def pause(self) -> None:
        """Temporarily stop recording (e.g. during warm-up iterations)."""
        self.enabled = False

    def resume(self) -> None:
        """Resume recording after :meth:`pause`."""
        self.enabled = True

    # -- trace construction --------------------------------------------------------------

    def to_trace(self) -> MemoryTrace:
        """Freeze the recorded behaviors into an immutable :class:`MemoryTrace`."""
        return MemoryTrace(
            events=list(self.events),
            lifetimes=list(self.lifetimes),
            iteration_marks=list(self.iteration_marks),
            metadata=dict(self.metadata),
            end_ns=self.clock.now_ns,
        )

    def __len__(self) -> int:
        return len(self.events)
