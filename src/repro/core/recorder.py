"""Trace recorder: the instrumentation the paper adds to the runtime.

:class:`TraceRecorder` implements the device's
:class:`~repro.device.hooks.MemoryEventListener` interface and turns every
allocator/storage notification into one timestamped row of a
:class:`~repro.core.trace.ColumnarEventLog`.  The recorder is the hottest
non-numeric path of a profiled run — every malloc/free/read/write lands
here — so it appends straight into growable typed arrays instead of building
a :class:`~repro.core.events.MemoryEvent` object per behavior; the object
view is synthesized lazily by :class:`~repro.core.trace.MemoryTrace` only
when something actually asks for it.

It also tracks block lifetimes (for the Gantt chart of Figure 2) and
iteration boundaries (for the iterative-pattern analysis).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional

from ..device.clock import DeviceClock
from ..device.hooks import MemoryEventListener
from .events import BlockLifetime, IterationMark, MemoryCategory, MemoryEvent, MemoryEventKind
from .trace import CATEGORY_CODES, KIND_CODES, ColumnarEventLog, MemoryTrace

_MALLOC = KIND_CODES[MemoryEventKind.MALLOC]
_FREE = KIND_CODES[MemoryEventKind.FREE]
_READ = KIND_CODES[MemoryEventKind.READ]
_WRITE = KIND_CODES[MemoryEventKind.WRITE]
_SEGMENT_ALLOC = KIND_CODES[MemoryEventKind.SEGMENT_ALLOC]
_SEGMENT_FREE = KIND_CODES[MemoryEventKind.SEGMENT_FREE]
_SWAP_OUT = KIND_CODES[MemoryEventKind.SWAP_OUT]
_SWAP_IN = KIND_CODES[MemoryEventKind.SWAP_IN]
_RECOMPUTE_DROP = KIND_CODES[MemoryEventKind.RECOMPUTE_DROP]
_RECOMPUTE = KIND_CODES[MemoryEventKind.RECOMPUTE]
_UNKNOWN_CATEGORY = CATEGORY_CODES[MemoryCategory.UNKNOWN]


class TraceRecorder(MemoryEventListener):
    """Records malloc/free/read/write behaviors with simulated timestamps."""

    def __init__(self, clock: DeviceClock, metadata: Optional[dict] = None):
        self.clock = clock
        self.metadata = dict(metadata or {})
        self.log = ColumnarEventLog()
        self.lifetimes: List[BlockLifetime] = []
        self.iteration_marks: List[IterationMark] = []
        self._open_lifetimes: Dict[int, BlockLifetime] = {}
        self._current_iteration = -1
        self.enabled = True
        # Template capture: when a timing tape is attached to the clock, the
        # recorder notes each event's position in the tape (the number of
        # timing atoms that precede it) so the replay engine can re-derive
        # event timestamps from re-priced atom durations.
        self._tape = getattr(clock, "tape", None)
        self.event_tape_positions = array("q") if self._tape is not None else None
        #: Per-iteration ``[begin, end]`` tape positions (parallel to
        #: ``iteration_marks``; end is -1 until the iteration closes).
        self.mark_tape_spans: List[List[int]] = []

    # -- iteration bookkeeping ------------------------------------------------------

    @property
    def current_iteration(self) -> int:
        """Index of the iteration currently being recorded (-1 outside any)."""
        return self._current_iteration

    def begin_iteration(self, index: int) -> None:
        """Mark the start of training iteration ``index``."""
        self._current_iteration = index
        self.iteration_marks.append(IterationMark(index=index, start_ns=self.clock.now_ns))
        if self.event_tape_positions is not None:
            self.mark_tape_spans.append([len(self._tape), -1])

    def end_iteration(self, index: int) -> None:
        """Mark the end of training iteration ``index``."""
        for position in range(len(self.iteration_marks) - 1, -1, -1):
            mark = self.iteration_marks[position]
            if mark.index == index and mark.end_ns is None:
                mark.end_ns = self.clock.now_ns
                if (self.event_tape_positions is not None
                        and position < len(self.mark_tape_spans)):
                    self.mark_tape_spans[position][1] = len(self._tape)
                break
        self._current_iteration = -1

    # -- event capture ----------------------------------------------------------------

    @property
    def events(self) -> List[MemoryEvent]:
        """Object view of the recorded behaviors (synthesized; for inspection)."""
        return self.to_trace().events

    def on_malloc(self, block, requested_size: int) -> None:
        if not self.enabled:
            return
        now_ns = self.clock.now_ns
        self._note_tape_position()
        self.log.append(_MALLOC, now_ns, block.block_id, block.address, block.size,
                        CATEGORY_CODES[block.category], self._current_iteration,
                        block.tag, "")
        lifetime = BlockLifetime(
            block_id=block.block_id,
            address=block.address,
            size=block.size,
            category=block.category,
            tag=block.tag,
            malloc_ns=now_ns,
            iteration=self._current_iteration,
        )
        self._open_lifetimes[block.block_id] = lifetime
        self.lifetimes.append(lifetime)

    def on_free(self, block) -> None:
        if not self.enabled:
            return
        now_ns = self.clock.now_ns
        self._note_tape_position()
        self.log.append(_FREE, now_ns, block.block_id, block.address, block.size,
                        CATEGORY_CODES[block.category], self._current_iteration,
                        block.tag, "")
        lifetime = self._open_lifetimes.pop(block.block_id, None)
        if lifetime is not None:
            lifetime.free_ns = now_ns

    def on_read(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_READ, self.clock.now_ns, block.block_id, block.address,
                        block.size, CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)
        self._bump_access(block.block_id)

    def on_write(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_WRITE, self.clock.now_ns, block.block_id, block.address,
                        block.size, CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)
        self._bump_access(block.block_id)

    def on_segment_alloc(self, segment) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_SEGMENT_ALLOC, self.clock.now_ns, -segment.segment_id,
                        segment.address, segment.size, _UNKNOWN_CATEGORY,
                        self._current_iteration, f"segment:{segment.pool}", "")

    def on_segment_free(self, segment) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_SEGMENT_FREE, self.clock.now_ns, -segment.segment_id,
                        segment.address, segment.size, _UNKNOWN_CATEGORY,
                        self._current_iteration, f"segment:{segment.pool}", "")

    def on_swap_out(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_SWAP_OUT, self.clock.now_ns, block.block_id, block.address,
                        block.size, CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)

    def on_swap_in(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_SWAP_IN, self.clock.now_ns, block.block_id, block.address,
                        block.size, CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)

    def on_recompute_drop(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_RECOMPUTE_DROP, self.clock.now_ns, block.block_id,
                        block.address, block.size,
                        CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)

    def on_recompute(self, block, nbytes: int, op: str) -> None:
        if not self.enabled:
            return
        self._note_tape_position()
        self.log.append(_RECOMPUTE, self.clock.now_ns, block.block_id,
                        block.address, block.size,
                        CATEGORY_CODES[block.category],
                        self._current_iteration, block.tag, op)

    def _note_tape_position(self) -> None:
        if self.event_tape_positions is not None:
            self.event_tape_positions.append(len(self._tape))

    def _bump_access(self, block_id: int) -> None:
        lifetime = self._open_lifetimes.get(block_id)
        if lifetime is not None:
            lifetime.access_count += 1

    # -- pausing ----------------------------------------------------------------------

    def pause(self) -> None:
        """Temporarily stop recording (e.g. during warm-up iterations)."""
        self.enabled = False

    def resume(self) -> None:
        """Resume recording after :meth:`pause`."""
        self.enabled = True

    # -- trace construction --------------------------------------------------------------

    def to_trace(self) -> MemoryTrace:
        """Freeze the recorded behaviors into an immutable :class:`MemoryTrace`."""
        tags, ops = self.log.snapshot_strings()
        return MemoryTrace(
            columns=self.log.snapshot_columns(),
            event_tags=tags,
            event_ops=ops,
            lifetimes=list(self.lifetimes),
            iteration_marks=list(self.iteration_marks),
            metadata=dict(self.metadata),
            end_ns=self.clock.now_ns,
        )

    def __len__(self) -> int:
        return len(self.log)
