"""The memory trace container and its persistence formats.

A :class:`MemoryTrace` is the immutable result of a profiled training run:
the full behavior stream, the block lifetimes and the iteration boundaries.
Every analysis in :mod:`repro.core` consumes this object, and it can be saved
to / loaded from JSON (complete) or exported to CSV (events only, convenient
for external plotting).
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import EmptyTraceError, TraceFormatError
from .events import BlockLifetime, IterationMark, MemoryCategory, MemoryEvent, MemoryEventKind

PathLike = Union[str, Path]

#: Current on-disk format version.
TRACE_FORMAT_VERSION = 1


@dataclass
class MemoryTrace:
    """All memory behaviors recorded during one profiled run."""

    events: List[MemoryEvent] = field(default_factory=list)
    lifetimes: List[BlockLifetime] = field(default_factory=list)
    iteration_marks: List[IterationMark] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    end_ns: int = 0

    # -- basic accessors ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        """Whether no event was recorded."""
        return not self.events

    def require_events(self) -> None:
        """Raise :class:`~repro.errors.EmptyTraceError` if the trace is empty."""
        if self.is_empty:
            raise EmptyTraceError("the memory trace contains no events")

    @property
    def start_ns(self) -> int:
        """Timestamp of the first event (0 for an empty trace)."""
        return self.events[0].timestamp_ns if self.events else 0

    @property
    def duration_ns(self) -> int:
        """Span from the first event to the recorded end of the run."""
        if not self.events:
            return 0
        end = max(self.end_ns, self.events[-1].timestamp_ns)
        return end - self.start_ns

    def block_behaviors(self) -> List[MemoryEvent]:
        """Only the paper's four block-level behaviors (no segment events)."""
        return [event for event in self.events if event.kind.is_block_behavior]

    def access_events(self) -> List[MemoryEvent]:
        """Only read/write behaviors."""
        return [event for event in self.events if event.kind.is_access]

    def events_by_kind(self, kind: MemoryEventKind) -> List[MemoryEvent]:
        """Events of one behavior kind."""
        return [event for event in self.events if event.kind is kind]

    def events_for_block(self, block_id: int) -> List[MemoryEvent]:
        """All events of one device memory block, in time order."""
        return [event for event in self.events if event.block_id == block_id]

    def block_ids(self) -> List[int]:
        """Identities of all blocks that appear in the trace (sorted)."""
        return sorted({event.block_id for event in self.events if event.block_id > 0})

    def events_by_block(self) -> Dict[int, List[MemoryEvent]]:
        """Group block-level behaviors by block id (insertion-ordered within a block)."""
        grouped: Dict[int, List[MemoryEvent]] = {}
        for event in self.events:
            if event.block_id <= 0 or not event.kind.is_block_behavior:
                continue
            grouped.setdefault(event.block_id, []).append(event)
        return grouped

    def events_in_iteration(self, iteration: int) -> List[MemoryEvent]:
        """All events attributed to one training iteration."""
        return [event for event in self.events if event.iteration == iteration]

    def iterations(self) -> List[int]:
        """Indices of all iterations that have a recorded mark."""
        return sorted(mark.index for mark in self.iteration_marks)

    def iteration_mark(self, index: int) -> Optional[IterationMark]:
        """The mark of iteration ``index`` (None if absent)."""
        for mark in self.iteration_marks:
            if mark.index == index:
                return mark
        return None

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of events of each kind."""
        counts: Dict[str, int] = {}
        for event in self.events:
            counts[event.kind.value] = counts.get(event.kind.value, 0) + 1
        return counts

    def counts_by_category(self) -> Dict[str, int]:
        """Number of block-level behaviors per memory category."""
        counts: Dict[str, int] = {}
        for event in self.block_behaviors():
            counts[event.category.value] = counts.get(event.category.value, 0) + 1
        return counts

    def live_bytes_timeline(self) -> List[tuple]:
        """``(timestamp_ns, live_bytes)`` after every malloc/free event."""
        live = 0
        timeline = []
        for event in self.events:
            if event.kind is MemoryEventKind.MALLOC:
                live += event.size
            elif event.kind is MemoryEventKind.FREE:
                live -= event.size
            else:
                continue
            timeline.append((event.timestamp_ns, live))
        return timeline

    def peak_live_bytes(self) -> int:
        """Highest number of simultaneously allocated bytes."""
        timeline = self.live_bytes_timeline()
        return max((live for _, live in timeline), default=0)

    # -- persistence -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serialize the complete trace to a JSON-friendly dictionary."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "metadata": self.metadata,
            "end_ns": self.end_ns,
            "events": [event.to_dict() for event in self.events],
            "lifetimes": [lifetime.to_dict() for lifetime in self.lifetimes],
            "iteration_marks": [mark.to_dict() for mark in self.iteration_marks],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "MemoryTrace":
        """Reconstruct a trace from :meth:`to_dict` output."""
        try:
            version = int(data.get("format_version", -1))
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(f"unsupported trace format version {version}")
            return MemoryTrace(
                events=[MemoryEvent.from_dict(entry) for entry in data.get("events", [])],
                lifetimes=[BlockLifetime.from_dict(entry)
                           for entry in data.get("lifetimes", [])],
                iteration_marks=[IterationMark.from_dict(entry)
                                 for entry in data.get("iteration_marks", [])],
                metadata=dict(data.get("metadata", {})),
                end_ns=int(data.get("end_ns", 0)),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise TraceFormatError(f"malformed trace data: {error}") from error

    def save_json(self, path: PathLike) -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        return path

    @staticmethod
    def load_json(path: PathLike) -> "MemoryTrace":
        """Load a trace previously written by :meth:`save_json`."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise TraceFormatError(f"invalid trace JSON: {error}") from error
        return MemoryTrace.from_dict(data)

    def export_events_csv(self, path: PathLike) -> Path:
        """Write the event stream to CSV (one row per behavior)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fields = ["event_id", "kind", "timestamp_ns", "block_id", "address", "size",
                  "category", "tag", "iteration", "op"]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for event in self.events:
                writer.writerow(event.to_dict())
        return path

    # -- misc --------------------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A compact dictionary summarizing the trace (used by reports and tests)."""
        return {
            "num_events": len(self.events),
            "num_blocks": len(self.block_ids()),
            "num_iterations": len(self.iteration_marks),
            "duration_ns": self.duration_ns,
            "peak_live_bytes": self.peak_live_bytes(),
            "counts_by_kind": self.counts_by_kind(),
        }
