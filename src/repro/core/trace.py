"""The memory trace container and its persistence formats.

A :class:`MemoryTrace` is the immutable result of a profiled training run:
the full behavior stream, the block lifetimes and the iteration boundaries.
Every analysis in :mod:`repro.core` consumes this object, and it can be saved
to / loaded from JSON (complete) or exported to CSV (events only, convenient
for external plotting).

Column-store layout (PR 1, columnar-first since PR 4)
-----------------------------------------------------
Besides the object-level ``events`` list, a trace exposes a columnar NumPy
view through :meth:`MemoryTrace.columns`: one :class:`EventColumns` record of
nine parallel ``int64`` arrays — ``event_id``, ``kind_code``,
``timestamp_ns``, ``block_id``, ``address``, ``size``, ``category_code``,
``iteration`` and ``device_rank`` — one entry per event, in recording order.
Enum-valued fields are stored as stable integer codes (:data:`KIND_CODES` /
:data:`CATEGORY_CODES`, with :data:`KIND_FROM_CODE` /
:data:`CATEGORY_FROM_CODE` for the reverse mapping) so every analysis can be
expressed as vectorized masks and reductions over the arrays.  The ATI
pairing (:mod:`repro.core.ati`), the occupation breakdown
(:mod:`repro.core.breakdown`) and the sweep engine's Eq.-1 screening all run
on this column store and never touch the Python event objects.

Since PR 4 the column store is the *primary* representation: the trace
recorder appends every behavior into a :class:`ColumnarEventLog` (growable
``array('q')`` typed arrays plus string side-lists for ``tag``/``op``) and
finalizes it straight into :class:`EventColumns` — no
:class:`~repro.core.events.MemoryEvent` object is ever constructed on the
hot path.  The ``MemoryTrace.events`` list is synthesized lazily, on first
access, for object-level consumers (JSON/CSV persistence, tests, the
object-based analyses); traces built *from* event objects (tests, JSON
loads) still derive their columns lazily as before, so both directions stay
fully interchangeable.
"""

from __future__ import annotations

import csv
import json
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..errors import EmptyTraceError, TraceFormatError
from .events import BlockLifetime, IterationMark, MemoryCategory, MemoryEvent, MemoryEventKind

PathLike = Union[str, Path]

#: Current on-disk format version.
TRACE_FORMAT_VERSION = 1

#: Stable integer codes for event kinds / categories, used by the column store.
KIND_CODES: Dict[MemoryEventKind, int] = {kind: i for i, kind in enumerate(MemoryEventKind)}
KIND_FROM_CODE: List[MemoryEventKind] = list(MemoryEventKind)
CATEGORY_CODES: Dict[MemoryCategory, int] = {cat: i for i, cat in enumerate(MemoryCategory)}
CATEGORY_FROM_CODE: List[MemoryCategory] = list(MemoryCategory)

_MALLOC_CODE = KIND_CODES[MemoryEventKind.MALLOC]
_FREE_CODE = KIND_CODES[MemoryEventKind.FREE]
_READ_CODE = KIND_CODES[MemoryEventKind.READ]
_WRITE_CODE = KIND_CODES[MemoryEventKind.WRITE]
_SWAP_OUT_CODE = KIND_CODES[MemoryEventKind.SWAP_OUT]
_SWAP_IN_CODE = KIND_CODES[MemoryEventKind.SWAP_IN]
_RECOMPUTE_DROP_CODE = KIND_CODES[MemoryEventKind.RECOMPUTE_DROP]
_RECOMPUTE_CODE = KIND_CODES[MemoryEventKind.RECOMPUTE]

#: Codes of the paper's four block-level behaviors.
BLOCK_BEHAVIOR_CODES = np.array(
    [_MALLOC_CODE, _FREE_CODE, _READ_CODE, _WRITE_CODE], dtype=np.int64)
#: Codes of the data-access behaviors (read/write).
ACCESS_CODES = np.array([_READ_CODE, _WRITE_CODE], dtype=np.int64)
#: Codes of the swap-engine actions (eviction / restoration).
SWAP_CODES = np.array([_SWAP_OUT_CODE, _SWAP_IN_CODE], dtype=np.int64)
#: Codes of the rematerialization actions (drop / compute replay).
RECOMPUTE_CODES = np.array([_RECOMPUTE_DROP_CODE, _RECOMPUTE_CODE],
                           dtype=np.int64)


@dataclass(frozen=True)
class EventColumns:
    """Column-oriented view of a trace's event stream.

    Every analysis that aggregates over the whole event stream (ATI
    extraction, occupation breakdown, live-bytes timelines) operates on these
    NumPy arrays instead of iterating :class:`MemoryEvent` objects — a
    50-scenario sweep spends its time in these bulk operations, so they must
    be vectorized.
    """

    event_id: np.ndarray      # int64
    kind_code: np.ndarray     # int64, see KIND_CODES
    timestamp_ns: np.ndarray  # int64
    block_id: np.ndarray      # int64
    size: np.ndarray          # int64
    category_code: np.ndarray  # int64, see CATEGORY_CODES
    iteration: np.ndarray     # int64
    device_rank: np.ndarray   # int64 (data-parallel rank; all zeros single-device)
    address: np.ndarray = None  # int64 device virtual addresses (filled by builders)

    def __len__(self) -> int:
        return int(self.event_id.size)

    @property
    def is_malloc(self) -> np.ndarray:
        """Boolean mask of malloc events."""
        return self.kind_code == _MALLOC_CODE

    @property
    def is_free(self) -> np.ndarray:
        """Boolean mask of free events."""
        return self.kind_code == _FREE_CODE

    @property
    def is_access(self) -> np.ndarray:
        """Boolean mask of read/write events."""
        return (self.kind_code == _READ_CODE) | (self.kind_code == _WRITE_CODE)

    @property
    def is_block_behavior(self) -> np.ndarray:
        """Boolean mask of the paper's four block-level behaviors."""
        return np.isin(self.kind_code, BLOCK_BEHAVIOR_CODES)

    @property
    def is_swap_out(self) -> np.ndarray:
        """Boolean mask of swap-engine eviction events."""
        return self.kind_code == _SWAP_OUT_CODE

    @property
    def is_swap_in(self) -> np.ndarray:
        """Boolean mask of swap-engine restoration events."""
        return self.kind_code == _SWAP_IN_CODE

    @property
    def is_swap(self) -> np.ndarray:
        """Boolean mask of swap traffic (evictions and restorations)."""
        return (self.kind_code == _SWAP_OUT_CODE) | (self.kind_code == _SWAP_IN_CODE)

    @property
    def is_recompute_drop(self) -> np.ndarray:
        """Boolean mask of rematerialization discards."""
        return self.kind_code == _RECOMPUTE_DROP_CODE

    @property
    def is_recompute(self) -> np.ndarray:
        """Boolean mask of rematerialization compute replays."""
        return self.kind_code == _RECOMPUTE_CODE

    @property
    def is_rematerialization(self) -> np.ndarray:
        """Boolean mask of rematerialization traffic (drops and replays)."""
        return ((self.kind_code == _RECOMPUTE_DROP_CODE)
                | (self.kind_code == _RECOMPUTE_CODE))

    def live_deltas(self) -> np.ndarray:
        """Per-event change in live bytes (+size on malloc, -size on free).

        Live bytes follow *allocation* semantics: swap traffic does not move
        a block's allocation, so it contributes nothing here — the live-bytes
        series of a swapped run equals that of the unswapped run (modulo the
        stall-shifted timestamps), which is exactly what lets one run report
        both its would-be peak and its swap-reduced resident peak.
        """
        return np.where(self.is_malloc, self.size,
                        np.where(self.is_free, -self.size, 0))

    def resident_deltas(self) -> np.ndarray:
        """Per-event change in *device-resident* bytes.

        Like :meth:`live_deltas` but swap and rematerialization traffic move
        bytes off/onto the device: ``swap_out``/``recompute_drop`` subtract
        the block size, ``swap_in``/``recompute`` add it back.  The engine
        guarantees every eviction is balanced by a restoration (a block freed
        while off-device gets a zero-copy ``"discard"`` restoration
        immediately before its free event), so the cumulative sum of these
        deltas is the device-resident footprint over time.
        """
        return np.where(self.is_malloc | self.is_swap_in | self.is_recompute,
                        self.size,
                        np.where(self.is_free | self.is_swap_out
                                 | self.is_recompute_drop, -self.size, 0))


class ColumnarEventLog:
    """Growable typed-array event log the trace recorder appends into.

    Each numeric field is an ``array('q')`` (a C-backed growable ``int64``
    array with amortized O(1) append); the two string fields (``tag``,
    ``op``) are plain Python lists.  Appending one behavior is therefore a
    handful of C-level appends instead of a frozen-dataclass construction —
    this is what makes symbolic-mode sweeps recorder-bound rather than
    object-allocation-bound.  :meth:`snapshot_columns` converts the log into
    an immutable :class:`EventColumns` (a bulk copy, so the log can keep
    growing afterwards without invalidating earlier snapshots).
    """

    __slots__ = ("kind_code", "timestamp_ns", "block_id", "address", "size",
                 "category_code", "iteration", "tag", "op")

    def __init__(self) -> None:
        self.kind_code = array("q")
        self.timestamp_ns = array("q")
        self.block_id = array("q")
        self.address = array("q")
        self.size = array("q")
        self.category_code = array("q")
        self.iteration = array("q")
        self.tag: List[str] = []
        self.op: List[str] = []

    def __len__(self) -> int:
        return len(self.kind_code)

    def append(self, kind_code: int, timestamp_ns: int, block_id: int,
               address: int, size: int, category_code: int, iteration: int,
               tag: str, op: str) -> int:
        """Append one behavior; returns the event id it was assigned."""
        event_id = len(self.kind_code)
        self.kind_code.append(kind_code)
        self.timestamp_ns.append(timestamp_ns)
        self.block_id.append(block_id)
        self.address.append(address)
        self.size.append(size)
        self.category_code.append(category_code)
        self.iteration.append(iteration)
        self.tag.append(tag)
        self.op.append(op)
        return event_id

    def snapshot_columns(self) -> EventColumns:
        """Copy the current log contents into an immutable column record."""
        n = len(self.kind_code)
        return EventColumns(
            event_id=np.arange(n, dtype=np.int64),
            kind_code=np.array(self.kind_code, dtype=np.int64),
            timestamp_ns=np.array(self.timestamp_ns, dtype=np.int64),
            block_id=np.array(self.block_id, dtype=np.int64),
            size=np.array(self.size, dtype=np.int64),
            category_code=np.array(self.category_code, dtype=np.int64),
            iteration=np.array(self.iteration, dtype=np.int64),
            device_rank=np.zeros(n, dtype=np.int64),
            address=np.array(self.address, dtype=np.int64),
        )

    def snapshot_strings(self) -> Tuple[List[str], List[str]]:
        """Copies of the per-event ``tag`` and ``op`` side-lists."""
        return list(self.tag), list(self.op)


def _columns_from_events(events: Sequence[MemoryEvent]) -> EventColumns:
    """Build the column record from a list of event objects (legacy direction)."""
    n = len(events)
    event_id = np.empty(n, dtype=np.int64)
    kind_code = np.empty(n, dtype=np.int64)
    timestamp_ns = np.empty(n, dtype=np.int64)
    block_id = np.empty(n, dtype=np.int64)
    address = np.empty(n, dtype=np.int64)
    size = np.empty(n, dtype=np.int64)
    category_code = np.empty(n, dtype=np.int64)
    iteration = np.empty(n, dtype=np.int64)
    device_rank = np.empty(n, dtype=np.int64)
    for i, event in enumerate(events):
        event_id[i] = event.event_id
        kind_code[i] = KIND_CODES[event.kind]
        timestamp_ns[i] = event.timestamp_ns
        block_id[i] = event.block_id
        address[i] = event.address
        size[i] = event.size
        category_code[i] = CATEGORY_CODES[event.category]
        iteration[i] = event.iteration
        device_rank[i] = event.device_rank
    return EventColumns(event_id=event_id, kind_code=kind_code,
                        timestamp_ns=timestamp_ns, block_id=block_id,
                        size=size, category_code=category_code,
                        iteration=iteration, device_rank=device_rank,
                        address=address)


class MemoryTrace:
    """All memory behaviors recorded during one profiled run.

    A trace holds one of two equivalent representations of its event stream
    and converts between them lazily:

    * *columnar* (the recorder's native output): an :class:`EventColumns`
      record plus the ``tag``/``op`` string side-lists.  The ``events``
      property synthesizes :class:`~repro.core.events.MemoryEvent` objects on
      first access, so object-level consumers keep working unchanged.
    * *object-level* (tests, ``from_dict``): a list of event objects;
      :meth:`columns` derives the column record on first use, cached keyed on
      the event count so a recorder that is still appending events
      (``profiler.trace()`` mid-run) gets a fresh view.
    """

    def __init__(self, events: Optional[List[MemoryEvent]] = None,
                 lifetimes: Optional[List[BlockLifetime]] = None,
                 iteration_marks: Optional[List[IterationMark]] = None,
                 metadata: Optional[Dict[str, object]] = None,
                 end_ns: int = 0,
                 columns: Optional[EventColumns] = None,
                 event_tags: Optional[List[str]] = None,
                 event_ops: Optional[List[str]] = None):
        if events is None and columns is None:
            events = []
        self._events: Optional[List[MemoryEvent]] = events
        self._columns_cache: Optional[EventColumns] = columns
        self._event_tags = event_tags
        self._event_ops = event_ops
        self.lifetimes: List[BlockLifetime] = lifetimes if lifetimes is not None else []
        self.iteration_marks: List[IterationMark] = (
            iteration_marks if iteration_marks is not None else [])
        self.metadata: Dict[str, object] = metadata if metadata is not None else {}
        self.end_ns = end_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MemoryTrace(num_events={len(self)}, "
                f"num_lifetimes={len(self.lifetimes)}, end_ns={self.end_ns})")

    # -- column store -------------------------------------------------------------------

    def columns(self) -> EventColumns:
        """Column-oriented NumPy view of the event stream (built lazily, cached)."""
        cached = self._columns_cache
        if cached is not None and (self._events is None
                                   or len(cached) == len(self._events)):
            return cached
        columns = _columns_from_events(self._events or [])
        self._columns_cache = columns
        return columns

    # -- object view --------------------------------------------------------------------

    @property
    def events(self) -> List[MemoryEvent]:
        """The event stream as objects (synthesized lazily for columnar traces)."""
        if self._events is None:
            self._events = self._synthesize_events()
        return self._events

    def _synthesize_events(self) -> List[MemoryEvent]:
        """Materialize event objects from the column store (back-compat path)."""
        cols = self._columns_cache
        if cols is None or len(cols) == 0:
            return []
        n = len(cols)
        tags = self._event_tags if self._event_tags is not None else [""] * n
        ops = self._event_ops if self._event_ops is not None else [""] * n
        kinds = [KIND_FROM_CODE[code] for code in cols.kind_code.tolist()]
        categories = [CATEGORY_FROM_CODE[code] for code in cols.category_code.tolist()]
        addresses = (cols.address.tolist() if cols.address is not None else [0] * n)
        return [
            MemoryEvent(event_id=eid, kind=kind, timestamp_ns=ts, block_id=bid,
                        address=addr, size=sz, category=cat, tag=tag,
                        iteration=it, op=op, device_rank=rank)
            for eid, kind, ts, bid, addr, sz, cat, tag, it, op, rank in zip(
                cols.event_id.tolist(), kinds, cols.timestamp_ns.tolist(),
                cols.block_id.tolist(), addresses, cols.size.tolist(),
                categories, tags, cols.iteration.tolist(), ops,
                cols.device_rank.tolist())
        ]

    def event_strings(self) -> Tuple[List[str], List[str]]:
        """Per-event ``(tags, ops)`` lists, whichever representation is live."""
        if self._events is not None:
            return ([event.tag for event in self._events],
                    [event.op for event in self._events])
        if self._event_tags is not None and self._event_ops is not None:
            return list(self._event_tags), list(self._event_ops)
        n = len(self)
        return [""] * n, [""] * n

    # -- basic accessors ----------------------------------------------------------------

    def __len__(self) -> int:
        if self._events is not None:
            return len(self._events)
        return len(self._columns_cache) if self._columns_cache is not None else 0

    @property
    def is_empty(self) -> bool:
        """Whether no event was recorded."""
        return len(self) == 0

    def require_events(self) -> None:
        """Raise :class:`~repro.errors.EmptyTraceError` if the trace is empty."""
        if self.is_empty:
            raise EmptyTraceError("the memory trace contains no events")

    @property
    def start_ns(self) -> int:
        """Timestamp of the first event (0 for an empty trace)."""
        if self.is_empty:
            return 0
        if self._events is not None:
            return self._events[0].timestamp_ns
        return int(self._columns_cache.timestamp_ns[0])

    @property
    def duration_ns(self) -> int:
        """Span from the first event to the recorded end of the run."""
        if self.is_empty:
            return 0
        if self._events is not None:
            last = self._events[-1].timestamp_ns
        else:
            last = int(self._columns_cache.timestamp_ns[-1])
        return max(self.end_ns, last) - self.start_ns

    def block_behaviors(self) -> List[MemoryEvent]:
        """Only the paper's four block-level behaviors (no segment events)."""
        return [event for event in self.events if event.kind.is_block_behavior]

    def access_events(self) -> List[MemoryEvent]:
        """Only read/write behaviors."""
        return [event for event in self.events if event.kind.is_access]

    def events_by_kind(self, kind: MemoryEventKind) -> List[MemoryEvent]:
        """Events of one behavior kind."""
        return [event for event in self.events if event.kind is kind]

    def events_for_block(self, block_id: int) -> List[MemoryEvent]:
        """All events of one device memory block, in time order."""
        return [event for event in self.events if event.block_id == block_id]

    def block_ids(self) -> List[int]:
        """Identities of all blocks that appear in the trace (sorted)."""
        if self.is_empty:
            return []
        ids = self.columns().block_id
        return [int(b) for b in np.unique(ids[ids > 0])]

    def events_by_block(self) -> Dict[int, List[MemoryEvent]]:
        """Group block-level behaviors by block id (insertion-ordered within a block)."""
        grouped: Dict[int, List[MemoryEvent]] = {}
        for event in self.events:
            if event.block_id <= 0 or not event.kind.is_block_behavior:
                continue
            grouped.setdefault(event.block_id, []).append(event)
        return grouped

    def events_in_iteration(self, iteration: int) -> List[MemoryEvent]:
        """All events attributed to one training iteration."""
        return [event for event in self.events if event.iteration == iteration]

    # -- multi-device (data-parallel) views -------------------------------------------

    def ranks(self) -> List[int]:
        """Device ranks that appear in the trace (``[0]`` for single-device)."""
        if self.is_empty:
            return []
        return [int(rank) for rank in np.unique(self.columns().device_rank)]

    def for_rank(self, rank: int) -> "MemoryTrace":
        """The single-rank slice of a (possibly merged multi-device) trace.

        Events and lifetimes of other ranks are dropped; iteration marks and
        metadata are shared across ranks and kept as-is.
        """
        metadata = dict(self.metadata)
        metadata["device_rank"] = int(rank)
        cols = self.columns()
        mask = cols.device_rank == rank
        indices = np.nonzero(mask)[0].tolist()
        tags, ops = self.event_strings()
        sliced = EventColumns(
            event_id=cols.event_id[mask],
            kind_code=cols.kind_code[mask],
            timestamp_ns=cols.timestamp_ns[mask],
            block_id=cols.block_id[mask],
            size=cols.size[mask],
            category_code=cols.category_code[mask],
            iteration=cols.iteration[mask],
            device_rank=cols.device_rank[mask],
            address=cols.address[mask] if cols.address is not None else None,
        )
        return MemoryTrace(
            columns=sliced,
            event_tags=[tags[i] for i in indices],
            event_ops=[ops[i] for i in indices],
            lifetimes=[lifetime for lifetime in self.lifetimes
                       if lifetime.device_rank == rank],
            iteration_marks=list(self.iteration_marks),
            metadata=metadata,
            end_ns=self.end_ns,
        )

    def iterations(self) -> List[int]:
        """Indices of all iterations that have a recorded mark."""
        return sorted(mark.index for mark in self.iteration_marks)

    def iteration_mark(self, index: int) -> Optional[IterationMark]:
        """The mark of iteration ``index`` (None if absent)."""
        for mark in self.iteration_marks:
            if mark.index == index:
                return mark
        return None

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of events of each kind."""
        if self.is_empty:
            return {}
        codes, counts = np.unique(self.columns().kind_code, return_counts=True)
        return {KIND_FROM_CODE[int(code)].value: int(count)
                for code, count in zip(codes, counts)}

    def counts_by_category(self) -> Dict[str, int]:
        """Number of block-level behaviors per memory category."""
        if self.is_empty:
            return {}
        cols = self.columns()
        cats = cols.category_code[cols.is_block_behavior]
        codes, counts = np.unique(cats, return_counts=True)
        return {CATEGORY_FROM_CODE[int(code)].value: int(count)
                for code, count in zip(codes, counts)}

    def live_bytes_series(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(timestamps_ns, live_bytes)`` arrays after every malloc/free event."""
        if self.is_empty:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        cols = self.columns()
        mask = cols.is_malloc | cols.is_free
        return cols.timestamp_ns[mask], np.cumsum(cols.live_deltas()[mask])

    def live_bytes_timeline(self) -> List[tuple]:
        """``(timestamp_ns, live_bytes)`` after every malloc/free event."""
        timestamps, live = self.live_bytes_series()
        return [(int(ts), int(bytes_)) for ts, bytes_ in zip(timestamps, live)]

    def peak_live_bytes(self) -> int:
        """Highest number of simultaneously allocated bytes."""
        _, live = self.live_bytes_series()
        if live.size == 0:
            return 0
        return int(live.max())

    # -- swap-execution views (populated by repro.swap's engine) -----------------------

    def swap_events(self) -> List[MemoryEvent]:
        """Swap traffic (``swap_out``/``swap_in``) emitted by the execution engine."""
        return [event for event in self.events if event.kind.is_swap]

    def has_swap_events(self) -> bool:
        """Whether the swap-execution engine ran during this trace."""
        if self.is_empty:
            return False
        return bool(self.columns().is_swap.any())

    def recompute_events(self) -> List[MemoryEvent]:
        """Rematerialization traffic (``recompute_drop``/``recompute``)."""
        return [event for event in self.events if event.kind.is_recompute]

    def has_recompute_events(self) -> bool:
        """Whether the engine executed any rematerialization during this trace."""
        if self.is_empty:
            return False
        return bool(self.columns().is_rematerialization.any())

    def resident_bytes_series(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(timestamps_ns, resident_bytes)`` after every residency-changing event.

        Residency-changing events are malloc/free plus the engine's
        ``swap_out``/``swap_in`` and ``recompute_drop``/``recompute``.
        Without engine traffic this is identical to
        :meth:`live_bytes_series`; with it, the series is the footprint that
        actually had to fit on the device — its maximum is the *measured*
        peak a swap plan achieved, compared against the planner's predicted
        peak by the ``repro.swap`` validation suite.
        """
        if self.is_empty:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        cols = self.columns()
        mask = (cols.is_malloc | cols.is_free | cols.is_swap
                | cols.is_rematerialization)
        return cols.timestamp_ns[mask], np.cumsum(cols.resident_deltas()[mask])

    def peak_resident_bytes(self) -> int:
        """Highest number of bytes simultaneously *resident on the device*."""
        _, resident = self.resident_bytes_series()
        if resident.size == 0:
            return 0
        return int(resident.max())

    # -- persistence -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serialize the complete trace to a JSON-friendly dictionary."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "metadata": self.metadata,
            "end_ns": self.end_ns,
            "events": [event.to_dict() for event in self.events],
            "lifetimes": [lifetime.to_dict() for lifetime in self.lifetimes],
            "iteration_marks": [mark.to_dict() for mark in self.iteration_marks],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "MemoryTrace":
        """Reconstruct a trace from :meth:`to_dict` output."""
        try:
            version = int(data.get("format_version", -1))
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(f"unsupported trace format version {version}")
            return MemoryTrace(
                events=[MemoryEvent.from_dict(entry) for entry in data.get("events", [])],
                lifetimes=[BlockLifetime.from_dict(entry)
                           for entry in data.get("lifetimes", [])],
                iteration_marks=[IterationMark.from_dict(entry)
                                 for entry in data.get("iteration_marks", [])],
                metadata=dict(data.get("metadata", {})),
                end_ns=int(data.get("end_ns", 0)),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise TraceFormatError(f"malformed trace data: {error}") from error

    def save_json(self, path: PathLike) -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        return path

    @staticmethod
    def load_json(path: PathLike) -> "MemoryTrace":
        """Load a trace previously written by :meth:`save_json`."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise TraceFormatError(f"invalid trace JSON: {error}") from error
        return MemoryTrace.from_dict(data)

    def export_events_csv(self, path: PathLike) -> Path:
        """Write the event stream to CSV (one row per behavior)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fields = ["event_id", "kind", "timestamp_ns", "block_id", "address", "size",
                  "category", "tag", "iteration", "op", "device_rank"]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for event in self.events:
                writer.writerow(event.to_dict())
        return path

    # -- misc --------------------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A compact dictionary summarizing the trace (used by reports and tests)."""
        return {
            "num_events": len(self),
            "num_blocks": len(self.block_ids()),
            "num_iterations": len(self.iteration_marks),
            "duration_ns": self.duration_ns,
            "peak_live_bytes": self.peak_live_bytes(),
            "counts_by_kind": self.counts_by_kind(),
        }


def merge_rank_traces(traces: Sequence[MemoryTrace]) -> MemoryTrace:
    """Merge per-rank traces of one data-parallel run into a single trace.

    Each input trace is the recording of one replica device.  The merge

    * stamps every event and lifetime with its ``device_rank``;
    * offsets block ids so that rank-local identities stay unique in the
      merged stream (ATI pairing and the per-block analyses keep working on
      the merged trace without cross-rank aliasing);
    * orders events by ``(timestamp, rank)`` and renumbers ``event_id``
      contiguously so that event-order semantics (Figure 4's x-axis, the ATI
      closing-event sort) remain meaningful;
    * unions iteration marks per index (earliest start, latest end) since
      ranks enter and leave iterations at slightly different simulated times.

    A single-trace merge returns the input unchanged (rank 0 is the
    degenerate case), so single-device sessions stay byte-identical.

    The merge is fully columnar: the per-rank column stores are concatenated,
    block ids shifted and the global ``(timestamp, rank, event_id)`` order
    computed with one ``np.lexsort`` — no per-event Python objects are built,
    so merging large multi-replica symbolic traces stays array-speed.
    """
    traces = list(traces)
    if not traces:
        raise EmptyTraceError("cannot merge zero rank traces")
    if len(traces) == 1:
        return traces[0]

    from dataclasses import replace as _replace

    per_rank_cols = [trace.columns() for trace in traces]

    # Block ids are positive; segment pseudo-ids are negative.  Offset both
    # per rank by the running maximum magnitude so identities never collide.
    lifetimes: List[BlockLifetime] = []
    shifted_block_ids: List[np.ndarray] = []
    block_offset = 0
    for rank, (trace, cols) in enumerate(zip(traces, per_rank_cols)):
        block_id = cols.block_id
        shifted_block_ids.append(
            np.where(block_id > 0, block_id + block_offset, block_id - block_offset))
        for lifetime in trace.lifetimes:
            lifetimes.append(_replace(lifetime, block_id=lifetime.block_id + block_offset,
                                      device_rank=rank))
        block_offset += int(np.abs(block_id).max()) if len(cols) else 0

    timestamp_ns = np.concatenate([cols.timestamp_ns for cols in per_rank_cols])
    rank_col = np.concatenate([np.full(len(cols), rank, dtype=np.int64)
                               for rank, cols in enumerate(per_rank_cols)])
    local_event_id = np.concatenate([cols.event_id for cols in per_rank_cols])
    # Primary key last: order by timestamp, then rank, then rank-local id.
    order = np.lexsort((local_event_id, rank_col, timestamp_ns))

    def _gather(name: str) -> np.ndarray:
        return np.concatenate([getattr(cols, name) for cols in per_rank_cols])[order]

    merged_columns = EventColumns(
        event_id=np.arange(order.size, dtype=np.int64),
        kind_code=_gather("kind_code"),
        timestamp_ns=timestamp_ns[order],
        block_id=np.concatenate(shifted_block_ids)[order],
        size=_gather("size"),
        category_code=_gather("category_code"),
        iteration=_gather("iteration"),
        device_rank=rank_col[order],
        address=_gather("address"),
    )
    all_tags: List[str] = []
    all_ops: List[str] = []
    for trace in traces:
        tags, ops = trace.event_strings()
        all_tags.extend(tags)
        all_ops.extend(ops)
    order_list = order.tolist()
    merged_tags = [all_tags[i] for i in order_list]
    merged_ops = [all_ops[i] for i in order_list]

    marks: Dict[int, IterationMark] = {}
    for trace in traces:
        for mark in trace.iteration_marks:
            merged = marks.get(mark.index)
            if merged is None:
                marks[mark.index] = IterationMark(index=mark.index,
                                                  start_ns=mark.start_ns,
                                                  end_ns=mark.end_ns,
                                                  meta=dict(mark.meta))
            else:
                merged.start_ns = min(merged.start_ns, mark.start_ns)
                if mark.end_ns is not None:
                    merged.end_ns = (mark.end_ns if merged.end_ns is None
                                     else max(merged.end_ns, mark.end_ns))

    metadata = dict(traces[0].metadata)
    metadata["n_devices"] = len(traces)
    metadata.pop("device_rank", None)
    return MemoryTrace(
        columns=merged_columns,
        event_tags=merged_tags,
        event_ops=merged_ops,
        lifetimes=lifetimes,
        iteration_marks=[marks[index] for index in sorted(marks)],
        metadata=metadata,
        end_ns=max(trace.end_ns for trace in traces),
    )
