"""The memory trace container and its persistence formats.

A :class:`MemoryTrace` is the immutable result of a profiled training run:
the full behavior stream, the block lifetimes and the iteration boundaries.
Every analysis in :mod:`repro.core` consumes this object, and it can be saved
to / loaded from JSON (complete) or exported to CSV (events only, convenient
for external plotting).

Column-store layout (PR 1)
--------------------------
Besides the object-level ``events`` list, a trace exposes a columnar NumPy
view through :meth:`MemoryTrace.columns`: one :class:`EventColumns` record of
eight parallel ``int64`` arrays — ``event_id``, ``kind_code``,
``timestamp_ns``, ``block_id``, ``size``, ``category_code``, ``iteration``
and ``device_rank`` — one entry per event, in recording order.  Enum-valued fields
are stored as stable integer codes (:data:`KIND_CODES` /
:data:`CATEGORY_CODES`, with :data:`KIND_FROM_CODE` /
:data:`CATEGORY_FROM_CODE` for the reverse mapping) so every analysis can be
expressed as vectorized masks and reductions over the arrays.  The view is
built lazily on first use and cached keyed on the event count, so a recorder
that is still appending events gets a fresh view while finalized traces pay
the conversion once.  The ATI pairing (:mod:`repro.core.ati`), the
occupation breakdown (:mod:`repro.core.breakdown`) and the sweep engine's
Eq.-1 screening all run on this column store and never touch the Python
event objects.
"""

from __future__ import annotations

import csv
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

import numpy as np

from ..errors import EmptyTraceError, TraceFormatError
from .events import BlockLifetime, IterationMark, MemoryCategory, MemoryEvent, MemoryEventKind

PathLike = Union[str, Path]

#: Current on-disk format version.
TRACE_FORMAT_VERSION = 1

#: Stable integer codes for event kinds / categories, used by the column store.
KIND_CODES: Dict[MemoryEventKind, int] = {kind: i for i, kind in enumerate(MemoryEventKind)}
KIND_FROM_CODE: List[MemoryEventKind] = list(MemoryEventKind)
CATEGORY_CODES: Dict[MemoryCategory, int] = {cat: i for i, cat in enumerate(MemoryCategory)}
CATEGORY_FROM_CODE: List[MemoryCategory] = list(MemoryCategory)

_MALLOC_CODE = KIND_CODES[MemoryEventKind.MALLOC]
_FREE_CODE = KIND_CODES[MemoryEventKind.FREE]
_READ_CODE = KIND_CODES[MemoryEventKind.READ]
_WRITE_CODE = KIND_CODES[MemoryEventKind.WRITE]

#: Codes of the paper's four block-level behaviors.
BLOCK_BEHAVIOR_CODES = np.array(
    [_MALLOC_CODE, _FREE_CODE, _READ_CODE, _WRITE_CODE], dtype=np.int64)
#: Codes of the data-access behaviors (read/write).
ACCESS_CODES = np.array([_READ_CODE, _WRITE_CODE], dtype=np.int64)


@dataclass(frozen=True)
class EventColumns:
    """Column-oriented view of a trace's event stream.

    Every analysis that aggregates over the whole event stream (ATI
    extraction, occupation breakdown, live-bytes timelines) operates on these
    NumPy arrays instead of iterating :class:`MemoryEvent` objects — a
    50-scenario sweep spends its time in these bulk operations, so they must
    be vectorized.
    """

    event_id: np.ndarray      # int64
    kind_code: np.ndarray     # int64, see KIND_CODES
    timestamp_ns: np.ndarray  # int64
    block_id: np.ndarray      # int64
    size: np.ndarray          # int64
    category_code: np.ndarray  # int64, see CATEGORY_CODES
    iteration: np.ndarray     # int64
    device_rank: np.ndarray   # int64 (data-parallel rank; all zeros single-device)

    def __len__(self) -> int:
        return int(self.event_id.size)

    @property
    def is_malloc(self) -> np.ndarray:
        """Boolean mask of malloc events."""
        return self.kind_code == _MALLOC_CODE

    @property
    def is_free(self) -> np.ndarray:
        """Boolean mask of free events."""
        return self.kind_code == _FREE_CODE

    @property
    def is_access(self) -> np.ndarray:
        """Boolean mask of read/write events."""
        return (self.kind_code == _READ_CODE) | (self.kind_code == _WRITE_CODE)

    @property
    def is_block_behavior(self) -> np.ndarray:
        """Boolean mask of the paper's four block-level behaviors."""
        return np.isin(self.kind_code, BLOCK_BEHAVIOR_CODES)

    def live_deltas(self) -> np.ndarray:
        """Per-event change in live bytes (+size on malloc, -size on free)."""
        return np.where(self.is_malloc, self.size,
                        np.where(self.is_free, -self.size, 0))


@dataclass
class MemoryTrace:
    """All memory behaviors recorded during one profiled run."""

    events: List[MemoryEvent] = field(default_factory=list)
    lifetimes: List[BlockLifetime] = field(default_factory=list)
    iteration_marks: List[IterationMark] = field(default_factory=list)
    metadata: Dict[str, object] = field(default_factory=dict)
    end_ns: int = 0

    # -- column store -------------------------------------------------------------------

    def columns(self) -> EventColumns:
        """Column-oriented NumPy view of the event stream (built lazily, cached).

        A trace is immutable once the profiler finalizes it; the cache is
        keyed on the event count so a recorder that is still appending events
        (``profiler.trace()`` mid-run) gets a fresh view.
        """
        cached = getattr(self, "_columns_cache", None)
        if cached is not None and len(cached) == len(self.events):
            return cached
        n = len(self.events)
        event_id = np.empty(n, dtype=np.int64)
        kind_code = np.empty(n, dtype=np.int64)
        timestamp_ns = np.empty(n, dtype=np.int64)
        block_id = np.empty(n, dtype=np.int64)
        size = np.empty(n, dtype=np.int64)
        category_code = np.empty(n, dtype=np.int64)
        iteration = np.empty(n, dtype=np.int64)
        device_rank = np.empty(n, dtype=np.int64)
        for i, event in enumerate(self.events):
            event_id[i] = event.event_id
            kind_code[i] = KIND_CODES[event.kind]
            timestamp_ns[i] = event.timestamp_ns
            block_id[i] = event.block_id
            size[i] = event.size
            category_code[i] = CATEGORY_CODES[event.category]
            iteration[i] = event.iteration
            device_rank[i] = event.device_rank
        columns = EventColumns(event_id=event_id, kind_code=kind_code,
                               timestamp_ns=timestamp_ns, block_id=block_id,
                               size=size, category_code=category_code,
                               iteration=iteration, device_rank=device_rank)
        self._columns_cache = columns
        return columns

    # -- basic accessors ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def is_empty(self) -> bool:
        """Whether no event was recorded."""
        return not self.events

    def require_events(self) -> None:
        """Raise :class:`~repro.errors.EmptyTraceError` if the trace is empty."""
        if self.is_empty:
            raise EmptyTraceError("the memory trace contains no events")

    @property
    def start_ns(self) -> int:
        """Timestamp of the first event (0 for an empty trace)."""
        return self.events[0].timestamp_ns if self.events else 0

    @property
    def duration_ns(self) -> int:
        """Span from the first event to the recorded end of the run."""
        if not self.events:
            return 0
        end = max(self.end_ns, self.events[-1].timestamp_ns)
        return end - self.start_ns

    def block_behaviors(self) -> List[MemoryEvent]:
        """Only the paper's four block-level behaviors (no segment events)."""
        return [event for event in self.events if event.kind.is_block_behavior]

    def access_events(self) -> List[MemoryEvent]:
        """Only read/write behaviors."""
        return [event for event in self.events if event.kind.is_access]

    def events_by_kind(self, kind: MemoryEventKind) -> List[MemoryEvent]:
        """Events of one behavior kind."""
        return [event for event in self.events if event.kind is kind]

    def events_for_block(self, block_id: int) -> List[MemoryEvent]:
        """All events of one device memory block, in time order."""
        return [event for event in self.events if event.block_id == block_id]

    def block_ids(self) -> List[int]:
        """Identities of all blocks that appear in the trace (sorted)."""
        if not self.events:
            return []
        ids = self.columns().block_id
        return [int(b) for b in np.unique(ids[ids > 0])]

    def events_by_block(self) -> Dict[int, List[MemoryEvent]]:
        """Group block-level behaviors by block id (insertion-ordered within a block)."""
        grouped: Dict[int, List[MemoryEvent]] = {}
        for event in self.events:
            if event.block_id <= 0 or not event.kind.is_block_behavior:
                continue
            grouped.setdefault(event.block_id, []).append(event)
        return grouped

    def events_in_iteration(self, iteration: int) -> List[MemoryEvent]:
        """All events attributed to one training iteration."""
        return [event for event in self.events if event.iteration == iteration]

    # -- multi-device (data-parallel) views -------------------------------------------

    def ranks(self) -> List[int]:
        """Device ranks that appear in the trace (``[0]`` for single-device)."""
        if not self.events:
            return []
        return [int(rank) for rank in np.unique(self.columns().device_rank)]

    def for_rank(self, rank: int) -> "MemoryTrace":
        """The single-rank slice of a (possibly merged multi-device) trace.

        Events and lifetimes of other ranks are dropped; iteration marks and
        metadata are shared across ranks and kept as-is.
        """
        metadata = dict(self.metadata)
        metadata["device_rank"] = int(rank)
        return MemoryTrace(
            events=[event for event in self.events if event.device_rank == rank],
            lifetimes=[lifetime for lifetime in self.lifetimes
                       if lifetime.device_rank == rank],
            iteration_marks=list(self.iteration_marks),
            metadata=metadata,
            end_ns=self.end_ns,
        )

    def iterations(self) -> List[int]:
        """Indices of all iterations that have a recorded mark."""
        return sorted(mark.index for mark in self.iteration_marks)

    def iteration_mark(self, index: int) -> Optional[IterationMark]:
        """The mark of iteration ``index`` (None if absent)."""
        for mark in self.iteration_marks:
            if mark.index == index:
                return mark
        return None

    def counts_by_kind(self) -> Dict[str, int]:
        """Number of events of each kind."""
        if not self.events:
            return {}
        codes, counts = np.unique(self.columns().kind_code, return_counts=True)
        return {KIND_FROM_CODE[int(code)].value: int(count)
                for code, count in zip(codes, counts)}

    def counts_by_category(self) -> Dict[str, int]:
        """Number of block-level behaviors per memory category."""
        if not self.events:
            return {}
        cols = self.columns()
        cats = cols.category_code[cols.is_block_behavior]
        codes, counts = np.unique(cats, return_counts=True)
        return {CATEGORY_FROM_CODE[int(code)].value: int(count)
                for code, count in zip(codes, counts)}

    def live_bytes_series(self) -> "tuple[np.ndarray, np.ndarray]":
        """``(timestamps_ns, live_bytes)`` arrays after every malloc/free event."""
        if not self.events:
            return np.array([], dtype=np.int64), np.array([], dtype=np.int64)
        cols = self.columns()
        mask = cols.is_malloc | cols.is_free
        return cols.timestamp_ns[mask], np.cumsum(cols.live_deltas()[mask])

    def live_bytes_timeline(self) -> List[tuple]:
        """``(timestamp_ns, live_bytes)`` after every malloc/free event."""
        timestamps, live = self.live_bytes_series()
        return [(int(ts), int(bytes_)) for ts, bytes_ in zip(timestamps, live)]

    def peak_live_bytes(self) -> int:
        """Highest number of simultaneously allocated bytes."""
        _, live = self.live_bytes_series()
        if live.size == 0:
            return 0
        return int(live.max())

    # -- persistence -----------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Serialize the complete trace to a JSON-friendly dictionary."""
        return {
            "format_version": TRACE_FORMAT_VERSION,
            "metadata": self.metadata,
            "end_ns": self.end_ns,
            "events": [event.to_dict() for event in self.events],
            "lifetimes": [lifetime.to_dict() for lifetime in self.lifetimes],
            "iteration_marks": [mark.to_dict() for mark in self.iteration_marks],
        }

    @staticmethod
    def from_dict(data: Dict[str, object]) -> "MemoryTrace":
        """Reconstruct a trace from :meth:`to_dict` output."""
        try:
            version = int(data.get("format_version", -1))
            if version != TRACE_FORMAT_VERSION:
                raise TraceFormatError(f"unsupported trace format version {version}")
            return MemoryTrace(
                events=[MemoryEvent.from_dict(entry) for entry in data.get("events", [])],
                lifetimes=[BlockLifetime.from_dict(entry)
                           for entry in data.get("lifetimes", [])],
                iteration_marks=[IterationMark.from_dict(entry)
                                 for entry in data.get("iteration_marks", [])],
                metadata=dict(data.get("metadata", {})),
                end_ns=int(data.get("end_ns", 0)),
            )
        except (KeyError, ValueError, TypeError) as error:
            raise TraceFormatError(f"malformed trace data: {error}") from error

    def save_json(self, path: PathLike) -> Path:
        """Write the trace to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle)
        return path

    @staticmethod
    def load_json(path: PathLike) -> "MemoryTrace":
        """Load a trace previously written by :meth:`save_json`."""
        with open(Path(path), "r", encoding="utf-8") as handle:
            try:
                data = json.load(handle)
            except json.JSONDecodeError as error:
                raise TraceFormatError(f"invalid trace JSON: {error}") from error
        return MemoryTrace.from_dict(data)

    def export_events_csv(self, path: PathLike) -> Path:
        """Write the event stream to CSV (one row per behavior)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        fields = ["event_id", "kind", "timestamp_ns", "block_id", "address", "size",
                  "category", "tag", "iteration", "op", "device_rank"]
        with open(path, "w", newline="", encoding="utf-8") as handle:
            writer = csv.DictWriter(handle, fieldnames=fields)
            writer.writeheader()
            for event in self.events:
                writer.writerow(event.to_dict())
        return path

    # -- misc --------------------------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        """A compact dictionary summarizing the trace (used by reports and tests)."""
        return {
            "num_events": len(self.events),
            "num_blocks": len(self.block_ids()),
            "num_iterations": len(self.iteration_marks),
            "duration_ns": self.duration_ns,
            "peak_live_bytes": self.peak_live_bytes(),
            "counts_by_kind": self.counts_by_kind(),
        }


def merge_rank_traces(traces: Sequence[MemoryTrace]) -> MemoryTrace:
    """Merge per-rank traces of one data-parallel run into a single trace.

    Each input trace is the recording of one replica device.  The merge

    * stamps every event and lifetime with its ``device_rank``;
    * offsets block ids so that rank-local identities stay unique in the
      merged stream (ATI pairing and the per-block analyses keep working on
      the merged trace without cross-rank aliasing);
    * orders events by ``(timestamp, rank)`` and renumbers ``event_id``
      contiguously so that event-order semantics (Figure 4's x-axis, the ATI
      closing-event sort) remain meaningful;
    * unions iteration marks per index (earliest start, latest end) since
      ranks enter and leave iterations at slightly different simulated times.

    A single-trace merge returns the input unchanged (rank 0 is the
    degenerate case), so single-device sessions stay byte-identical.
    """
    traces = list(traces)
    if not traces:
        raise EmptyTraceError("cannot merge zero rank traces")
    if len(traces) == 1:
        return traces[0]

    from dataclasses import replace as _replace

    # Block ids are positive; segment pseudo-ids are negative.  Offset both
    # per rank by the running maximum magnitude so identities never collide.
    stamped: List[MemoryEvent] = []
    lifetimes: List[BlockLifetime] = []
    block_offset = 0
    for rank, trace in enumerate(traces):
        magnitudes = [abs(event.block_id) for event in trace.events]
        for event in trace.events:
            shifted = (event.block_id + block_offset if event.block_id > 0
                       else event.block_id - block_offset)
            stamped.append(_replace(event, block_id=shifted, device_rank=rank))
        for lifetime in trace.lifetimes:
            lifetimes.append(_replace(lifetime, block_id=lifetime.block_id + block_offset,
                                      device_rank=rank))
        block_offset += max(magnitudes, default=0)

    stamped.sort(key=lambda event: (event.timestamp_ns, event.device_rank,
                                    event.event_id))
    events = [_replace(event, event_id=index) for index, event in enumerate(stamped)]

    marks: Dict[int, IterationMark] = {}
    for trace in traces:
        for mark in trace.iteration_marks:
            merged = marks.get(mark.index)
            if merged is None:
                marks[mark.index] = IterationMark(index=mark.index,
                                                  start_ns=mark.start_ns,
                                                  end_ns=mark.end_ns,
                                                  meta=dict(mark.meta))
            else:
                merged.start_ns = min(merged.start_ns, mark.start_ns)
                if mark.end_ns is not None:
                    merged.end_ns = (mark.end_ns if merged.end_ns is None
                                     else max(merged.end_ns, mark.end_ns))

    metadata = dict(traces[0].metadata)
    metadata["n_devices"] = len(traces)
    metadata.pop("device_rank", None)
    return MemoryTrace(
        events=events,
        lifetimes=lifetimes,
        iteration_marks=[marks[index] for index in sorted(marks)],
        metadata=metadata,
        end_ns=max(trace.end_ns for trace in traces),
    )
