"""Access-time-interval (ATI) analysis.

The ATI is the elapsed time between two adjacent memory accesses to the same
device memory block (Section III of the paper).  Figures 3 and 4 are built
from the collection of per-block ATIs:

* Figure 3a is the CDF of all ATIs;
* Figure 3b is the violin plot of ATIs grouped by behavior kind;
* Figure 4 plots each behavior's ATI together with the size of the block it
  touches, revealing the high-ATI / large-block outliers.

Two API levels share one vectorized core built on the trace's column store
(:meth:`~repro.core.trace.MemoryTrace.columns`):

* :func:`compute_interval_arrays` sorts the access events by
  ``(block_id, timestamp_ns)`` once and differences adjacent timestamps in
  bulk, producing an :class:`IntervalArrays` record of parallel NumPy
  columns (``block_id``, ``size``, ``category_code``, ``interval_ns``,
  ``start_index``/``end_index`` into ``trace.events``).  The sweep engine
  and the Eq.-1 feasibility screening consume these arrays directly.
* :func:`compute_access_intervals` materializes the same pairing as
  object-level :class:`AccessInterval` records for consumers that need tags,
  kinds or per-interval inspection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..units import ns_to_us
from .events import MemoryCategory, MemoryEvent, MemoryEventKind
from .trace import CATEGORY_FROM_CODE, KIND_FROM_CODE, MemoryTrace


@dataclass(frozen=True)
class AccessInterval:
    """One ATI sample: the gap between two adjacent accesses to the same block."""

    block_id: int
    size: int
    category: MemoryCategory
    tag: str
    interval_ns: int
    start_event_id: int
    end_event_id: int
    start_kind: MemoryEventKind
    end_kind: MemoryEventKind
    iteration: int

    @property
    def interval_us(self) -> float:
        """The ATI in microseconds (the unit the paper reports)."""
        return ns_to_us(self.interval_ns)

    def to_dict(self) -> Dict[str, object]:
        """Serialize for CSV/JSON export."""
        return {
            "block_id": self.block_id,
            "size": self.size,
            "category": self.category.value,
            "tag": self.tag,
            "interval_ns": self.interval_ns,
            "interval_us": self.interval_us,
            "start_event_id": self.start_event_id,
            "end_event_id": self.end_event_id,
            "start_kind": self.start_kind.value,
            "end_kind": self.end_kind.value,
            "iteration": self.iteration,
        }


@dataclass
class AtiSummary:
    """Distribution summary of a set of ATIs (all durations in microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p90_us: float
    p99_us: float
    min_us: float
    max_us: float

    def to_dict(self) -> Dict[str, float]:
        """Serialize the summary."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "p99_us": self.p99_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
        }


@dataclass(frozen=True)
class IntervalArrays:
    """Column-oriented ATI samples (one entry per adjacent access pair).

    This is the vectorized core of the ATI analysis: pairing, gap
    computation and filtering are NumPy bulk operations over the trace's
    column store.  ``start_index``/``end_index`` are positions into
    ``trace.events`` so that object-level consumers (:func:`compute_access_intervals`)
    can materialize :class:`AccessInterval` records without re-deriving the
    pairing, while array-level consumers (the sweep engine, Eq.-1 feasibility
    screening) never touch Python objects at all.
    """

    block_id: np.ndarray       # int64
    size: np.ndarray           # int64 (bytes touched by the closing access)
    category_code: np.ndarray  # int64
    interval_ns: np.ndarray    # int64
    start_event_id: np.ndarray  # int64
    end_event_id: np.ndarray   # int64
    start_kind_code: np.ndarray  # int64
    end_kind_code: np.ndarray  # int64
    iteration: np.ndarray      # int64
    start_index: np.ndarray    # int64, positions into trace.events
    end_index: np.ndarray      # int64, positions into trace.events

    def __len__(self) -> int:
        return int(self.interval_ns.size)

    @property
    def interval_us(self) -> np.ndarray:
        """The ATIs in microseconds (the unit the paper reports)."""
        return self.interval_ns / 1_000.0


def compute_interval_arrays(trace: MemoryTrace, include_lifecycle: bool = False,
                            min_interval_ns: int = 0) -> IntervalArrays:
    """Vectorized ATI extraction: every adjacent same-block access pair.

    Pairs are formed per block in event order (a stable sort by block id
    preserves the stream order within each block), gaps below
    ``min_interval_ns`` are dropped and the result is ordered by the closing
    event's id — identical semantics to the historical per-block Python loop,
    at NumPy speed.
    """
    trace.require_events()
    cols = trace.columns()
    if include_lifecycle:
        mask = cols.is_block_behavior
    else:
        mask = cols.is_access
    mask = mask & (cols.block_id > 0)
    positions = np.flatnonzero(mask)

    empty = np.array([], dtype=np.int64)
    if positions.size < 2:
        return IntervalArrays(*(empty.copy() for _ in range(11)))

    blocks = cols.block_id[positions]
    order = np.argsort(blocks, kind="stable")
    sorted_positions = positions[order]
    sorted_blocks = blocks[order]

    adjacent = sorted_blocks[1:] == sorted_blocks[:-1]
    start_pos = sorted_positions[:-1][adjacent]
    end_pos = sorted_positions[1:][adjacent]
    gaps = cols.timestamp_ns[end_pos] - cols.timestamp_ns[start_pos]
    if min_interval_ns > 0:
        keep = gaps >= min_interval_ns
        start_pos, end_pos, gaps = start_pos[keep], end_pos[keep], gaps[keep]

    final = np.argsort(cols.event_id[end_pos], kind="stable")
    start_pos, end_pos, gaps = start_pos[final], end_pos[final], gaps[final]
    return IntervalArrays(
        block_id=cols.block_id[end_pos],
        size=cols.size[end_pos],
        category_code=cols.category_code[end_pos],
        interval_ns=gaps,
        start_event_id=cols.event_id[start_pos],
        end_event_id=cols.event_id[end_pos],
        start_kind_code=cols.kind_code[start_pos],
        end_kind_code=cols.kind_code[end_pos],
        iteration=cols.iteration[end_pos],
        start_index=start_pos,
        end_index=end_pos,
    )


def compute_access_intervals(trace: MemoryTrace, include_lifecycle: bool = False,
                             min_interval_ns: int = 0) -> List[AccessInterval]:
    """Compute every ATI in a trace.

    Parameters
    ----------
    trace:
        The recorded memory trace.
    include_lifecycle:
        If true, ``malloc``/``free`` events also count as accesses when
        forming adjacent pairs (the paper's instrumentation tracks all four
        behaviors; accesses alone are the default because only they move
        data).
    min_interval_ns:
        Drop intervals shorter than this (0 keeps everything).
    """
    arrays = compute_interval_arrays(trace, include_lifecycle=include_lifecycle,
                                     min_interval_ns=min_interval_ns)
    events = trace.events
    return [AccessInterval(
        block_id=int(arrays.block_id[i]),
        size=int(arrays.size[i]),
        category=CATEGORY_FROM_CODE[int(arrays.category_code[i])],
        tag=events[int(arrays.end_index[i])].tag,
        interval_ns=int(arrays.interval_ns[i]),
        start_event_id=int(arrays.start_event_id[i]),
        end_event_id=int(arrays.end_event_id[i]),
        start_kind=KIND_FROM_CODE[int(arrays.start_kind_code[i])],
        end_kind=KIND_FROM_CODE[int(arrays.end_kind_code[i])],
        iteration=int(arrays.iteration[i]),
    ) for i in range(len(arrays))]


def intervals_by_kind(intervals: Sequence[AccessInterval]) -> Dict[str, List[AccessInterval]]:
    """Group intervals by the kind of the access that closes them (Figure 3b groups)."""
    grouped: Dict[str, List[AccessInterval]] = {}
    for interval in intervals:
        grouped.setdefault(interval.end_kind.value, []).append(interval)
    return grouped


def intervals_by_category(intervals: Sequence[AccessInterval]) -> Dict[str, List[AccessInterval]]:
    """Group intervals by the memory category of the block."""
    grouped: Dict[str, List[AccessInterval]] = {}
    for interval in intervals:
        grouped.setdefault(interval.category.value, []).append(interval)
    return grouped


def summarize_values_us(values: np.ndarray) -> AtiSummary:
    """Distribution summary of raw ATI values in microseconds (one percentile pass)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        return AtiSummary(count=0, mean_us=0.0, p50_us=0.0, p90_us=0.0, p99_us=0.0,
                          min_us=0.0, max_us=0.0)
    p50, p90, p99 = np.percentile(values, (50, 90, 99))
    return AtiSummary(
        count=int(values.size),
        mean_us=float(values.mean()),
        p50_us=float(p50),
        p90_us=float(p90),
        p99_us=float(p99),
        min_us=float(values.min()),
        max_us=float(values.max()),
    )


def summarize_intervals(intervals) -> AtiSummary:
    """Distribution summary (mean / percentiles) of a set of ATIs.

    Accepts either a sequence of :class:`AccessInterval` objects or an
    :class:`IntervalArrays` column set.
    """
    return summarize_values_us(interval_values_us(intervals))


def fraction_below(intervals, threshold_us: float) -> float:
    """Fraction of ATIs below ``threshold_us`` (the paper's "90% below 25us" claim)."""
    values = interval_values_us(intervals)
    if values.size == 0:
        return 0.0
    return float(np.mean(values <= threshold_us))


def interval_values_us(intervals) -> np.ndarray:
    """The raw ATI values in microseconds as a NumPy array.

    Accepts either a sequence of :class:`AccessInterval` objects or an
    :class:`IntervalArrays` column set (returned as-is, no copy).
    """
    if isinstance(intervals, IntervalArrays):
        return intervals.interval_us
    return np.array([interval.interval_us for interval in intervals], dtype=np.float64)
