"""Access-time-interval (ATI) analysis.

The ATI is the elapsed time between two adjacent memory accesses to the same
device memory block (Section III of the paper).  Figures 3 and 4 are built
from the collection of per-block ATIs:

* Figure 3a is the CDF of all ATIs;
* Figure 3b is the violin plot of ATIs grouped by behavior kind;
* Figure 4 plots each behavior's ATI together with the size of the block it
  touches, revealing the high-ATI / large-block outliers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..units import ns_to_us
from .events import MemoryCategory, MemoryEvent, MemoryEventKind
from .trace import MemoryTrace


@dataclass(frozen=True)
class AccessInterval:
    """One ATI sample: the gap between two adjacent accesses to the same block."""

    block_id: int
    size: int
    category: MemoryCategory
    tag: str
    interval_ns: int
    start_event_id: int
    end_event_id: int
    start_kind: MemoryEventKind
    end_kind: MemoryEventKind
    iteration: int

    @property
    def interval_us(self) -> float:
        """The ATI in microseconds (the unit the paper reports)."""
        return ns_to_us(self.interval_ns)

    def to_dict(self) -> Dict[str, object]:
        """Serialize for CSV/JSON export."""
        return {
            "block_id": self.block_id,
            "size": self.size,
            "category": self.category.value,
            "tag": self.tag,
            "interval_ns": self.interval_ns,
            "interval_us": self.interval_us,
            "start_event_id": self.start_event_id,
            "end_event_id": self.end_event_id,
            "start_kind": self.start_kind.value,
            "end_kind": self.end_kind.value,
            "iteration": self.iteration,
        }


@dataclass
class AtiSummary:
    """Distribution summary of a set of ATIs (all durations in microseconds)."""

    count: int
    mean_us: float
    p50_us: float
    p90_us: float
    p99_us: float
    min_us: float
    max_us: float

    def to_dict(self) -> Dict[str, float]:
        """Serialize the summary."""
        return {
            "count": self.count,
            "mean_us": self.mean_us,
            "p50_us": self.p50_us,
            "p90_us": self.p90_us,
            "p99_us": self.p99_us,
            "min_us": self.min_us,
            "max_us": self.max_us,
        }


def compute_access_intervals(trace: MemoryTrace, include_lifecycle: bool = False,
                             min_interval_ns: int = 0) -> List[AccessInterval]:
    """Compute every ATI in a trace.

    Parameters
    ----------
    trace:
        The recorded memory trace.
    include_lifecycle:
        If true, ``malloc``/``free`` events also count as accesses when
        forming adjacent pairs (the paper's instrumentation tracks all four
        behaviors; accesses alone are the default because only they move
        data).
    min_interval_ns:
        Drop intervals shorter than this (0 keeps everything).
    """
    trace.require_events()
    intervals: List[AccessInterval] = []
    for block_id, events in trace.events_by_block().items():
        if include_lifecycle:
            relevant = [e for e in events if e.kind.is_block_behavior]
        else:
            relevant = [e for e in events if e.kind.is_access]
        for previous, current in zip(relevant, relevant[1:]):
            gap = current.timestamp_ns - previous.timestamp_ns
            if gap < min_interval_ns:
                continue
            intervals.append(AccessInterval(
                block_id=block_id,
                size=current.size,
                category=current.category,
                tag=current.tag,
                interval_ns=gap,
                start_event_id=previous.event_id,
                end_event_id=current.event_id,
                start_kind=previous.kind,
                end_kind=current.kind,
                iteration=current.iteration,
            ))
    intervals.sort(key=lambda interval: interval.end_event_id)
    return intervals


def intervals_by_kind(intervals: Sequence[AccessInterval]) -> Dict[str, List[AccessInterval]]:
    """Group intervals by the kind of the access that closes them (Figure 3b groups)."""
    grouped: Dict[str, List[AccessInterval]] = {}
    for interval in intervals:
        grouped.setdefault(interval.end_kind.value, []).append(interval)
    return grouped


def intervals_by_category(intervals: Sequence[AccessInterval]) -> Dict[str, List[AccessInterval]]:
    """Group intervals by the memory category of the block."""
    grouped: Dict[str, List[AccessInterval]] = {}
    for interval in intervals:
        grouped.setdefault(interval.category.value, []).append(interval)
    return grouped


def summarize_intervals(intervals: Sequence[AccessInterval]) -> AtiSummary:
    """Distribution summary (mean / percentiles) of a set of ATIs."""
    if not intervals:
        return AtiSummary(count=0, mean_us=0.0, p50_us=0.0, p90_us=0.0, p99_us=0.0,
                          min_us=0.0, max_us=0.0)
    values = np.array([interval.interval_us for interval in intervals], dtype=np.float64)
    return AtiSummary(
        count=int(values.size),
        mean_us=float(values.mean()),
        p50_us=float(np.percentile(values, 50)),
        p90_us=float(np.percentile(values, 90)),
        p99_us=float(np.percentile(values, 99)),
        min_us=float(values.min()),
        max_us=float(values.max()),
    )


def fraction_below(intervals: Sequence[AccessInterval], threshold_us: float) -> float:
    """Fraction of ATIs below ``threshold_us`` (the paper's "90% below 25us" claim)."""
    if not intervals:
        return 0.0
    values = np.array([interval.interval_us for interval in intervals])
    return float(np.mean(values <= threshold_us))


def interval_values_us(intervals: Sequence[AccessInterval]) -> np.ndarray:
    """The raw ATI values in microseconds as a NumPy array."""
    return np.array([interval.interval_us for interval in intervals], dtype=np.float64)
