"""Distribution statistics used by the figures: CDFs, histograms and violin data.

Figure 3a of the paper is an empirical CDF of the ATIs; Figure 3b is a violin
plot (box-plot quartiles plus a kernel-density trace).  These helpers compute
the underlying data so that benchmarks and examples can print the same
numbers the figures encode, without any plotting dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np


@dataclass
class CdfResult:
    """An empirical cumulative distribution function."""

    values: np.ndarray          # sorted sample values
    probabilities: np.ndarray   # cumulative probability at each value

    def quantile(self, q: float) -> float:
        """Value below which a fraction ``q`` of the samples fall."""
        if self.values.size == 0:
            return 0.0
        return float(np.percentile(self.values, 100.0 * q))

    def fraction_below(self, threshold: float) -> float:
        """Fraction of samples at or below ``threshold``."""
        if self.values.size == 0:
            return 0.0
        return float(np.searchsorted(self.values, threshold, side="right") / self.values.size)

    def sample_points(self, num_points: int = 50) -> List[Tuple[float, float]]:
        """Evenly spaced ``(value, cumulative_probability)`` points for plotting."""
        if self.values.size == 0:
            return []
        indices = np.linspace(0, self.values.size - 1,
                              num=min(num_points, self.values.size)).astype(np.int64)
        return list(zip(self.values[indices].astype(float).tolist(),
                        self.probabilities[indices].astype(float).tolist()))


def empirical_cdf(samples: Sequence[float]) -> CdfResult:
    """Build the empirical CDF of a sample set."""
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        return CdfResult(values=np.array([]), probabilities=np.array([]))
    sorted_values = np.sort(array)
    probabilities = np.arange(1, sorted_values.size + 1) / sorted_values.size
    return CdfResult(values=sorted_values, probabilities=probabilities)


@dataclass
class Histogram:
    """A fixed-bin histogram."""

    bin_edges: np.ndarray
    counts: np.ndarray

    @property
    def total(self) -> int:
        """Total number of samples."""
        return int(self.counts.sum())

    def densities(self) -> np.ndarray:
        """Counts normalized to sum to one."""
        total = self.total
        if total == 0:
            return np.zeros_like(self.counts, dtype=np.float64)
        return self.counts / total


def histogram(samples: Sequence[float], bins: int = 50,
              value_range: Optional[Tuple[float, float]] = None) -> Histogram:
    """Histogram a sample set into ``bins`` equal-width bins."""
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        edges = np.linspace(0.0, 1.0, bins + 1)
        return Histogram(bin_edges=edges, counts=np.zeros(bins, dtype=np.int64))
    counts, edges = np.histogram(array, bins=bins, range=value_range)
    return Histogram(bin_edges=edges, counts=counts)


@dataclass
class ViolinStats:
    """The data a violin plot encodes: quartiles, whiskers and a density trace."""

    label: str
    count: int
    minimum: float
    q1: float
    median: float
    q3: float
    maximum: float
    density_x: np.ndarray = field(default_factory=lambda: np.array([]))
    density_y: np.ndarray = field(default_factory=lambda: np.array([]))

    def to_dict(self) -> Dict[str, object]:
        """Serialize the scalar part of the violin statistics."""
        return {
            "label": self.label,
            "count": self.count,
            "min": self.minimum,
            "q1": self.q1,
            "median": self.median,
            "q3": self.q3,
            "max": self.maximum,
        }

    @property
    def iqr(self) -> float:
        """Inter-quartile range."""
        return self.q3 - self.q1


def gaussian_kde_trace(samples: np.ndarray, num_points: int = 100) -> Tuple[np.ndarray, np.ndarray]:
    """A simple Gaussian kernel-density estimate (Scott's rule bandwidth)."""
    if samples.size == 0:
        return np.array([]), np.array([])
    if samples.size == 1 or float(np.std(samples)) == 0.0:
        # Degenerate distribution: a single spike.
        x = np.array([float(samples[0])])
        return x, np.array([1.0])
    std = float(np.std(samples, ddof=1))
    bandwidth = 1.06 * std * samples.size ** (-1.0 / 5.0)
    bandwidth = max(bandwidth, 1e-9)
    grid = np.linspace(float(samples.min()), float(samples.max()), num_points)
    diffs = (grid[:, None] - samples[None, :]) / bandwidth
    density = np.exp(-0.5 * diffs ** 2).sum(axis=1) / (samples.size * bandwidth * np.sqrt(2 * np.pi))
    return grid, density


def violin_stats(samples: Sequence[float], label: str = "",
                 density_points: int = 100) -> ViolinStats:
    """Compute the violin-plot statistics of a sample set."""
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        return ViolinStats(label=label, count=0, minimum=0.0, q1=0.0, median=0.0,
                           q3=0.0, maximum=0.0)
    density_x, density_y = gaussian_kde_trace(array, num_points=density_points)
    return ViolinStats(
        label=label,
        count=int(array.size),
        minimum=float(array.min()),
        q1=float(np.percentile(array, 25)),
        median=float(np.percentile(array, 50)),
        q3=float(np.percentile(array, 75)),
        maximum=float(array.max()),
        density_x=density_x,
        density_y=density_y,
    )


def concentration_ratio(samples: Sequence[float], low: float, high: float) -> float:
    """Fraction of samples falling inside ``[low, high]``.

    The paper observes that most ATIs fall in the 10-25 us band; this helper
    quantifies that concentration for arbitrary bands.
    """
    array = np.asarray(list(samples), dtype=np.float64)
    if array.size == 0:
        return 0.0
    return float(np.mean((array >= low) & (array <= high)))
