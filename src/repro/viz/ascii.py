"""ASCII renderings of the paper's figures.

The reproduction is plotting-library free: every figure can be rendered as a
text chart suitable for terminals, logs and EXPERIMENTS.md.  The renderers
take the analysis results from :mod:`repro.core` and return strings.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..core.gantt import GanttChart
from ..core.stats import CdfResult, ViolinStats
from ..units import format_bytes, format_duration


def _scale(value: float, low: float, high: float, width: int) -> int:
    """Map ``value`` in ``[low, high]`` onto a column index in ``[0, width)``."""
    if high <= low:
        return 0
    position = (value - low) / (high - low)
    return min(width - 1, max(0, int(round(position * (width - 1)))))


def render_gantt(chart: GanttChart, width: int = 100, max_rows: int = 40,
                 label_width: int = 28) -> str:
    """Render a Gantt chart (Figure 2) as rows of ``#`` spans on a time axis.

    One row per block lifetime (largest blocks first, capped at ``max_rows``),
    with ``|`` marks on the header row for iteration boundaries.
    """
    if not chart.rectangles:
        return "(empty gantt chart)"
    start = min(rect.start_ns for rect in chart.rectangles)
    end = max(chart.end_ns, max(rect.end_ns for rect in chart.rectangles))

    header = [" "] * width
    for _, iter_start, iter_end in chart.iteration_bounds:
        header[_scale(iter_start, start, end, width)] = "|"
        header[_scale(iter_end, start, end, width)] = "|"
    lines = [" " * label_width + "".join(header)]

    rows = sorted(chart.rectangles, key=lambda rect: rect.size, reverse=True)[:max_rows]
    rows.sort(key=lambda rect: rect.start_ns)
    for rect in rows:
        row = ["."] * width
        first = _scale(rect.start_ns, start, end, width)
        last = _scale(rect.end_ns, start, end, width)
        for column in range(first, max(first, last) + 1):
            row[column] = "#"
        label = f"{rect.tag or rect.category.value}"[:label_width - 12]
        label = f"{label:<{label_width - 12}}{format_bytes(rect.size):>11} "
        lines.append(label + "".join(row))
    footer = (f"time span: {format_duration(end - start)}; "
              f"{len(chart.rectangles)} lifetimes ({len(rows)} shown)")
    lines.append(footer)
    return "\n".join(lines)


def render_cdf(cdf: CdfResult, width: int = 70, height: int = 15,
               x_label: str = "ATI (us)") -> str:
    """Render an empirical CDF (Figure 3a) as an ASCII step plot."""
    if cdf.values.size == 0:
        return "(empty CDF)"
    low, high = float(cdf.values[0]), float(cdf.values[-1])
    grid = [[" "] * width for _ in range(height)]
    for value, probability in zip(cdf.values, cdf.probabilities):
        column = _scale(value, low, high, width)
        row = height - 1 - _scale(probability, 0.0, 1.0, height)
        grid[row][column] = "*"
    lines = ["1.0 |" + "".join(grid[0])]
    for row_index in range(1, height - 1):
        lines.append("    |" + "".join(grid[row_index]))
    lines.append("0.0 |" + "".join(grid[height - 1]))
    lines.append("    +" + "-" * width)
    lines.append(f"     {low:.1f} ... {high:.1f}  ({x_label})")
    return "\n".join(lines)


def render_violin(violins: Dict[str, ViolinStats], width: int = 60) -> str:
    """Render violin statistics (Figure 3b) as quartile bars per behavior kind."""
    if not violins:
        return "(no violin data)"
    high = max(stats.maximum for stats in violins.values()) or 1.0
    lines = []
    for label, stats in violins.items():
        if stats.count == 0:
            lines.append(f"{label:>10}: (no samples)")
            continue
        row = ["-"] * width
        q1_col = _scale(stats.q1, 0.0, high, width)
        q3_col = _scale(stats.q3, 0.0, high, width)
        median_col = _scale(stats.median, 0.0, high, width)
        for column in range(q1_col, q3_col + 1):
            row[column] = "="
        row[median_col] = "O"
        row[_scale(stats.minimum, 0.0, high, width)] = "|"
        row[_scale(stats.maximum, 0.0, high, width)] = "|"
        lines.append(f"{label:>10}: " + "".join(row) +
                     f"  (n={stats.count}, median={stats.median:.1f}us)")
    lines.append(f"{'scale':>10}: 0 ... {high:.1f} us")
    return "\n".join(lines)


def render_scatter(points: Sequence[Tuple[float, float]], width: int = 70, height: int = 20,
                   x_label: str = "behavior index", y_label: str = "ATI (us)",
                   mark: str = "*", highlight: Optional[Sequence[Tuple[float, float]]] = None
                   ) -> str:
    """Render a scatter plot (Figure 4) with optional highlighted outliers (``@``)."""
    if not points:
        return "(no points)"
    xs = [point[0] for point in points]
    ys = [point[1] for point in points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    grid = [[" "] * width for _ in range(height)]
    for x, y in points:
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = mark
    for x, y in (highlight or []):
        column = _scale(x, x_low, x_high, width)
        row = height - 1 - _scale(y, y_low, y_high, height)
        grid[row][column] = "@"
    lines = ["".join(row) for row in grid]
    lines.append("-" * width)
    lines.append(f"x: {x_label} [{x_low:.0f}, {x_high:.0f}]   "
                 f"y: {y_label} [{y_low:.1f}, {y_high:.1f}]   (@ = outlier)")
    return "\n".join(lines)


def render_stacked_bars(rows: Sequence[Dict[str, object]], buckets: Sequence[str],
                        label_key: str, width: int = 60) -> str:
    """Render breakdown fractions (Figures 5-7) as stacked horizontal bars.

    Each row dictionary must contain ``label_key`` and a fraction per bucket.
    The buckets are drawn with distinct characters in order: ``I`` (input
    data), ``P`` (parameters), ``#`` (intermediate results).
    """
    symbols = {"input data": "I", "parameters": "P", "intermediate results": "#"}
    lines = []
    for row in rows:
        bar = ""
        for bucket in buckets:
            fraction = float(row.get(bucket, 0.0))
            bar += symbols.get(bucket, "?") * int(round(fraction * width))
        bar = bar[:width].ljust(width, " ")
        label = str(row[label_key])
        total = row.get("total_bytes")
        suffix = f"  total={format_bytes(total)}" if total is not None else ""
        lines.append(f"{label:>18} |{bar}|{suffix}")
    legend = "  ".join(f"{symbol}={bucket}" for bucket, symbol in symbols.items())
    lines.append(f"{'legend':>18}  {legend}")
    return "\n".join(lines)


def render_table(rows: Sequence[Dict[str, object]], columns: Optional[Sequence[str]] = None,
                 float_format: str = "{:.3f}") -> str:
    """Render a list of dictionaries as a fixed-width text table."""
    if not rows:
        return "(empty table)"
    columns = list(columns) if columns is not None else list(rows[0].keys())

    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    widths = {column: len(column) for column in columns}
    for row in rows:
        for column in columns:
            widths[column] = max(widths[column], len(fmt(row.get(column, ""))))
    header = " | ".join(f"{column:>{widths[column]}}" for column in columns)
    separator = "-+-".join("-" * widths[column] for column in columns)
    body = [" | ".join(f"{fmt(row.get(column, '')):>{widths[column]}}" for column in columns)
            for row in rows]
    return "\n".join([header, separator] + body)
