"""Text/SVG figure rendering and figure-data export.

The reproduction is plotting-library free: ASCII renderers cover terminals
and logs, the SVG renderers cover the generated docs pages, and the export
helpers produce CSV/JSON for external tools.
"""

from .ascii import (
    render_cdf,
    render_gantt,
    render_scatter,
    render_stacked_bars,
    render_table,
    render_violin,
)
from .export import export_figure_data, write_csv_rows, write_json
from .svg import render_svg_bars, render_svg_stacked_bars

__all__ = [
    "export_figure_data",
    "render_cdf",
    "render_gantt",
    "render_scatter",
    "render_stacked_bars",
    "render_svg_bars",
    "render_svg_stacked_bars",
    "render_table",
    "render_violin",
    "write_csv_rows",
    "write_json",
]
