"""Text-based figure rendering and figure-data export."""

from .ascii import (
    render_cdf,
    render_gantt,
    render_scatter,
    render_stacked_bars,
    render_table,
    render_violin,
)
from .export import export_figure_data, write_csv_rows, write_json

__all__ = [
    "export_figure_data",
    "render_cdf",
    "render_gantt",
    "render_scatter",
    "render_stacked_bars",
    "render_table",
    "render_violin",
    "write_csv_rows",
    "write_json",
]
