"""Export figure data to CSV/JSON for external plotting tools."""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Sequence, Union

PathLike = Union[str, Path]


def write_json(data: object, path: PathLike) -> Path:
    """Write any JSON-serializable object to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(data, handle, indent=2, default=str)
    return path


def write_csv_rows(rows: Sequence[Dict[str, object]], path: PathLike) -> Path:
    """Write a list of homogeneous dictionaries as CSV (columns from the first row)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if not rows:
        path.write_text("", encoding="utf-8")
        return path
    columns = list(rows[0].keys())
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns, extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)
    return path


def export_figure_data(figure_name: str, rows: Sequence[Dict[str, object]],
                       output_dir: PathLike = "figure_data") -> Dict[str, Path]:
    """Write one figure's rows to both CSV and JSON under ``output_dir``."""
    output_dir = Path(output_dir)
    csv_path = write_csv_rows(rows, output_dir / f"{figure_name}.csv")
    json_path = write_json(list(rows), output_dir / f"{figure_name}.json")
    return {"csv": csv_path, "json": json_path}
