"""Command-line interface.

Three subcommands cover the common workflows without writing any Python:

``python -m repro list``
    Show the registered models, datasets and device presets.

``python -m repro profile --model lenet5 --dataset mnist --batch-size 32``
    Run one profiled training session and print the trace summary, the ATI
    statistics and the occupation breakdown; optionally save the full trace
    to JSON for later analysis.

``python -m repro figure fig6``
    Regenerate one of the paper's figures (``fig2`` … ``fig7``, ``eq1``,
    ``swap``) and print its ASCII rendering / table.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core import compute_access_intervals, occupation_breakdown, summarize_intervals
from .core.events import PAPER_BUCKETS
from .data.datasets import DATASET_PRESETS
from .device.spec import DEVICE_PRESETS
from .models.registry import available_models
from .train.session import TrainingRunConfig, run_training_session
from .units import format_bytes
from .viz import render_stacked_bars, render_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Pinpointing the Memory Behaviors of DNN Training'",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list registered models, datasets and devices")

    profile = subparsers.add_parser("profile", help="profile one training workload")
    profile.add_argument("--model", default="paper_mlp", choices=available_models())
    profile.add_argument("--dataset", default="two_cluster", choices=sorted(DATASET_PRESETS))
    profile.add_argument("--batch-size", type=int, default=64)
    profile.add_argument("--iterations", type=int, default=5)
    profile.add_argument("--execution-mode", default="virtual", choices=("eager", "virtual"))
    profile.add_argument("--device", default="titan_x_pascal", choices=sorted(DEVICE_PRESETS))
    profile.add_argument("--allocator", default="caching",
                         choices=("caching", "best_fit", "bump"))
    profile.add_argument("--input-size", type=int, default=None,
                         help="model input resolution (conv models only)")
    profile.add_argument("--num-classes", type=int, default=None)
    profile.add_argument("--save-trace", default=None, metavar="PATH",
                         help="write the full trace to a JSON file")

    figure = subparsers.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("name", choices=("fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
                                         "eq1", "swap"))
    return parser


def _cmd_list() -> int:
    print("models:   " + ", ".join(available_models()))
    print("datasets: " + ", ".join(sorted(DATASET_PRESETS)))
    print("devices:  " + ", ".join(sorted(DEVICE_PRESETS)))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    model_kwargs = {}
    if args.input_size is not None:
        model_kwargs["input_size"] = args.input_size
    if args.num_classes is not None:
        model_kwargs["num_classes"] = args.num_classes
    config = TrainingRunConfig(
        model=args.model, model_kwargs=model_kwargs, dataset=args.dataset,
        batch_size=args.batch_size, iterations=args.iterations,
        execution_mode=args.execution_mode, device_spec=args.device,
        allocator=args.allocator,
    )
    print(f"Profiling {config.describe()} ...")
    result = run_training_session(config)
    trace = result.trace

    print("\nTrace summary:")
    for key, value in trace.summary().items():
        print(f"  {key}: {value}")
    print(f"  peak allocated: {format_bytes(result.peak_allocated_bytes)}")

    summary = summarize_intervals(compute_access_intervals(trace))
    print("\nAccess-time intervals (us):")
    for key, value in summary.to_dict().items():
        print(f"  {key}: {value:.3f}" if isinstance(value, float) else f"  {key}: {value}")

    print("\nOccupation breakdown at peak:")
    print("  " + occupation_breakdown(trace, label=config.describe()).format_row())

    if args.save_trace:
        path = trace.save_json(args.save_trace)
        print(f"\nTrace written to {path}")
    return 0


def _cmd_figure(name: str) -> int:
    # Imports are local so that `repro list` stays fast.
    from . import experiments
    from .viz import render_cdf, render_gantt, render_scatter, render_violin

    if name == "fig2":
        result = experiments.run_fig2()
        print(render_gantt(result.gantt, width=100, max_rows=30))
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig3":
        result = experiments.run_fig3()
        print(render_cdf(result.cdf))
        print()
        print(render_violin(result.violins))
        print()
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig4":
        result = experiments.run_fig4()
        points = [(index, row["ati_us"]) for index, row in enumerate(result.pairwise)]
        print(render_scatter(points))
        for line in result.outliers.describe():
            print("  " + line)
        for key, value in result.summary().items():
            print(f"{key}: {value}")
    elif name == "fig5":
        result = experiments.run_fig5()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="label"))
    elif name == "fig6":
        result = experiments.run_fig6()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="batch_size"))
    elif name == "fig7":
        result = experiments.run_fig7()
        print(render_stacked_bars(result.rows(), PAPER_BUCKETS, label_key="depth"))
    elif name == "eq1":
        result = experiments.run_eq1()
        print(result.bandwidth_report.summary())
        rows = [{"ati_us": ati, "max_swap_kb": round(bound / 1000, 2)}
                for ati, bound in result.sweep]
        print(render_table(rows))
    elif name == "swap":
        result = experiments.run_swap_planner()
        print(result.plan.describe())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "profile":
        return _cmd_profile(args)
    if args.command == "figure":
        return _cmd_figure(args.name)
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
